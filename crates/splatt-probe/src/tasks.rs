//! Per-thread work/time histograms.

use splatt_rt::sync::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

#[derive(Debug, Default)]
struct TaskSlot {
    nanos: AtomicU64,
    invocations: AtomicU64,
    items: AtomicU64,
}

/// Per-thread busy-time accumulators, one cache line per task id.
/// Recorded by `TaskTeam::coforall_timed`; snapshot as [`ThreadLoad`].
#[derive(Debug)]
pub struct TaskTimes {
    slots: Vec<CachePadded<TaskSlot>>,
}

impl TaskTimes {
    pub fn new(ntasks: usize) -> Self {
        let mut slots = Vec::with_capacity(ntasks.max(1));
        slots.resize_with(ntasks.max(1), CachePadded::default);
        TaskTimes { slots }
    }

    pub fn ntasks(&self) -> usize {
        self.slots.len()
    }

    /// Record one timed region on `tid`. `items` is a caller-defined work
    /// measure (slices processed, rows updated, ...).
    #[inline]
    pub fn record(&self, tid: usize, busy: Duration, items: u64) {
        let slot = &self.slots[tid];
        slot.nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        slot.invocations.fetch_add(1, Ordering::Relaxed);
        slot.items.fetch_add(items, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ThreadLoad {
        ThreadLoad {
            threads: self
                .slots
                .iter()
                .enumerate()
                .map(|(tid, s)| ThreadLoadRow {
                    tid,
                    nanos: s.nanos.load(Ordering::Relaxed),
                    invocations: s.invocations.load(Ordering::Relaxed),
                    items: s.items.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    pub fn reset(&self) {
        for s in &self.slots {
            s.nanos.store(0, Ordering::Relaxed);
            s.invocations.store(0, Ordering::Relaxed);
            s.items.store(0, Ordering::Relaxed);
        }
    }
}

/// One thread's accumulated totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadLoadRow {
    pub tid: usize,
    pub nanos: u64,
    pub invocations: u64,
    pub items: u64,
}

impl ThreadLoadRow {
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 * 1e-9
    }
}

/// Snapshot of every thread's totals, with imbalance statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadLoad {
    pub threads: Vec<ThreadLoadRow>,
}

impl ThreadLoad {
    /// Sum of per-thread busy nanoseconds.
    pub fn busy_nanos(&self) -> u64 {
        self.threads.iter().map(|t| t.nanos).sum()
    }

    pub fn busy_seconds(&self) -> f64 {
        self.busy_nanos() as f64 * 1e-9
    }

    /// Load imbalance as max/mean of per-thread busy time: 1.0 is perfectly
    /// balanced; the classic metric for coforall-style static partitions.
    pub fn imbalance(&self) -> f64 {
        if self.threads.is_empty() {
            return 1.0;
        }
        let max = self.threads.iter().map(|t| t.nanos).max().unwrap_or(0) as f64;
        let mean = self.busy_nanos() as f64 / self.threads.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let t = TaskTimes::new(3);
        t.record(0, Duration::from_nanos(100), 5);
        t.record(0, Duration::from_nanos(50), 3);
        t.record(2, Duration::from_nanos(150), 7);
        let snap = t.snapshot();
        assert_eq!(snap.threads.len(), 3);
        assert_eq!(snap.threads[0].nanos, 150);
        assert_eq!(snap.threads[0].invocations, 2);
        assert_eq!(snap.threads[0].items, 8);
        assert_eq!(snap.threads[1].nanos, 0);
        assert_eq!(snap.busy_nanos(), 300);
        // mean = 100, max = 150 -> imbalance 1.5
        assert!((snap.imbalance() - 1.5).abs() < 1e-12);
        t.reset();
        assert_eq!(t.snapshot().busy_nanos(), 0);
    }

    #[test]
    fn empty_and_idle_imbalance() {
        assert_eq!(ThreadLoad::default().imbalance(), 1.0);
        assert_eq!(TaskTimes::new(4).snapshot().imbalance(), 1.0);
    }

    #[test]
    fn zero_tasks_clamps_to_one_slot() {
        let t = TaskTimes::new(0);
        assert_eq!(t.ntasks(), 1);
    }
}
