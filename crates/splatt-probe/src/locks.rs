//! Lock-pool contention counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared counters for one `LockPool`. All increments are relaxed — the
/// counters are diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct LockCounters {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    releases: AtomicU64,
    spin_iters: AtomicU64,
    wait_nanos: AtomicU64,
}

impl LockCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// An acquisition that succeeded on the first try.
    #[inline]
    pub fn record_uncontended(&self) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    /// An acquisition that had to spin and/or park. `spins` counts failed
    /// CAS / test-and-set iterations (or park rounds for sleeping locks).
    #[inline]
    pub fn record_contended(&self, spins: u64, waited: Duration) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.spin_iters.fetch_add(spins, Ordering::Relaxed);
        self.wait_nanos
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_release(&self) {
        self.releases.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> LockStats {
        LockStats {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            spin_iters: self.spin_iters.load(Ordering::Relaxed),
            wait_nanos: self.wait_nanos.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
        self.releases.store(0, Ordering::Relaxed);
        self.spin_iters.store(0, Ordering::Relaxed);
        self.wait_nanos.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`LockCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    pub acquisitions: u64,
    pub contended: u64,
    pub releases: u64,
    pub spin_iters: u64,
    pub wait_nanos: u64,
}

impl LockStats {
    /// Fraction of acquisitions that found the lock held.
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }

    pub fn wait(&self) -> Duration {
        Duration::from_nanos(self.wait_nanos)
    }

    /// Quiescent self-consistency: every acquisition has been released.
    pub fn is_balanced(&self) -> bool {
        self.acquisitions == self.releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roundtrip() {
        let c = LockCounters::new();
        c.record_uncontended();
        c.record_contended(17, Duration::from_nanos(500));
        c.record_release();
        c.record_release();
        let s = c.snapshot();
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.contended, 1);
        assert_eq!(s.releases, 2);
        assert_eq!(s.spin_iters, 17);
        assert_eq!(s.wait_nanos, 500);
        assert!(s.is_balanced());
        assert!((s.contention_rate() - 0.5).abs() < 1e-12);
        c.reset();
        assert_eq!(c.snapshot(), LockStats::default());
    }

    #[test]
    fn empty_stats_rate_is_zero() {
        assert_eq!(LockStats::default().contention_rate(), 0.0);
    }
}
