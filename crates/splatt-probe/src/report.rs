//! The hierarchical profile report: per-routine rows (the paper's
//! Table III layout), per-thread load, lock contention, allocation
//! accounting, and the span tree — renderable as text and as
//! schema-stable JSON.

use crate::alloc::AllocStats;
use crate::json;
use crate::locks::LockStats;
use crate::span::SpanNode;
use crate::tasks::ThreadLoad;
use std::fmt::Write as _;

/// Version tag embedded in every JSON profile. Bump only with a schema
/// change; tests pin the current value. v2 added the `faults` array
/// (injected-fault and recovery-action rows); v3 added the `guard`
/// object (run-governance checks, trips, and watchdog activity); v4
/// added `kernel_scratch_*` alloc counters; v5 added the `serve` object
/// (per-query-kind latency histograms, batch-size distribution, cache
/// hit rate, and shed counts from the serving subsystem); v6 added the
/// `dispatch` array (per-mode tensor-format and kernel decisions from
/// the benchmark-driven dispatcher); v7 added `serve.shards` (per-shard
/// cluster routing counters: retries, failovers, degraded answers,
/// health transitions, and replica lag — empty in single-process mode);
/// v8 added the `store` object (durability counters from the crash-safe
/// persistence layer: WAL appends/commits/fsyncs, atomic publishes,
/// segment rotations, recovery scans, torn bytes truncated, and
/// checksum failures — `null` outside ingest/recover runs); v9 added
/// the `refresh` object (online-refresh counters: rounds, deltas
/// applied, incremental-merge comparisons and time, rebuild sorts
/// skipped, warm-started refit iterations, warm fit and warm-vs-cold
/// gap, publish latency, and the durable watermark — `null` outside
/// refresh runs); v10 added `serve.net` (multiplexed front-end
/// counters from the `splatt-net` reactor: connection counts and peak,
/// readiness wakeups, frame and write-coalescing totals, per-layer
/// admission sheds, idle closes, deadline backstops, and worker-pool
/// size — `null` when serving through the legacy thread-per-connection
/// front end or not serving at all).
pub const PROFILE_SCHEMA: &str = "splatt-profile-v10";

/// One row of the per-routine table (label from `splatt_par::Routine`).
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineRow {
    pub routine: String,
    pub seconds: f64,
}

/// One injected fault and the recovery action that absorbed it.
///
/// Kept as plain strings so this crate stays independent of the
/// fault-injection crate: producers (the CP-ALS drivers) translate their
/// typed fault records into rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultRow {
    /// Fault kind label (e.g. `straggler`, `non-spd-gram`).
    pub kind: String,
    /// ALS iteration the fault hit.
    pub iteration: usize,
    /// Where it was injected (e.g. `mode 1 mttkrp`, `allreduce rank 3`).
    pub site: String,
    /// Human-readable recovery description (e.g. `retried 2x`).
    pub action: String,
}

/// Run-governance activity during one profiled run.
///
/// Like [`FaultRow`], kept as plain data so this crate stays independent
/// of the guard crate: the CP-ALS drivers translate a guard snapshot
/// into this row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GuardRow {
    /// Full driver guard checks performed.
    pub checks: u64,
    /// Checks that returned a trip.
    pub trips: u64,
    /// Stall reports filed by the watchdog.
    pub watchdog_reports: u64,
    /// Sampling passes the watchdog completed.
    pub watchdog_samples: u64,
    /// Human-readable trip reason, empty if the run never tripped.
    pub trip: String,
}

/// One per-mode tensor-format / kernel decision from the dispatcher —
/// the v6 schema addition.
///
/// Like [`FaultRow`], kept as plain strings so this crate stays
/// independent of the decomposition core: the CP-ALS drivers translate
/// their typed `ModeDecision`s into rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DispatchRow {
    /// Mode the decision applies to.
    pub mode: usize,
    /// Format label (`csf`, `alto`).
    pub format: String,
    /// Kernel-role label (`root`, `internal`, `leaf`).
    pub kernel: String,
    /// Synchronization label (`none`, `privatized`, `locks`).
    pub sync: String,
    /// Whether a fixed-rank specialized kernel was selected.
    pub specialize: bool,
    /// Decision provenance label (`forced`, `auto`, `fallback`).
    pub source: String,
}

/// Latency profile of one query kind served by the serving subsystem.
///
/// Buckets are log2 microseconds: `buckets[i]` counts requests whose
/// latency fell in `[2^i, 2^(i+1))` µs, with sub-microsecond requests in
/// bucket 0. Quantiles are precomputed by the producer from the same
/// histogram so the row stays plain data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryKindRow {
    /// Query kind label (`entry`, `slice`, `topk`).
    pub kind: String,
    /// Requests answered successfully.
    pub requests: u64,
    /// Median latency in microseconds (histogram upper bound).
    pub p50_micros: u64,
    /// 99th-percentile latency in microseconds (histogram upper bound).
    pub p99_micros: u64,
    /// Worst observed latency in microseconds.
    pub max_micros: u64,
    /// Log2-microsecond latency histogram.
    pub buckets: Vec<u64>,
}

/// Per-shard cluster routing counters — the v7 schema addition. Like
/// [`FaultRow`], kept as plain data so this crate stays independent of
/// the serving crate: the cluster router translates its atomics into
/// rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardRow {
    /// Shard index on the consistent-hash ring.
    pub shard: usize,
    /// Full replica-sweep retries (capped exponential backoff rounds).
    pub retries: u64,
    /// Calls answered by a non-first replica after a sibling failed.
    pub failovers: u64,
    /// Typed `Degraded` answers: no live replica covered this shard.
    pub degraded: u64,
    /// Health-state transitions across the shard's replica set
    /// (live→suspect, suspect→dead, re-admissions).
    pub health_transitions: u64,
    /// Max−min health-probe round-trip across answering replicas, µs.
    pub replica_lag_micros: u64,
}

/// Serving-subsystem activity during one profiled process — the v5
/// schema addition. Like [`FaultRow`] and [`GuardRow`], kept as plain
/// data so this crate stays independent of the serving crate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeRow {
    /// Per-query-kind latency rows, one per kind that saw traffic.
    pub kinds: Vec<QueryKindRow>,
    /// Batches executed by the micro-batching scheduler.
    pub batches: u64,
    /// Requests that rode in those batches.
    pub batched_requests: u64,
    /// Largest batch coalesced.
    pub max_batch: u64,
    /// Log2 batch-size histogram: `batch_buckets[i]` counts batches of
    /// size in `[2^i, 2^(i+1))`.
    pub batch_buckets: Vec<u64>,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Entries evicted from the result cache.
    pub cache_evictions: u64,
    /// Requests shed by admission control (typed `Overloaded`).
    pub sheds: u64,
    /// Requests rejected because their deadline expired in queue.
    pub deadline_rejections: u64,
    /// Query-arena growth events since serving started (warm-up only in
    /// a healthy steady state).
    pub arena_growth_allocs: u64,
    /// Bytes of query-arena growth.
    pub arena_growth_bytes: u64,
    /// Per-shard cluster routing counters (the v7 addition); empty when
    /// the process serves single-process, without a router.
    pub shards: Vec<ShardRow>,
    /// Multiplexed front-end counters (the v10 addition); `None` when
    /// serving through the legacy thread-per-connection front end.
    pub net: Option<NetFrontRow>,
}

/// Reactor front-end counters — the v10 schema addition. Like
/// [`ServeRow`], plain data so this crate stays independent of the
/// networking crate; the serving layer copies its live counters in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFrontRow {
    /// Connections accepted from the OS (including ones later shed).
    pub accepted: u64,
    /// Connections registered with the reactor at snapshot time.
    pub connections_open: u64,
    /// High-water mark of open connections.
    pub connections_peak: u64,
    /// Poll/sweep iterations executed.
    pub polls: u64,
    /// Polls that returned at least one ready descriptor.
    pub readiness_wakeups: u64,
    /// Complete request frames parsed off sockets.
    pub frames_read: u64,
    /// Response frames appended to write buffers.
    pub frames_written: u64,
    /// Write syscalls issued.
    pub writes: u64,
    /// Flushes that pushed two or more response frames in one batch.
    pub coalesced_writes: u64,
    /// Connections shed at the accept layer (connection cap).
    pub sheds_accept: u64,
    /// Requests shed at the decode layer (queue depth or pipeline cap).
    pub sheds_decode: u64,
    /// Connections closed by the idle timer.
    pub idle_closed: u64,
    /// Requests answered by the reactor's deadline backstop.
    pub deadline_backstops: u64,
    /// Worker threads in the front-end pool.
    pub worker_threads: u64,
}

impl ServeRow {
    /// Cache hit rate in `[0, 1]`; 0 when the cache saw no lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Durability-layer counters from the crash-safe persistence stack —
/// the v8 schema addition. Like [`FaultRow`], kept as plain data so
/// this crate stays independent of the store crate: the CLI copies a
/// `splatt-store` counter snapshot into this row after an
/// ingest/recover run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreRow {
    /// Records appended to a WAL (buffered; not yet durable).
    pub wal_appends: u64,
    /// Group commits that reached the durable-ack point.
    pub wal_commits: u64,
    /// `fsync` calls issued (segments, artifacts, directories).
    pub fsyncs: u64,
    /// Artifacts published via the temp→fsync→rename protocol.
    pub atomic_publishes: u64,
    /// WAL segment rotations.
    pub segments_rotated: u64,
    /// WAL recovery scans performed on open.
    pub recoveries: u64,
    /// Records returned by recovery scans.
    pub records_recovered: u64,
    /// Bytes physically truncated off torn WAL tails.
    pub torn_bytes_truncated: u64,
    /// CRC mismatches observed while reading frames.
    pub checksum_failures: u64,
}

/// Online-refresh counters — the v9 schema addition. Like [`StoreRow`],
/// plain data: the refresh driver copies its counters into this row so
/// the probe crate stays independent of the solver and store crates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RefreshRow {
    /// Refresh rounds completed (WAL tail → merge → refit → publish).
    pub rounds: u64,
    /// WAL records applied past the committed watermark.
    pub deltas_applied: u64,
    /// Individual delta entries merged into the resident tensor.
    pub entries_merged: u64,
    /// Coordinate comparisons spent in the incremental merges — the
    /// asymptotic-cost evidence (compare against a full re-coalesce
    /// bound, not wall-clock).
    pub merge_compare_ops: u64,
    /// Nanoseconds spent merging deltas into the resident tensor.
    pub merge_ns: u64,
    /// CSF/ALTO rebuild sorts skipped because the merged tensor was
    /// already strictly sorted (the incremental-rebuild fast path).
    pub sorts_skipped: u64,
    /// ALS iterations across all warm-started refits.
    pub refit_iterations: u64,
    /// Final fit of the most recent warm-started refit.
    pub warm_fit: f64,
    /// `|warm fit − cold fit|` of the most recent audited refit; `0`
    /// when the cold-refit audit was not requested.
    pub warm_fit_gap: f64,
    /// Nanoseconds spent publishing (model artifact + manifest + registry).
    pub publish_ns: u64,
    /// Committed WAL watermark, exclusive: every record with
    /// `seq < watermark` is durably folded into the published state.
    pub watermark: u64,
}

/// Everything measured during one profiled CP-ALS run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    pub ntasks: usize,
    pub rank: usize,
    pub iterations: usize,
    /// Label of the lock strategy in effect (paper terms: Atomic / Sync /
    /// FIFO-sync), regardless of whether the run actually took locks.
    pub lock_strategy: String,
    /// True if at least one MTTKRP used the lock pool (vs privatization).
    pub used_locks: bool,
    /// Per-mode tensor-format / kernel decisions, one row per mode.
    /// Empty when the producer predates the dispatcher.
    pub dispatch: Vec<DispatchRow>,
    pub routines: Vec<RoutineRow>,
    pub threads: ThreadLoad,
    pub locks: LockStats,
    pub alloc: AllocStats,
    pub span: SpanNode,
    /// Injected faults and their recovery actions, in injection order.
    /// Empty when the run had no fault plan.
    pub faults: Vec<FaultRow>,
    /// Run-governance activity; `None` when the run was unguarded.
    pub guard: Option<GuardRow>,
    /// Serving-subsystem activity; `None` outside a serving process.
    pub serve: Option<ServeRow>,
    /// Durability-layer counters; `None` outside ingest/recover runs.
    pub store: Option<StoreRow>,
    /// Online-refresh counters; `None` outside refresh runs.
    pub refresh: Option<RefreshRow>,
}

impl Default for RoutineRow {
    fn default() -> Self {
        RoutineRow {
            routine: String::new(),
            seconds: 0.0,
        }
    }
}

fn num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

fn span_json(out: &mut String, s: &SpanNode) {
    out.push_str("{\"label\": ");
    json::write_escaped(out, &s.label);
    let _ = write!(out, ", \"nanos\": {}, \"seconds\": ", s.nanos);
    num(out, s.seconds());
    out.push_str(", \"children\": [");
    for (i, c) in s.children.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        span_json(out, c);
    }
    out.push_str("]}");
}

impl ProfileReport {
    /// Total CPD seconds: the "CPD total" routine row.
    pub fn cpd_seconds(&self) -> f64 {
        self.routines
            .iter()
            .find(|r| r.routine == "CPD total")
            .map(|r| r.seconds)
            .unwrap_or(0.0)
    }

    /// Serialize as one JSON document (schema [`PROFILE_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"schema\": ");
        json::write_escaped(&mut out, PROFILE_SCHEMA);
        let _ = write!(
            out,
            ",\n  \"ntasks\": {},\n  \"rank\": {},\n  \"iterations\": {},\n  \"lock_strategy\": ",
            self.ntasks, self.rank, self.iterations
        );
        json::write_escaped(&mut out, &self.lock_strategy);
        let _ = write!(
            out,
            ",\n  \"used_locks\": {},\n  \"dispatch\": [",
            self.used_locks
        );
        for (i, d) in self.dispatch.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\n    {{\"mode\": {}, \"format\": ", d.mode);
            json::write_escaped(&mut out, &d.format);
            out.push_str(", \"kernel\": ");
            json::write_escaped(&mut out, &d.kernel);
            out.push_str(", \"sync\": ");
            json::write_escaped(&mut out, &d.sync);
            let _ = write!(out, ", \"specialize\": {}, \"source\": ", d.specialize);
            json::write_escaped(&mut out, &d.source);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"routines\": [");
        for (i, r) in self.routines.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("\n    {\"routine\": ");
            json::write_escaped(&mut out, &r.routine);
            out.push_str(", \"seconds\": ");
            num(&mut out, r.seconds);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"threads\": [");
        for (i, t) in self.threads.threads.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\n    {{\"tid\": {}, \"nanos\": {}, \"seconds\": ",
                t.tid, t.nanos
            );
            num(&mut out, t.seconds());
            let _ = write!(
                out,
                ", \"invocations\": {}, \"items\": {}}}",
                t.invocations, t.items
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"locks\": {{\"acquisitions\": {}, \"contended\": {}, \"releases\": {}, \
             \"spin_iters\": {}, \"wait_nanos\": {}, \"contention_rate\": ",
            self.locks.acquisitions,
            self.locks.contended,
            self.locks.releases,
            self.locks.spin_iters,
            self.locks.wait_nanos
        );
        num(&mut out, self.locks.contention_rate());
        let _ = write!(
            out,
            "}},\n  \"alloc\": {{\"row_copies\": {}, \"row_copy_bytes\": {}, \
             \"descriptor_allocs\": {}, \"descriptor_bytes\": {}, \"replica_bytes\": {}, \
             \"replica_reductions\": {}, \"kernel_scratch_allocs\": {}, \
             \"kernel_scratch_bytes\": {}}},",
            self.alloc.row_copies,
            self.alloc.row_copy_bytes,
            self.alloc.descriptor_allocs,
            self.alloc.descriptor_bytes,
            self.alloc.replica_bytes,
            self.alloc.replica_reductions,
            self.alloc.kernel_scratch_allocs,
            self.alloc.kernel_scratch_bytes
        );
        out.push_str("\n  \"faults\": [");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("\n    {\"kind\": ");
            json::write_escaped(&mut out, &f.kind);
            let _ = write!(out, ", \"iteration\": {}, \"site\": ", f.iteration);
            json::write_escaped(&mut out, &f.site);
            out.push_str(", \"action\": ");
            json::write_escaped(&mut out, &f.action);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"guard\": ");
        match &self.guard {
            None => out.push_str("null"),
            Some(g) => {
                let _ = write!(
                    out,
                    "{{\"checks\": {}, \"trips\": {}, \"watchdog_reports\": {}, \
                     \"watchdog_samples\": {}, \"trip\": ",
                    g.checks, g.trips, g.watchdog_reports, g.watchdog_samples
                );
                json::write_escaped(&mut out, &g.trip);
                out.push('}');
            }
        }
        out.push_str(",\n  \"serve\": ");
        match &self.serve {
            None => out.push_str("null"),
            Some(s) => {
                out.push_str("{\"kinds\": [");
                for (i, k) in s.kinds.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str("\n    {\"kind\": ");
                    json::write_escaped(&mut out, &k.kind);
                    let _ = write!(
                        out,
                        ", \"requests\": {}, \"p50_micros\": {}, \"p99_micros\": {}, \
                         \"max_micros\": {}, \"buckets\": [",
                        k.requests, k.p50_micros, k.p99_micros, k.max_micros
                    );
                    for (j, b) in k.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("]}");
                }
                let _ = write!(
                    out,
                    "\n  ], \"batches\": {}, \"batched_requests\": {}, \"max_batch\": {}, \
                     \"batch_buckets\": [",
                    s.batches, s.batched_requests, s.max_batch
                );
                for (j, b) in s.batch_buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{b}");
                }
                let _ = write!(
                    out,
                    "], \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, \
                     \"cache_hit_rate\": ",
                    s.cache_hits, s.cache_misses, s.cache_evictions
                );
                num(&mut out, s.cache_hit_rate());
                let _ = write!(
                    out,
                    ", \"sheds\": {}, \"deadline_rejections\": {}, \
                     \"arena_growth_allocs\": {}, \"arena_growth_bytes\": {}, \"shards\": [",
                    s.sheds, s.deadline_rejections, s.arena_growth_allocs, s.arena_growth_bytes
                );
                for (j, sh) in s.shards.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "\n    {{\"shard\": {}, \"retries\": {}, \"failovers\": {}, \
                         \"degraded\": {}, \"health_transitions\": {}, \
                         \"replica_lag_micros\": {}}}",
                        sh.shard,
                        sh.retries,
                        sh.failovers,
                        sh.degraded,
                        sh.health_transitions,
                        sh.replica_lag_micros
                    );
                }
                if s.shards.is_empty() {
                    out.push(']');
                } else {
                    out.push_str("\n  ]");
                }
                out.push_str(", \"net\": ");
                match &s.net {
                    None => out.push_str("null"),
                    Some(n) => {
                        let _ = write!(
                            out,
                            "{{\"accepted\": {}, \"connections_open\": {}, \
                             \"connections_peak\": {}, \"polls\": {}, \
                             \"readiness_wakeups\": {}, \"frames_read\": {}, \
                             \"frames_written\": {}, \"writes\": {}, \
                             \"coalesced_writes\": {}, \"sheds_accept\": {}, \
                             \"sheds_decode\": {}, \"idle_closed\": {}, \
                             \"deadline_backstops\": {}, \"worker_threads\": {}}}",
                            n.accepted,
                            n.connections_open,
                            n.connections_peak,
                            n.polls,
                            n.readiness_wakeups,
                            n.frames_read,
                            n.frames_written,
                            n.writes,
                            n.coalesced_writes,
                            n.sheds_accept,
                            n.sheds_decode,
                            n.idle_closed,
                            n.deadline_backstops,
                            n.worker_threads
                        );
                    }
                }
                out.push('}');
            }
        }
        out.push_str(",\n  \"store\": ");
        match &self.store {
            None => out.push_str("null"),
            Some(s) => {
                let _ = write!(
                    out,
                    "{{\"wal_appends\": {}, \"wal_commits\": {}, \"fsyncs\": {}, \
                     \"atomic_publishes\": {}, \"segments_rotated\": {}, \"recoveries\": {}, \
                     \"records_recovered\": {}, \"torn_bytes_truncated\": {}, \
                     \"checksum_failures\": {}}}",
                    s.wal_appends,
                    s.wal_commits,
                    s.fsyncs,
                    s.atomic_publishes,
                    s.segments_rotated,
                    s.recoveries,
                    s.records_recovered,
                    s.torn_bytes_truncated,
                    s.checksum_failures
                );
            }
        }
        out.push_str(",\n  \"refresh\": ");
        match &self.refresh {
            None => out.push_str("null"),
            Some(r) => {
                let _ = write!(
                    out,
                    "{{\"rounds\": {}, \"deltas_applied\": {}, \"entries_merged\": {}, \
                     \"merge_compare_ops\": {}, \"merge_ns\": {}, \"sorts_skipped\": {}, \
                     \"refit_iterations\": {}, \"warm_fit\": ",
                    r.rounds,
                    r.deltas_applied,
                    r.entries_merged,
                    r.merge_compare_ops,
                    r.merge_ns,
                    r.sorts_skipped,
                    r.refit_iterations
                );
                num(&mut out, r.warm_fit);
                out.push_str(", \"warm_fit_gap\": ");
                num(&mut out, r.warm_fit_gap);
                let _ = write!(
                    out,
                    ", \"publish_ns\": {}, \"watermark\": {}}}",
                    r.publish_ns, r.watermark
                );
            }
        }
        out.push_str(",\n  \"spans\": ");
        span_json(&mut out, &self.span);
        out.push_str("\n}\n");
        out
    }

    /// Text rendering in the spirit of the paper's Table III: per-routine
    /// seconds with their share of CPD total, then the observability
    /// sections the paper derives its Section V analysis from.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let total = self.cpd_seconds();
        let _ = writeln!(
            out,
            "CP-ALS profile  (tasks={}, rank={}, iterations={}, locks={}{})",
            self.ntasks,
            self.rank,
            self.iterations,
            self.lock_strategy,
            if self.used_locks { "" } else { " [privatized]" }
        );
        let _ = writeln!(
            out,
            "\n  {:<12} {:>12} {:>8}",
            "routine", "seconds", "share"
        );
        for r in &self.routines {
            let share = if total > 0.0 {
                100.0 * r.seconds / total
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<12} {:>12.4} {:>7.1}%",
                r.routine, r.seconds, share
            );
        }
        if !self.dispatch.is_empty() {
            out.push_str("\n  format dispatch\n");
            for d in &self.dispatch {
                let _ = writeln!(
                    out,
                    "  mode {:<3} {:<5} {:<9} {:<11} {} ({})",
                    d.mode,
                    d.format,
                    d.kernel,
                    d.sync,
                    if d.specialize {
                        "specialized"
                    } else {
                        "generic"
                    },
                    d.source
                );
            }
        }
        out.push_str("\n  per-thread MTTKRP busy time\n");
        for t in &self.threads.threads {
            let _ = writeln!(
                out,
                "  thread {:<4} {:>12.4}s  {:>8} calls  {:>10} items",
                t.tid,
                t.seconds(),
                t.invocations,
                t.items
            );
        }
        let _ = writeln!(
            out,
            "  load imbalance (max/mean): {:.3}",
            self.threads.imbalance()
        );
        let _ = writeln!(
            out,
            "\n  locks: {} acquisitions ({} contended, {:.2}% rate), {} spin iters, {:.4}s waited",
            self.locks.acquisitions,
            self.locks.contended,
            100.0 * self.locks.contention_rate(),
            self.locks.spin_iters,
            self.locks.wait().as_secs_f64()
        );
        let _ = writeln!(
            out,
            "  alloc: {} row copies ({} B), {} descriptors ({} B), {} B replicas over {} reductions, {} scratch growths ({} B)",
            self.alloc.row_copies,
            self.alloc.row_copy_bytes,
            self.alloc.descriptor_allocs,
            self.alloc.descriptor_bytes,
            self.alloc.replica_bytes,
            self.alloc.replica_reductions,
            self.alloc.kernel_scratch_allocs,
            self.alloc.kernel_scratch_bytes
        );
        if !self.faults.is_empty() {
            let _ = writeln!(out, "\n  faults injected: {}", self.faults.len());
            for f in &self.faults {
                let _ = writeln!(
                    out,
                    "  [it {:>3}] {:<18} at {:<24} -> {}",
                    f.iteration, f.kind, f.site, f.action
                );
            }
        }
        if let Some(g) = &self.guard {
            let _ = writeln!(
                out,
                "\n  guard: {} checks, {} trips, watchdog {} reports over {} samples{}",
                g.checks,
                g.trips,
                g.watchdog_reports,
                g.watchdog_samples,
                if g.trip.is_empty() {
                    String::new()
                } else {
                    format!(" — tripped: {}", g.trip)
                }
            );
        }
        if let Some(s) = &self.serve {
            let _ = writeln!(
                out,
                "\n  serve: {} batches over {} requests (max batch {}), cache {:.1}% hit \
                 ({} hits / {} misses, {} evictions), {} shed, {} deadline-expired, \
                 {} arena growths ({} B)",
                s.batches,
                s.batched_requests,
                s.max_batch,
                100.0 * s.cache_hit_rate(),
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
                s.sheds,
                s.deadline_rejections,
                s.arena_growth_allocs,
                s.arena_growth_bytes
            );
            if let Some(n) = &s.net {
                let _ = writeln!(
                    out,
                    "  net: {} conns open (peak {}, {} accepted), {} workers, \
                     {} wakeups / {} polls, {} frames in / {} out, \
                     {} coalesced of {} writes, sheds {} accept / {} decode, \
                     {} idle-closed, {} backstops",
                    n.connections_open,
                    n.connections_peak,
                    n.accepted,
                    n.worker_threads,
                    n.readiness_wakeups,
                    n.polls,
                    n.frames_read,
                    n.frames_written,
                    n.coalesced_writes,
                    n.writes,
                    n.sheds_accept,
                    n.sheds_decode,
                    n.idle_closed,
                    n.deadline_backstops
                );
            }
            for k in &s.kinds {
                let _ = writeln!(
                    out,
                    "  {:<6} {:>10} requests  p50 {:>8}us  p99 {:>8}us  max {:>8}us",
                    k.kind, k.requests, k.p50_micros, k.p99_micros, k.max_micros
                );
            }
            for sh in &s.shards {
                let _ = writeln!(
                    out,
                    "  shard {:>3}  {} retries, {} failovers, {} degraded, \
                     {} health transitions, replica lag {}us",
                    sh.shard,
                    sh.retries,
                    sh.failovers,
                    sh.degraded,
                    sh.health_transitions,
                    sh.replica_lag_micros
                );
            }
        }
        if let Some(s) = &self.store {
            let _ = writeln!(
                out,
                "  store: {} WAL appends in {} commits, {} fsyncs, {} atomic publishes, \
                 {} segments rotated",
                s.wal_appends, s.wal_commits, s.fsyncs, s.atomic_publishes, s.segments_rotated
            );
            let _ = writeln!(
                out,
                "         {} recoveries restored {} records, truncated {} torn bytes, \
                 {} checksum failures",
                s.recoveries, s.records_recovered, s.torn_bytes_truncated, s.checksum_failures
            );
        }
        if let Some(r) = &self.refresh {
            let _ = writeln!(
                out,
                "  refresh: {} rounds applied {} deltas ({} entries) to watermark {}, \
                 {} merge comparisons in {:.4}s, {} sorts skipped",
                r.rounds,
                r.deltas_applied,
                r.entries_merged,
                r.watermark,
                r.merge_compare_ops,
                r.merge_ns as f64 / 1e9,
                r.sorts_skipped
            );
            let _ = writeln!(
                out,
                "           {} warm refit iterations, fit {:.6} (warm-vs-cold gap {:.2e}), \
                 publish {:.4}s",
                r.refit_iterations,
                r.warm_fit,
                r.warm_fit_gap,
                r.publish_ns as f64 / 1e9
            );
        }
        out.push_str("\n  span tree\n");
        self.span.render_into(&mut out, 1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::ThreadLoadRow;

    fn sample() -> ProfileReport {
        let mut span = SpanNode::leaf("cpd", 2_000_000);
        span.push(SpanNode::leaf("iteration 0", 1_900_000));
        ProfileReport {
            ntasks: 2,
            rank: 4,
            iterations: 1,
            lock_strategy: "Atomic".into(),
            used_locks: true,
            dispatch: vec![
                DispatchRow {
                    mode: 0,
                    format: "csf".into(),
                    kernel: "root".into(),
                    sync: "none".into(),
                    specialize: true,
                    source: "auto".into(),
                },
                DispatchRow {
                    mode: 1,
                    format: "alto".into(),
                    kernel: "internal".into(),
                    sync: "privatized".into(),
                    specialize: false,
                    source: "auto".into(),
                },
            ],
            routines: vec![
                RoutineRow {
                    routine: "MTTKRP".into(),
                    seconds: 0.001,
                },
                RoutineRow {
                    routine: "CPD total".into(),
                    seconds: 0.002,
                },
            ],
            threads: ThreadLoad {
                threads: vec![
                    ThreadLoadRow {
                        tid: 0,
                        nanos: 600_000,
                        invocations: 3,
                        items: 30,
                    },
                    ThreadLoadRow {
                        tid: 1,
                        nanos: 400_000,
                        invocations: 3,
                        items: 20,
                    },
                ],
            },
            locks: LockStats {
                acquisitions: 100,
                contended: 10,
                releases: 100,
                spin_iters: 50,
                wait_nanos: 1234,
            },
            alloc: AllocStats {
                row_copies: 7,
                row_copy_bytes: 224,
                descriptor_allocs: 7,
                descriptor_bytes: 112,
                replica_bytes: 0,
                replica_reductions: 0,
                kernel_scratch_allocs: 1,
                kernel_scratch_bytes: 2048,
            },
            span,
            faults: vec![FaultRow {
                kind: "straggler".into(),
                iteration: 0,
                site: "mode 1 mttkrp".into(),
                action: "absorbed 0.5ms delay".into(),
            }],
            guard: Some(GuardRow {
                checks: 40,
                trips: 1,
                watchdog_reports: 2,
                watchdog_samples: 100,
                trip: "deadline exceeded (1.5s elapsed of 1.0s budget)".into(),
            }),
            serve: Some(ServeRow {
                kinds: vec![
                    QueryKindRow {
                        kind: "entry".into(),
                        requests: 900,
                        p50_micros: 4,
                        p99_micros: 64,
                        max_micros: 120,
                        buckets: vec![10, 500, 380, 8, 2],
                    },
                    QueryKindRow {
                        kind: "topk".into(),
                        requests: 100,
                        p50_micros: 32,
                        p99_micros: 512,
                        max_micros: 700,
                        buckets: vec![0, 0, 0, 0, 0, 90, 6, 2, 1, 1],
                    },
                ],
                batches: 250,
                batched_requests: 1000,
                max_batch: 16,
                batch_buckets: vec![100, 80, 40, 20, 10],
                cache_hits: 300,
                cache_misses: 100,
                cache_evictions: 5,
                sheds: 12,
                deadline_rejections: 3,
                arena_growth_allocs: 6,
                arena_growth_bytes: 4096,
                shards: vec![
                    ShardRow {
                        shard: 0,
                        retries: 4,
                        failovers: 2,
                        degraded: 1,
                        health_transitions: 3,
                        replica_lag_micros: 250,
                    },
                    ShardRow {
                        shard: 1,
                        ..ShardRow::default()
                    },
                ],
                net: Some(NetFrontRow {
                    accepted: 10_500,
                    connections_open: 9_800,
                    connections_peak: 10_000,
                    polls: 50_000,
                    readiness_wakeups: 42_000,
                    frames_read: 120_000,
                    frames_written: 120_000,
                    writes: 90_000,
                    coalesced_writes: 8_000,
                    sheds_accept: 500,
                    sheds_decode: 1_200,
                    idle_closed: 150,
                    deadline_backstops: 2,
                    worker_threads: 8,
                }),
            }),
            store: Some(StoreRow {
                wal_appends: 120,
                wal_commits: 30,
                fsyncs: 35,
                atomic_publishes: 4,
                segments_rotated: 2,
                recoveries: 1,
                records_recovered: 118,
                torn_bytes_truncated: 17,
                checksum_failures: 1,
            }),
            refresh: Some(RefreshRow {
                rounds: 3,
                deltas_applied: 12,
                entries_merged: 480,
                merge_compare_ops: 5200,
                merge_ns: 1_500_000,
                sorts_skipped: 9,
                refit_iterations: 15,
                warm_fit: 0.998765,
                warm_fit_gap: 4.2e-8,
                publish_ns: 800_000,
                watermark: 12,
            }),
        }
    }

    #[test]
    fn json_parses_and_is_schema_stable() {
        let report = sample();
        let doc = json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(PROFILE_SCHEMA));
        assert_eq!(doc.get("ntasks").unwrap().as_u64(), Some(2));
        let dispatch = doc.get("dispatch").unwrap().as_array().unwrap();
        assert_eq!(dispatch.len(), 2);
        assert_eq!(dispatch[0].get("format").unwrap().as_str(), Some("csf"));
        assert_eq!(dispatch[0].get("kernel").unwrap().as_str(), Some("root"));
        assert_eq!(dispatch[1].get("format").unwrap().as_str(), Some("alto"));
        assert_eq!(
            dispatch[1].get("sync").unwrap().as_str(),
            Some("privatized")
        );
        assert_eq!(dispatch[1].get("source").unwrap().as_str(), Some("auto"));
        let routines = doc.get("routines").unwrap().as_array().unwrap();
        assert_eq!(routines.len(), 2);
        assert_eq!(
            routines[1].get("routine").unwrap().as_str(),
            Some("CPD total")
        );
        let threads = doc.get("threads").unwrap().as_array().unwrap();
        assert_eq!(threads[0].get("nanos").unwrap().as_u64(), Some(600_000));
        assert_eq!(
            doc.get("locks")
                .unwrap()
                .get("acquisitions")
                .unwrap()
                .as_u64(),
            Some(100)
        );
        assert_eq!(
            doc.get("alloc")
                .unwrap()
                .get("row_copies")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(
            doc.get("alloc")
                .unwrap()
                .get("kernel_scratch_bytes")
                .unwrap()
                .as_u64(),
            Some(2048)
        );
        let spans = doc.get("spans").unwrap();
        assert_eq!(spans.get("label").unwrap().as_str(), Some("cpd"));
        assert_eq!(spans.get("children").unwrap().as_array().unwrap().len(), 1);
        let faults = doc.get("faults").unwrap().as_array().unwrap();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].get("kind").unwrap().as_str(), Some("straggler"));
        assert_eq!(faults[0].get("iteration").unwrap().as_u64(), Some(0));
        assert_eq!(
            faults[0].get("action").unwrap().as_str(),
            Some("absorbed 0.5ms delay")
        );
        let guard = doc.get("guard").unwrap();
        assert_eq!(guard.get("checks").unwrap().as_u64(), Some(40));
        assert_eq!(guard.get("trips").unwrap().as_u64(), Some(1));
        assert_eq!(guard.get("watchdog_reports").unwrap().as_u64(), Some(2));
        assert!(guard
            .get("trip")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("deadline"));
    }

    #[test]
    fn serve_object_is_schema_stable() {
        let report = sample();
        let doc = json::parse(&report.to_json()).expect("valid JSON");
        let serve = doc.get("serve").unwrap();
        let kinds = serve.get("kinds").unwrap().as_array().unwrap();
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].get("kind").unwrap().as_str(), Some("entry"));
        assert_eq!(kinds[0].get("requests").unwrap().as_u64(), Some(900));
        assert_eq!(kinds[0].get("p50_micros").unwrap().as_u64(), Some(4));
        assert_eq!(kinds[1].get("p99_micros").unwrap().as_u64(), Some(512));
        let buckets = kinds[0].get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[1].as_u64(), Some(500));
        assert_eq!(serve.get("batches").unwrap().as_u64(), Some(250));
        assert_eq!(serve.get("max_batch").unwrap().as_u64(), Some(16));
        assert_eq!(
            serve
                .get("batch_buckets")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            5
        );
        assert_eq!(serve.get("cache_hits").unwrap().as_u64(), Some(300));
        assert_eq!(serve.get("cache_evictions").unwrap().as_u64(), Some(5));
        let rate = serve.get("cache_hit_rate").unwrap().as_f64().unwrap();
        assert!((rate - 0.75).abs() < 1e-12);
        assert_eq!(serve.get("sheds").unwrap().as_u64(), Some(12));
        assert_eq!(serve.get("deadline_rejections").unwrap().as_u64(), Some(3));
        assert_eq!(
            serve.get("arena_growth_bytes").unwrap().as_u64(),
            Some(4096)
        );
        let shards = serve.get("shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("shard").unwrap().as_u64(), Some(0));
        assert_eq!(shards[0].get("retries").unwrap().as_u64(), Some(4));
        assert_eq!(shards[0].get("failovers").unwrap().as_u64(), Some(2));
        assert_eq!(shards[0].get("degraded").unwrap().as_u64(), Some(1));
        assert_eq!(
            shards[0].get("health_transitions").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            shards[0].get("replica_lag_micros").unwrap().as_u64(),
            Some(250)
        );
        assert_eq!(shards[1].get("retries").unwrap().as_u64(), Some(0));
        let net = serve.get("net").unwrap();
        assert_eq!(net.get("accepted").unwrap().as_u64(), Some(10_500));
        assert_eq!(net.get("connections_open").unwrap().as_u64(), Some(9_800));
        assert_eq!(net.get("connections_peak").unwrap().as_u64(), Some(10_000));
        assert_eq!(net.get("polls").unwrap().as_u64(), Some(50_000));
        assert_eq!(net.get("readiness_wakeups").unwrap().as_u64(), Some(42_000));
        assert_eq!(net.get("frames_read").unwrap().as_u64(), Some(120_000));
        assert_eq!(net.get("frames_written").unwrap().as_u64(), Some(120_000));
        assert_eq!(net.get("writes").unwrap().as_u64(), Some(90_000));
        assert_eq!(net.get("coalesced_writes").unwrap().as_u64(), Some(8_000));
        assert_eq!(net.get("sheds_accept").unwrap().as_u64(), Some(500));
        assert_eq!(net.get("sheds_decode").unwrap().as_u64(), Some(1_200));
        assert_eq!(net.get("idle_closed").unwrap().as_u64(), Some(150));
        assert_eq!(net.get("deadline_backstops").unwrap().as_u64(), Some(2));
        assert_eq!(net.get("worker_threads").unwrap().as_u64(), Some(8));
    }

    #[test]
    fn legacy_front_end_serializes_null_net() {
        let mut report = sample();
        report.serve.as_mut().unwrap().net = None;
        let json = report.to_json();
        assert!(json.contains("\"net\": null"), "json: {json}");
        json::parse(&json).expect("valid JSON");
        assert!(!report.render().contains("net:"));
    }

    #[test]
    fn non_serving_report_serializes_null_serve() {
        let mut report = sample();
        report.serve = None;
        let json = report.to_json();
        assert!(json.contains("\"serve\": null"), "json: {json}");
        json::parse(&json).expect("valid JSON");
        assert!(!report.render().contains("serve:"));
    }

    #[test]
    fn store_object_is_schema_stable() {
        let report = sample();
        let doc = json::parse(&report.to_json()).expect("valid JSON");
        let store = doc.get("store").unwrap();
        assert_eq!(store.get("wal_appends").unwrap().as_u64(), Some(120));
        assert_eq!(store.get("wal_commits").unwrap().as_u64(), Some(30));
        assert_eq!(store.get("fsyncs").unwrap().as_u64(), Some(35));
        assert_eq!(store.get("atomic_publishes").unwrap().as_u64(), Some(4));
        assert_eq!(store.get("segments_rotated").unwrap().as_u64(), Some(2));
        assert_eq!(store.get("recoveries").unwrap().as_u64(), Some(1));
        assert_eq!(store.get("records_recovered").unwrap().as_u64(), Some(118));
        assert_eq!(
            store.get("torn_bytes_truncated").unwrap().as_u64(),
            Some(17)
        );
        assert_eq!(store.get("checksum_failures").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn storeless_report_serializes_null_store() {
        let mut report = sample();
        report.store = None;
        let json = report.to_json();
        assert!(json.contains("\"store\": null"), "json: {json}");
        json::parse(&json).expect("valid JSON");
        assert!(!report.render().contains("store:"));
    }

    #[test]
    fn refresh_object_is_schema_stable() {
        let report = sample();
        let doc = json::parse(&report.to_json()).expect("valid JSON");
        let refresh = doc.get("refresh").unwrap();
        assert_eq!(refresh.get("rounds").unwrap().as_u64(), Some(3));
        assert_eq!(refresh.get("deltas_applied").unwrap().as_u64(), Some(12));
        assert_eq!(refresh.get("entries_merged").unwrap().as_u64(), Some(480));
        assert_eq!(
            refresh.get("merge_compare_ops").unwrap().as_u64(),
            Some(5200)
        );
        assert_eq!(refresh.get("merge_ns").unwrap().as_u64(), Some(1_500_000));
        assert_eq!(refresh.get("sorts_skipped").unwrap().as_u64(), Some(9));
        assert_eq!(refresh.get("refit_iterations").unwrap().as_u64(), Some(15));
        let fit = refresh.get("warm_fit").unwrap().as_f64().unwrap();
        assert!((fit - 0.998765).abs() < 1e-12);
        let gap = refresh.get("warm_fit_gap").unwrap().as_f64().unwrap();
        assert!((gap - 4.2e-8).abs() < 1e-20);
        assert_eq!(refresh.get("publish_ns").unwrap().as_u64(), Some(800_000));
        assert_eq!(refresh.get("watermark").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn refreshless_report_serializes_null_refresh() {
        let mut report = sample();
        report.refresh = None;
        let json = report.to_json();
        assert!(json.contains("\"refresh\": null"), "json: {json}");
        json::parse(&json).expect("valid JSON");
        assert!(!report.render().contains("refresh:"));
    }

    #[test]
    fn cache_hit_rate_handles_empty_cache() {
        assert_eq!(ServeRow::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn unguarded_report_serializes_null_guard() {
        let mut report = sample();
        report.guard = None;
        let json = report.to_json();
        assert!(json.contains("\"guard\": null"), "json: {json}");
        json::parse(&json).expect("valid JSON");
        assert!(!report.render().contains("guard:"));
    }

    #[test]
    fn faultless_report_has_empty_faults_array() {
        let mut report = sample();
        report.faults.clear();
        let doc = json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(doc.get("faults").unwrap().as_array().unwrap().len(), 0);
        assert!(!report.render().contains("faults injected"));
    }

    #[test]
    fn render_mentions_all_sections() {
        let text = sample().render();
        assert!(text.contains("MTTKRP"));
        assert!(text.contains("format dispatch"));
        assert!(text.contains("alto"));
        assert!(text.contains("privatized"));
        assert!(text.contains("per-thread"));
        assert!(text.contains("load imbalance"));
        assert!(text.contains("acquisitions"));
        assert!(text.contains("row copies"));
        assert!(text.contains("faults injected: 1"));
        assert!(text.contains("straggler"));
        assert!(text.contains("guard: 40 checks, 1 trips"));
        assert!(text.contains("tripped: deadline"));
        assert!(text.contains("serve: 250 batches"));
        assert!(text.contains("cache 75.0% hit"));
        assert!(text.contains("12 shed"));
        assert!(text.contains("net: 9800 conns open (peak 10000"));
        assert!(text.contains("sheds 500 accept / 1200 decode"));
        assert!(text.contains("store: 120 WAL appends in 30 commits"));
        assert!(text.contains("truncated 17 torn bytes"));
        assert!(text.contains("refresh: 3 rounds applied 12 deltas"));
        assert!(text.contains("15 warm refit iterations"));
        assert!(text.contains("span tree"));
    }

    #[test]
    fn dispatchless_report_has_empty_dispatch_array() {
        let mut report = sample();
        report.dispatch.clear();
        let doc = json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(doc.get("dispatch").unwrap().as_array().unwrap().len(), 0);
        assert!(!report.render().contains("format dispatch"));
    }

    #[test]
    fn cpd_seconds_lookup() {
        assert_eq!(sample().cpd_seconds(), 0.002);
        assert_eq!(ProfileReport::default().cpd_seconds(), 0.0);
    }
}
