//! Minimal JSON: an escaping string writer used by the report serializer,
//! and a small recursive-descent parser used by tests to validate profile
//! output. Not a general-purpose JSON library — no streaming, documents
//! are assumed to fit in memory, numbers are f64.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `obj["key"]` convenience: `None` on non-objects / missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }
}

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our output.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction: it came from a &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn escape_roundtrip() {
        let nasty = "quote\" backslash\\ newline\n tab\t control\u{1} unicode\u{263a}";
        let mut doc = String::from("{\"k\": ");
        write_escaped(&mut doc, nasty);
        doc.push('}');
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn u64_accessor() {
        let v = parse("{\"n\": 42, \"f\": 1.5, \"neg\": -1}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
    }
}
