//! Process-global allocation accounting for the hot access paths.
//!
//! The Chapel port's headline pathology is the "18x slice overhead": every
//! factor-row access through a slice allocates a descriptor and copies the
//! row. These counters quantify that in our reproduction's `RowCopy`
//! access variant, plus the privatization side of the tradeoff (replica
//! buffer bytes and reduction passes).
//!
//! The counters are process-global statics so the innermost kernels don't
//! need a threaded-through handle; recording is gated on one relaxed
//! `AtomicBool` load, which keeps the disabled path to a predictable
//! branch (the row-copy path it instruments performs a heap allocation per
//! call, so the load is noise even when enabled). Profiled runs in the
//! same process share the counters — take [`snapshot`] deltas around the
//! region of interest, as `cp_als` does.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

static ROW_COPIES: AtomicU64 = AtomicU64::new(0);
static ROW_COPY_BYTES: AtomicU64 = AtomicU64::new(0);
static DESCRIPTOR_ALLOCS: AtomicU64 = AtomicU64::new(0);
static DESCRIPTOR_BYTES: AtomicU64 = AtomicU64::new(0);
static REPLICA_BYTES: AtomicU64 = AtomicU64::new(0);
static REPLICA_REDUCTIONS: AtomicU64 = AtomicU64::new(0);
static KERNEL_SCRATCH_ALLOCS: AtomicU64 = AtomicU64::new(0);
static KERNEL_SCRATCH_BYTES: AtomicU64 = AtomicU64::new(0);

/// Turn recording on (used while a profiled run is active).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One factor-row copy of `bytes` bytes (RowCopy access variant).
#[inline]
pub fn record_row_copy(bytes: usize) {
    if enabled() {
        ROW_COPIES.fetch_add(1, Ordering::Relaxed);
        ROW_COPY_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// One slice-descriptor allocation of `bytes` bytes.
#[inline]
pub fn record_descriptor(bytes: usize) {
    if enabled() {
        DESCRIPTOR_ALLOCS.fetch_add(1, Ordering::Relaxed);
        DESCRIPTOR_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// A privatized MTTKRP sized its per-task replicas at `bytes` total and
/// performed one reduction pass over them.
#[inline]
pub fn record_privatization(bytes: usize) {
    if enabled() {
        REPLICA_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
        REPLICA_REDUCTIONS.fetch_add(1, Ordering::Relaxed);
    }
}

/// A privatized MTTKRP *grew* its per-task replica buffers by `bytes`.
/// Replicas are grow-only workspace scratch, so this fires on the first
/// call (and on rank/dim increases) and stays silent in steady state —
/// a nonzero delta across a steady-state window is a hot-loop allocation
/// regression.
#[inline]
pub fn record_replica_growth(bytes: usize) {
    if enabled() {
        REPLICA_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// One reduction pass over the per-task replicas.
#[inline]
pub fn record_replica_reduction() {
    if enabled() {
        REPLICA_REDUCTIONS.fetch_add(1, Ordering::Relaxed);
    }
}

/// The per-task kernel walk arenas grew by `bytes` (grow-only, like
/// replicas: silent in steady state).
#[inline]
pub fn record_kernel_scratch(bytes: usize) {
    if enabled() {
        KERNEL_SCRATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
        KERNEL_SCRATCH_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// Point-in-time copy of the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    pub row_copies: u64,
    pub row_copy_bytes: u64,
    pub descriptor_allocs: u64,
    pub descriptor_bytes: u64,
    pub replica_bytes: u64,
    pub replica_reductions: u64,
    pub kernel_scratch_allocs: u64,
    pub kernel_scratch_bytes: u64,
}

impl AllocStats {
    /// Counter-wise difference vs an earlier snapshot.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            row_copies: self.row_copies.wrapping_sub(earlier.row_copies),
            row_copy_bytes: self.row_copy_bytes.wrapping_sub(earlier.row_copy_bytes),
            descriptor_allocs: self
                .descriptor_allocs
                .wrapping_sub(earlier.descriptor_allocs),
            descriptor_bytes: self.descriptor_bytes.wrapping_sub(earlier.descriptor_bytes),
            replica_bytes: self.replica_bytes.wrapping_sub(earlier.replica_bytes),
            replica_reductions: self
                .replica_reductions
                .wrapping_sub(earlier.replica_reductions),
            kernel_scratch_allocs: self
                .kernel_scratch_allocs
                .wrapping_sub(earlier.kernel_scratch_allocs),
            kernel_scratch_bytes: self
                .kernel_scratch_bytes
                .wrapping_sub(earlier.kernel_scratch_bytes),
        }
    }

    /// Total bytes across the traffic streams — the quantity a memory
    /// budget bounds.
    pub fn total_bytes(&self) -> u64 {
        self.row_copy_bytes
            .wrapping_add(self.descriptor_bytes)
            .wrapping_add(self.replica_bytes)
            .wrapping_add(self.kernel_scratch_bytes)
    }

    /// Bytes allocated inside the kernels themselves (everything except
    /// reduction-pass counts, which are not allocations). A steady-state
    /// MTTKRP window — warm workspace, unchanged shapes — must report
    /// zero here for the slice-based access strategies.
    pub fn hot_loop_bytes(&self) -> u64 {
        self.row_copy_bytes
            .wrapping_add(self.descriptor_bytes)
            .wrapping_add(self.replica_bytes)
            .wrapping_add(self.kernel_scratch_bytes)
    }

    /// Allocation *events* in the hot path (copies, descriptors, scratch
    /// growths — replica growth is byte-only and covered by
    /// [`AllocStats::hot_loop_bytes`]).
    pub fn hot_loop_allocs(&self) -> u64 {
        self.row_copies
            .wrapping_add(self.descriptor_allocs)
            .wrapping_add(self.kernel_scratch_allocs)
    }
}

pub fn snapshot() -> AllocStats {
    AllocStats {
        row_copies: ROW_COPIES.load(Ordering::Relaxed),
        row_copy_bytes: ROW_COPY_BYTES.load(Ordering::Relaxed),
        descriptor_allocs: DESCRIPTOR_ALLOCS.load(Ordering::Relaxed),
        descriptor_bytes: DESCRIPTOR_BYTES.load(Ordering::Relaxed),
        replica_bytes: REPLICA_BYTES.load(Ordering::Relaxed),
        replica_reductions: REPLICA_REDUCTIONS.load(Ordering::Relaxed),
        kernel_scratch_allocs: KERNEL_SCRATCH_ALLOCS.load(Ordering::Relaxed),
        kernel_scratch_bytes: KERNEL_SCRATCH_BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_enabled_records() {
        // Runs in one test to avoid cross-test interference on the globals.
        disable();
        let before = snapshot();
        record_row_copy(280);
        record_descriptor(16);
        record_privatization(1024);
        assert_eq!(snapshot().since(&before), AllocStats::default());

        enable();
        let before = snapshot();
        record_row_copy(280);
        record_row_copy(280);
        record_descriptor(16);
        record_privatization(1024);
        record_replica_growth(512);
        record_replica_reduction();
        record_kernel_scratch(2048);
        let delta = snapshot().since(&before);
        disable();
        assert_eq!(delta.row_copies, 2);
        assert_eq!(delta.row_copy_bytes, 560);
        assert_eq!(delta.descriptor_allocs, 1);
        assert_eq!(delta.descriptor_bytes, 16);
        assert_eq!(delta.replica_bytes, 1024 + 512);
        assert_eq!(delta.replica_reductions, 2);
        assert_eq!(delta.kernel_scratch_allocs, 1);
        assert_eq!(delta.kernel_scratch_bytes, 2048);
        assert_eq!(delta.hot_loop_allocs(), 2 + 1 + 1);
        assert_eq!(delta.hot_loop_bytes(), 560 + 16 + 1024 + 512 + 2048);
    }
}
