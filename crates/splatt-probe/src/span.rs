//! Hierarchical timing spans: CPD total → iteration → mode → kernel.

/// One node of the span tree. Children's durations nest inside the
/// parent's (the parent may carry extra time not covered by children —
/// e.g. convergence checks inside an iteration).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanNode {
    pub label: String,
    pub nanos: u64,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    pub fn new(label: impl Into<String>) -> Self {
        SpanNode {
            label: label.into(),
            nanos: 0,
            children: Vec::new(),
        }
    }

    pub fn leaf(label: impl Into<String>, nanos: u64) -> Self {
        SpanNode {
            label: label.into(),
            nanos,
            children: Vec::new(),
        }
    }

    pub fn seconds(&self) -> f64 {
        self.nanos as f64 * 1e-9
    }

    pub fn push(&mut self, child: SpanNode) {
        self.children.push(child);
    }

    /// Sum of direct children's durations.
    pub fn child_nanos(&self) -> u64 {
        self.children.iter().map(|c| c.nanos).sum()
    }

    /// Depth-first search by label.
    pub fn find(&self, label: &str) -> Option<&SpanNode> {
        if self.label == label {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(label))
    }

    /// True if, at every node, children's total does not exceed the parent
    /// by more than `slack_nanos` (clock granularity slack).
    pub fn is_nested(&self, slack_nanos: u64) -> bool {
        self.child_nanos() <= self.nanos.saturating_add(slack_nanos)
            && self.children.iter().all(|c| c.is_nested(slack_nanos))
    }

    /// Indented text rendering (two spaces per level).
    pub fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{:indent$}{label:<24} {secs:>10.4}s",
            "",
            indent = depth * 2,
            label = self.label,
            secs = self.seconds()
        );
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpanNode {
        let mut root = SpanNode::leaf("cpd", 1_000);
        let mut iter = SpanNode::leaf("iteration 0", 900);
        iter.push(SpanNode::leaf("mode 0", 400));
        iter.push(SpanNode::leaf("fit", 100));
        root.push(iter);
        root
    }

    #[test]
    fn nesting_and_find() {
        let root = sample();
        assert!(root.is_nested(0));
        assert_eq!(root.child_nanos(), 900);
        assert_eq!(root.find("fit").unwrap().nanos, 100);
        assert!(root.find("nope").is_none());
    }

    #[test]
    fn violated_nesting_detected() {
        let mut root = SpanNode::leaf("cpd", 100);
        root.push(SpanNode::leaf("big child", 500));
        assert!(!root.is_nested(10));
        assert!(root.is_nested(400));
    }

    #[test]
    fn renders_indented() {
        let mut out = String::new();
        sample().render_into(&mut out, 0);
        assert!(out.contains("cpd"));
        assert!(out.contains("  iteration 0"));
        assert!(out.contains("    mode 0"));
    }
}
