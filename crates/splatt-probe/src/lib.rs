//! Observability layer for the splatt workspace.
//!
//! The paper's whole argument (Table III, Figures 2–8) is built on
//! *measurements*: per-routine timers, lock-pool behaviour on YELP vs
//! NELL-2, and the 18x slice-copy overhead of the row-copy access path.
//! This crate supplies the counters behind those measurements:
//!
//! - [`LockCounters`] — acquisitions / contended acquisitions / failed
//!   CAS-spin iterations / accumulated wait time for a lock pool.
//!   Attached to `splatt_locks::LockPool` behind an `Option<Arc<_>>`, so
//!   the un-instrumented path pays a single branch.
//! - [`TaskTimes`] — per-thread busy-time/invocation/item histograms,
//!   recorded by `TaskTeam::coforall_timed`, making MTTKRP load imbalance
//!   (the privatize-vs-lock tradeoff) directly visible.
//! - [`alloc`] — process-global allocation counters for the `RowCopy`
//!   access variant (slice descriptors + row copies, the Chapel slice
//!   story) and privatization-reduction byte counts. Gated by one relaxed
//!   atomic load when disabled.
//! - [`SpanNode`] / [`ProfileReport`] — a hierarchical span tree
//!   (CPD total → iteration → mode → kernel) plus the flat per-routine
//!   table, rendered in the paper's Table III layout or serialized as
//!   schema-stable JSON ([`ProfileReport::to_json`]).
//! - [`json`] — a minimal JSON parser used by tests to validate profile
//!   output without external dependencies.

pub mod alloc;
pub mod json;
mod locks;
mod report;
mod span;
mod tasks;

pub use locks::{LockCounters, LockStats};
pub use report::{
    DispatchRow, FaultRow, GuardRow, NetFrontRow, ProfileReport, QueryKindRow, RefreshRow,
    RoutineRow, ServeRow, ShardRow, StoreRow, PROFILE_SCHEMA,
};
pub use span::SpanNode;
pub use tasks::{TaskTimes, ThreadLoad, ThreadLoadRow};

use std::sync::Arc;

/// Bundle of probes for one instrumented CP-ALS / MTTKRP run.
#[derive(Debug)]
pub struct MttkrpProbe {
    /// Per-thread busy time across kernel invocations.
    pub tasks: TaskTimes,
    /// Lock-pool contention counters (shared with the pool).
    pub locks: Arc<LockCounters>,
}

impl MttkrpProbe {
    pub fn new(ntasks: usize) -> Self {
        MttkrpProbe {
            tasks: TaskTimes::new(ntasks),
            locks: Arc::new(LockCounters::new()),
        }
    }
}
