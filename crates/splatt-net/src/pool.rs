//! A bounded worker pool: N threads draining a shared job queue.
//!
//! The pool itself keeps an unbounded `VecDeque` — boundedness comes
//! from the layer above: the reactor only submits jobs for requests
//! that hold a decode-gate admission permit, so the queue can never
//! exceed the gate's depth. That keeps the pool free of its own
//! backpressure policy and makes shedding a single, typed decision at
//! admission time rather than a blocking `send` deep in the I/O loop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use splatt_rt::sync::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send>;

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// See the module docs.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.threads.len())
            .field("queued", &self.queued())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn `workers` threads named `{name}-{i}`.
    pub fn new(workers: usize, name: &str) -> WorkerPool {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let threads = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { inner, threads }
    }

    /// Enqueue a job. Panics if called after [`WorkerPool::shutdown`].
    pub fn submit(&self, job: Job) {
        assert!(
            !self.inner.shutdown.load(Ordering::Acquire),
            "submit after pool shutdown"
        );
        let mut queue = self.inner.queue.lock();
        queue.push_back(job);
        drop(queue);
        self.inner.available.notify_one();
    }

    /// Jobs waiting for a worker (excludes jobs mid-execution).
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Finish every queued job, then stop the workers and join them.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // A dropped (not shut down) pool still stops its threads so the
        // process can exit; queued jobs are drained first, as in
        // `shutdown`.
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                inner.available.wait(&mut queue);
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_submitted_job_across_workers() {
        let pool = WorkerPool::new(4, "test-worker");
        assert_eq!(pool.workers(), 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn shutdown_drains_queued_jobs_before_stopping() {
        // One worker, jobs that sleep: shutdown must still run them all.
        let pool = WorkerPool::new(1, "test-drain");
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0, "test-clamp");
        assert_eq!(pool.workers(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(Box::new(move || {
            d.fetch_add(1, Ordering::Relaxed);
        }));
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
