//! The reactor: one thread multiplexing every connection through a
//! readiness poller, with a bounded worker pool doing the blocking
//! application work.
//!
//! ## Threading model
//!
//! One reactor thread owns the listener, every connection, the timer
//! wheel, and all socket I/O. `workers` pool threads run
//! [`FrameService::handle`] (which may block on the serving engine) and
//! push completions into a shared queue, waking the reactor through a
//! loopback socket pair. Total front-end threads are `1 + workers`,
//! independent of connection count.
//!
//! ## Admission layers
//!
//! - **accept**: an [`AdmissionGate`] caps registered connections. Shed
//!   connections get one typed frame (supplied by the embedder via
//!   [`ReactorConfig::accept_shed_frame`]) and are closed.
//! - **decode**: a second gate caps decoded-but-unanswered requests
//!   across all connections, and a per-connection pipeline cap bounds
//!   any one client. Shed requests get a typed reply from
//!   [`FrameService::shed_reply`] that participates in response
//!   ordering as an instant completion.
//! - **batch**: the application's own gate inside
//!   [`FrameService::handle`] (the serving engine's admission gate).
//!
//! ## Shutdown
//!
//! Tripping the stop token starts a drain: accepting and reading stop,
//! in-flight requests finish and their responses flush, then the
//! reactor exits — or the drain deadline passes and remaining
//! connections are dropped. A [`Disposition::ShutdownAfterWrite`] reply
//! triggers [`FrameService::on_shutdown`] (where the embedder cancels
//! its engine) and, via the token hierarchy, the same drain.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use splatt_guard::{AdmissionGate, CancelToken};
use splatt_rt::sync::Mutex;

use crate::conn::{Conn, ReadOutcome};
use crate::counters::{NetCounters, NetSnapshot};
use crate::poller::{Event, Interest, Poller};
use crate::pool::WorkerPool;
use crate::service::{Disposition, FrameService, Reply, RequestCtx, ShedLayer};
use crate::timer::TimerWheel;

/// Poll timeout: bounds stop-token latency and timer slack.
const POLL_TIMEOUT: Duration = Duration::from_millis(50);
/// Timer wheel geometry: 256 slots of 100 ms (one lap ≈ 25.6 s).
const WHEEL_SLOTS: usize = 256;
const WHEEL_GRANULARITY: Duration = Duration::from_millis(100);
/// Backstop timers fire this long after the request's own deadline —
/// the application enforces the deadline itself; the backstop only
/// answers for a stuck worker.
const BACKSTOP_GRACE: Duration = Duration::from_millis(250);
/// Shared read scratch size.
const SCRATCH: usize = 64 * 1024;

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;

/// Front-end tuning; see the module docs for what each layer does.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Worker-pool threads running [`FrameService::handle`].
    pub workers: usize,
    /// Accept-layer cap: connections registered at once.
    pub max_conns: usize,
    /// Decode-layer cap: decoded-but-unanswered requests at once.
    pub queue_depth: usize,
    /// Per-connection cap on unanswered pipelined requests.
    pub max_pipeline: usize,
    /// Close connections with no traffic for this long.
    pub idle_timeout: Duration,
    /// How long a drain may run before remaining connections drop.
    pub drain_deadline: Duration,
    /// Largest acceptable frame payload.
    pub max_frame: usize,
    /// Force the sweep poller even where `poll(2)` exists (tests).
    pub force_sweep: bool,
    /// Pre-encoded payload written (length-prefixed) to a connection
    /// shed at the accept layer; empty means close without a reply.
    pub accept_shed_frame: Vec<u8>,
    /// Thread-name prefix for the reactor and worker threads.
    pub thread_name: String,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ReactorConfig {
            workers: cores.max(2),
            max_conns: 4096,
            queue_depth: 256,
            max_pipeline: 32,
            idle_timeout: Duration::from_secs(60),
            drain_deadline: Duration::from_secs(5),
            max_frame: 64 << 20,
            force_sweep: false,
            accept_shed_frame: Vec::new(),
            thread_name: "splatt-net".to_string(),
        }
    }
}

/// Timer identity: enough to recognize stale firings lazily.
#[derive(Debug, Clone, Copy)]
enum TimerKey {
    Idle {
        slot: u32,
        generation: u32,
    },
    Backstop {
        slot: u32,
        generation: u32,
        seq: u64,
    },
}

struct Completion {
    token: u64,
    seq: u64,
    reply: Reply,
}

/// State shared between the reactor thread, worker jobs, and the handle.
struct Shared {
    counters: Arc<NetCounters>,
    completions: Mutex<Vec<Completion>>,
    wake_tx: TcpStream,
    stop: CancelToken,
    accept_gate: Arc<AdmissionGate>,
    decode_gate: Arc<AdmissionGate>,
}

impl Shared {
    fn wake(&self) {
        // Nonblocking one-byte nudge; a full buffer means the reactor
        // is already awash in wakeups.
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn push_completion(&self, c: Completion) {
        self.completions.lock().push(c);
        self.wake();
    }
}

/// Handle to a running reactor; dropping it does NOT stop the reactor —
/// call [`NetHandle::join`] (or at least [`NetHandle::stop`]).
pub struct NetHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for NetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl NetHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current front-end counters.
    pub fn counters(&self) -> NetSnapshot {
        self.shared.counters.snapshot()
    }

    /// The live counters themselves, for embedding in probe reports.
    pub fn counters_handle(&self) -> Arc<NetCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// The accept-layer gate (connection cap).
    pub fn accept_gate(&self) -> &Arc<AdmissionGate> {
        &self.shared.accept_gate
    }

    /// The decode-layer gate (request queue depth).
    pub fn decode_gate(&self) -> &Arc<AdmissionGate> {
        &self.shared.decode_gate
    }

    /// Begin a drain: trip the stop token and wake the reactor.
    pub fn stop(&self) {
        self.shared.stop.cancel();
        self.shared.wake();
    }

    /// Stop and wait for the reactor thread (and its workers) to exit.
    pub fn join(mut self) {
        self.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Wait for the reactor to exit *without* tripping the stop token —
    /// for embedders whose handle contract is "block until someone else
    /// requests shutdown" (a signal handler, a wire op, another thread).
    pub fn wait(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Run a reactor over `listener`, serving `service`, until `stop`
/// trips. Returns once the reactor thread is spawned.
///
/// # Errors
/// Propagates listener/wake-channel setup failures.
pub fn serve_frames(
    listener: TcpListener,
    service: Arc<dyn FrameService>,
    config: ReactorConfig,
    stop: CancelToken,
) -> io::Result<NetHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let (wake_tx, wake_rx) = wake_pair()?;
    let counters = Arc::new(NetCounters::default());
    let shared = Arc::new(Shared {
        counters: Arc::clone(&counters),
        completions: Mutex::new(Vec::new()),
        wake_tx,
        stop,
        accept_gate: Arc::new(AdmissionGate::new(config.max_conns)),
        decode_gate: Arc::new(AdmissionGate::new(config.queue_depth)),
    });
    let pool = WorkerPool::new(config.workers, &format!("{}-worker", config.thread_name));
    counters
        .worker_threads
        .store(pool.workers() as u64, std::sync::atomic::Ordering::Relaxed);
    let thread_name = format!("{}-reactor", config.thread_name);
    let force_sweep = config.force_sweep;
    let reactor_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            let mut reactor = Reactor {
                listener,
                service,
                config,
                shared: reactor_shared,
                pool: Some(pool),
                wake_rx,
                conns: Vec::new(),
                free: Vec::new(),
                next_generation: 0,
                wheel: TimerWheel::new(WHEEL_SLOTS, WHEEL_GRANULARITY),
                poller: Poller::new(force_sweep),
                scratch: vec![0u8; SCRATCH],
                interests: Vec::new(),
                events: Vec::new(),
                fired: Vec::new(),
                draining: false,
                drain_deadline: None,
                shutdown_hook_called: false,
            };
            reactor.run();
        })?;
    Ok(NetHandle {
        addr,
        shared,
        thread: Some(thread),
    })
}

fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    // std has no pipe; a loopback socket pair serves as one.
    let l = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(l.local_addr()?)?;
    let (rx, _) = l.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true).ok();
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

fn listener_fd(listener: &TcpListener) -> i32 {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        listener.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = listener;
        0
    }
}

fn stream_fd(stream: &TcpStream) -> i32 {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        0
    }
}

struct Reactor {
    listener: TcpListener,
    service: Arc<dyn FrameService>,
    config: ReactorConfig,
    shared: Arc<Shared>,
    /// `Option` so teardown can shut the pool down by value.
    pool: Option<WorkerPool>,
    wake_rx: TcpStream,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u32,
    wheel: TimerWheel<TimerKey>,
    poller: Poller,
    scratch: Vec<u8>,
    interests: Vec<Interest>,
    events: Vec<Event>,
    fired: Vec<TimerKey>,
    draining: bool,
    drain_deadline: Option<Instant>,
    shutdown_hook_called: bool,
}

impl Reactor {
    fn token(slot: usize, generation: u32) -> u64 {
        ((slot as u64) << 32) | u64::from(generation)
    }

    fn run(&mut self) {
        loop {
            self.process_completions();
            let now = Instant::now();
            if !self.draining && self.shared.stop.is_cancelled() {
                self.draining = true;
                self.drain_deadline = Some(now + self.config.drain_deadline);
            }
            if self.draining {
                let expired = self.drain_deadline.is_some_and(|d| now >= d);
                let all_quiet = self.conns.iter().flatten().all(|c| c.is_drained());
                if expired || all_quiet {
                    break;
                }
            }
            self.build_interests();
            let counters = &self.shared.counters;
            counters
                .polls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut events = std::mem::take(&mut self.events);
            match self.poller.wait(&self.interests, POLL_TIMEOUT, &mut events) {
                Ok(n) if n > 0 => {
                    counters
                        .readiness_wakeups
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                Ok(_) => {}
                Err(_) => {
                    // A failed poll (fd limit churn, EBADF race) is
                    // retried; persistent failure would spin here, but
                    // every path that closes fds goes through us.
                    events.clear();
                }
            }
            for &ev in &events {
                match ev.token {
                    WAKE_TOKEN => self.drain_wake(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_event(token, ev),
                }
            }
            self.events = events;
            self.fire_timers();
        }
        self.teardown();
    }

    fn build_interests(&mut self) {
        self.interests.clear();
        if !self.draining {
            self.interests.push(Interest {
                token: LISTENER_TOKEN,
                fd: listener_fd(&self.listener),
                readable: true,
                writable: false,
            });
        }
        self.interests.push(Interest {
            token: WAKE_TOKEN,
            fd: stream_fd(&self.wake_rx),
            readable: true,
            writable: false,
        });
        for (slot, conn) in self.conns.iter().enumerate() {
            let Some(conn) = conn else { continue };
            let readable = !self.draining && !conn.closing;
            let writable = conn.wants_write();
            if readable || writable {
                self.interests.push(Interest {
                    token: Self::token(slot, conn.generation),
                    fd: conn.fd,
                    readable,
                    writable,
                });
            }
        }
    }

    fn drain_wake(&mut self) {
        loop {
            match (&self.wake_rx).read(&mut self.scratch) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.shared
                        .counters
                        .accepted
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match self.shared.accept_gate.try_admit_owned() {
                        Ok(permit) => self.register(stream, permit),
                        Err(_) => {
                            self.shared
                                .counters
                                .sheds_accept
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            self.shed_accepted(stream);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Tell a shed connection why, without letting it block the
    /// reactor: one short-timeout blocking write of the typed frame.
    fn shed_accepted(&self, stream: TcpStream) {
        let frame = &self.config.accept_shed_frame;
        if frame.is_empty() {
            return;
        }
        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
        let mut msg = Vec::with_capacity(4 + frame.len());
        msg.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        msg.extend_from_slice(frame);
        let _ = (&stream).write_all(&msg);
    }

    fn register(&mut self, stream: TcpStream, permit: splatt_guard::OwnedAdmissionPermit) {
        stream.set_nodelay(true).ok();
        let now = Instant::now();
        self.next_generation = self.next_generation.wrapping_add(1);
        let generation = self.next_generation;
        let conn = match Conn::new(stream, generation, permit, now) {
            Ok(c) => c,
            Err(_) => return,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.conns[s] = Some(conn);
                s
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.shared.counters.conn_opened();
        self.wheel.schedule(
            now + self.config.idle_timeout,
            TimerKey::Idle {
                slot: slot as u32,
                generation,
            },
        );
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            conn.mark_dead();
            self.shared.counters.conn_closed();
            self.free.push(slot);
        }
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        let slot = (token >> 32) as usize;
        let generation = token as u32;
        let matches = self
            .conns
            .get(slot)
            .is_some_and(|c| c.as_ref().is_some_and(|c| c.generation == generation));
        if !matches {
            return;
        }
        if (ev.readable || ev.error) && !self.read_conn(slot) {
            return;
        }
        if ev.writable {
            self.flush_conn(slot);
        }
    }

    /// Pump bytes and frames from one connection. Returns false if the
    /// connection was closed.
    fn read_conn(&mut self, slot: usize) -> bool {
        let now = Instant::now();
        let outcome = {
            let Some(conn) = self.conns[slot].as_mut() else {
                return false;
            };
            match conn.read_ready(&mut self.scratch, now) {
                Ok(o) => o,
                Err(_) => {
                    self.close_conn(slot);
                    return false;
                }
            }
        };
        loop {
            let frame = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    return false;
                };
                match conn.next_frame(self.config.max_frame) {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(_) => {
                        // Frame-layer protocol violation: drop the
                        // connection; there is no frame to answer in.
                        self.close_conn(slot);
                        return false;
                    }
                }
            };
            self.process_frame(slot, frame, now);
            if self.conns[slot].is_none() {
                return false;
            }
        }
        if outcome == ReadOutcome::Eof {
            self.close_conn(slot);
            return false;
        }
        true
    }

    fn process_frame(&mut self, slot: usize, payload: Vec<u8>, now: Instant) {
        let counters = Arc::clone(&self.shared.counters);
        counters
            .frames_read
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let generation = conn.generation;
        // Layer 2a: per-connection pipeline cap.
        if conn.pipeline_depth() >= self.config.max_pipeline {
            counters
                .sheds_decode
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let reply = Reply::ok(self.service.shed_reply(ShedLayer::Pipeline {
                max_pipeline: self.config.max_pipeline,
            }));
            let seq = conn.begin_instant();
            let appended = conn.enqueue_reply(seq, reply);
            counters
                .frames_written
                .fetch_add(appended as u64, std::sync::atomic::Ordering::Relaxed);
            self.flush_conn(slot);
            return;
        }
        // Layer 2b: global decode-queue depth.
        let permit = match self.shared.decode_gate.try_admit_owned() {
            Ok(p) => p,
            Err(over) => {
                counters
                    .sheds_decode
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let reply = Reply::ok(self.service.shed_reply(ShedLayer::QueueDepth {
                    depth: over.depth,
                    max_depth: over.max_depth,
                }));
                let seq = conn.begin_instant();
                let appended = conn.enqueue_reply(seq, reply);
                counters
                    .frames_written
                    .fetch_add(appended as u64, std::sync::atomic::Ordering::Relaxed);
                self.flush_conn(slot);
                return;
            }
        };
        let seq = conn.begin_request();
        let deadline = self.service.deadline_of(&payload).map(|d| now + d);
        if let Some(d) = deadline {
            self.wheel.schedule(
                d + BACKSTOP_GRACE,
                TimerKey::Backstop {
                    slot: slot as u32,
                    generation,
                    seq,
                },
            );
        }
        let ctx = RequestCtx::new(Arc::clone(&conn.alive), deadline);
        let token = Self::token(slot, generation);
        let service = Arc::clone(&self.service);
        let shared = Arc::clone(&self.shared);
        let pool = self.pool.as_ref().expect("pool alive while running");
        pool.submit(Box::new(move || {
            // Hold the decode permit for the job's whole run: depth
            // covers queued plus executing requests.
            let _permit = permit;
            if ctx.is_aborted() {
                // The connection died before we started; nobody will
                // read the answer, so don't compute it.
                return;
            }
            let reply = service.handle(&payload, &ctx);
            shared.push_completion(Completion { token, seq, reply });
        }));
    }

    fn process_completions(&mut self) {
        let batch = {
            let mut queue = self.shared.completions.lock();
            if queue.is_empty() {
                return;
            }
            std::mem::take(&mut *queue)
        };
        for Completion { token, seq, reply } in batch {
            let slot = (token >> 32) as usize;
            let generation = token as u32;
            let Some(Some(conn)) = self.conns.get_mut(slot) else {
                continue;
            };
            if conn.generation != generation || !conn.finish_request(seq) {
                // Stale: the connection died and was reincarnated, or
                // the deadline backstop already answered this sequence.
                continue;
            }
            if reply.disposition == Disposition::ShutdownAfterWrite && !self.shutdown_hook_called {
                self.shutdown_hook_called = true;
                self.service.on_shutdown();
            }
            let appended = conn.enqueue_reply(seq, reply);
            self.shared
                .counters
                .frames_written
                .fetch_add(appended as u64, std::sync::atomic::Ordering::Relaxed);
            if appended > 0 {
                self.flush_conn(slot);
            }
        }
    }

    fn flush_conn(&mut self, slot: usize) {
        let now = Instant::now();
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        match conn.flush(now) {
            Ok((syscalls, _flushed, coalesced)) => {
                let counters = &self.shared.counters;
                counters
                    .writes
                    .fetch_add(syscalls, std::sync::atomic::Ordering::Relaxed);
                if coalesced {
                    counters
                        .coalesced_writes
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                if conn.closing && !conn.wants_write() {
                    self.close_conn(slot);
                }
            }
            Err(_) => self.close_conn(slot),
        }
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.expired(now, &mut fired);
        for key in &fired {
            match *key {
                TimerKey::Idle { slot, generation } => {
                    self.idle_fired(slot as usize, generation, now)
                }
                TimerKey::Backstop {
                    slot,
                    generation,
                    seq,
                } => self.backstop_fired(slot as usize, generation, seq),
            }
        }
        self.fired = fired;
    }

    fn idle_fired(&mut self, slot: usize, generation: u32, now: Instant) {
        let Some(Some(conn)) = self.conns.get(slot) else {
            return;
        };
        if conn.generation != generation {
            return;
        }
        // Busy connections are not idle, whatever their byte traffic.
        let busy = conn.pipeline_depth() > 0 || conn.wants_write();
        let deadline = conn.last_activity + self.config.idle_timeout;
        if !busy && now >= deadline {
            self.shared
                .counters
                .idle_closed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.close_conn(slot);
        } else {
            // Activity moved the deadline (or work is in flight):
            // re-arm lazily instead of tracking cancellations.
            let due = if busy {
                now + self.config.idle_timeout
            } else {
                deadline
            };
            self.wheel.schedule(
                due,
                TimerKey::Idle {
                    slot: slot as u32,
                    generation,
                },
            );
        }
    }

    fn backstop_fired(&mut self, slot: usize, generation: u32, seq: u64) {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return;
        };
        if conn.generation != generation || !conn.finish_request(seq) {
            return;
        }
        // The worker overran the deadline and its completion will now
        // be stale; answer for it so the client is not left hanging.
        self.shared
            .counters
            .deadline_backstops
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let reply = Reply::ok(self.service.deadline_reply());
        let appended = conn.enqueue_reply(seq, reply);
        self.shared
            .counters
            .frames_written
            .fetch_add(appended as u64, std::sync::atomic::Ordering::Relaxed);
        if appended > 0 {
            self.flush_conn(slot);
        }
    }

    fn teardown(&mut self) {
        for slot in 0..self.conns.len() {
            if let Some(conn) = self.conns[slot].take() {
                conn.mark_dead();
                self.shared.counters.conn_closed();
            }
        }
        // Workers drain their queue (jobs see dead alive-flags and
        // return immediately), then stop.
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        self.process_completions();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Echoes payloads back; payloads starting with `b"sleep"` stall
    /// the worker long enough to exercise pipelining and backstops.
    struct EchoService {
        handled: AtomicU64,
        shutdowns: AtomicU64,
    }

    impl EchoService {
        fn new() -> EchoService {
            EchoService {
                handled: AtomicU64::new(0),
                shutdowns: AtomicU64::new(0),
            }
        }
    }

    impl FrameService for EchoService {
        fn handle(&self, payload: &[u8], _ctx: &RequestCtx) -> Reply {
            self.handled.fetch_add(1, Ordering::Relaxed);
            if payload.starts_with(b"sleep") {
                std::thread::sleep(Duration::from_millis(50));
            }
            if payload == b"quit" {
                return Reply {
                    payload: b"bye".to_vec(),
                    disposition: Disposition::ShutdownAfterWrite,
                };
            }
            Reply::ok(payload.to_vec())
        }

        fn shed_reply(&self, _layer: ShedLayer) -> Vec<u8> {
            b"SHED".to_vec()
        }

        fn deadline_reply(&self) -> Vec<u8> {
            b"LATE".to_vec()
        }

        fn on_shutdown(&self) {
            self.shutdowns.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn start(config: ReactorConfig) -> (NetHandle, Arc<EchoService>, CancelToken) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let service = Arc::new(EchoService::new());
        let stop = CancelToken::new();
        let handle = serve_frames(
            listener,
            Arc::<EchoService>::clone(&service) as Arc<dyn FrameService>,
            config,
            stop.child(),
        )
        .unwrap();
        (handle, service, stop)
    }

    fn send_frame(stream: &mut TcpStream, payload: &[u8]) {
        let mut msg = (payload.len() as u32).to_le_bytes().to_vec();
        msg.extend_from_slice(payload);
        stream.write_all(&msg).unwrap();
    }

    fn recv_frame(stream: &mut TcpStream) -> Vec<u8> {
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).unwrap();
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut payload).unwrap();
        payload
    }

    fn echo_roundtrips(force_sweep: bool) {
        let (handle, service, _stop) = start(ReactorConfig {
            workers: 2,
            force_sweep,
            thread_name: "echo-test".into(),
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for i in 0..20u32 {
            let msg = format!("ping-{i}");
            send_frame(&mut c, msg.as_bytes());
            assert_eq!(recv_frame(&mut c), msg.as_bytes());
        }
        assert_eq!(service.handled.load(Ordering::Relaxed), 20);
        let snap = handle.counters();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.frames_read, 20);
        assert_eq!(snap.frames_written, 20);
        assert!(snap.readiness_wakeups > 0);
        handle.join();
    }

    #[test]
    fn echoes_frames_with_the_poll_backend() {
        echo_roundtrips(false);
    }

    #[test]
    fn echoes_frames_with_the_sweep_backend() {
        echo_roundtrips(true);
    }

    #[test]
    fn pipelined_requests_come_back_in_order() {
        let (handle, _service, _stop) = start(ReactorConfig {
            workers: 4,
            thread_name: "pipeline-test".into(),
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // A slow head-of-line request followed by fast ones: workers
        // finish out of order, responses must not.
        send_frame(&mut c, b"sleep-head");
        for i in 0..8u32 {
            send_frame(&mut c, format!("fast-{i}").as_bytes());
        }
        assert_eq!(recv_frame(&mut c), b"sleep-head");
        for i in 0..8u32 {
            assert_eq!(recv_frame(&mut c), format!("fast-{i}").as_bytes());
        }
        let snap = handle.counters();
        assert!(
            snap.coalesced_writes > 0,
            "parked completions behind the sleeper must coalesce, got {snap:?}"
        );
        handle.join();
    }

    #[test]
    fn accept_cap_sheds_with_the_typed_frame() {
        let (handle, _service, _stop) = start(ReactorConfig {
            workers: 1,
            max_conns: 1,
            accept_shed_frame: b"FULL".to_vec(),
            thread_name: "acceptcap-test".into(),
            ..ReactorConfig::default()
        });
        let mut first = TcpStream::connect(handle.addr()).unwrap();
        first
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        send_frame(&mut first, b"hold");
        assert_eq!(recv_frame(&mut first), b"hold");
        let mut second = TcpStream::connect(handle.addr()).unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(recv_frame(&mut second), b"FULL");
        // The shed socket is closed after the frame.
        let mut buf = [0u8; 1];
        assert_eq!(second.read(&mut buf).unwrap(), 0);
        assert_eq!(handle.counters().sheds_accept, 1);
        drop(first);
        handle.join();
    }

    #[test]
    fn pipeline_cap_sheds_typed_replies_in_order() {
        let (handle, _service, _stop) = start(ReactorConfig {
            workers: 1,
            max_pipeline: 1,
            thread_name: "pipecap-test".into(),
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Both frames arrive while the first is still in the sleeper's
        // worker: the second must shed but stay ordered after the first.
        send_frame(&mut c, b"sleepy");
        send_frame(&mut c, b"extra");
        assert_eq!(recv_frame(&mut c), b"sleepy");
        assert_eq!(recv_frame(&mut c), b"SHED");
        assert_eq!(handle.counters().sheds_decode, 1);
        handle.join();
    }

    #[test]
    fn queue_depth_of_zero_sheds_every_request() {
        let (handle, service, _stop) = start(ReactorConfig {
            workers: 1,
            queue_depth: 0,
            thread_name: "qdepth-test".into(),
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        send_frame(&mut c, b"anything");
        assert_eq!(recv_frame(&mut c), b"SHED");
        assert_eq!(service.handled.load(Ordering::Relaxed), 0);
        assert_eq!(handle.counters().sheds_decode, 1);
        handle.join();
    }

    #[test]
    fn idle_connections_are_closed_by_the_timer() {
        let (handle, _service, _stop) = start(ReactorConfig {
            workers: 1,
            idle_timeout: Duration::from_millis(200),
            thread_name: "idle-test".into(),
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 1];
        // The reactor closes us; read returns 0 (EOF).
        assert_eq!(c.read(&mut buf).unwrap(), 0);
        assert_eq!(handle.counters().idle_closed, 1);
        handle.join();
    }

    #[test]
    fn stop_token_drains_and_joins() {
        let (handle, _service, stop) = start(ReactorConfig {
            workers: 2,
            thread_name: "drain-test".into(),
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        send_frame(&mut c, b"last-call");
        assert_eq!(recv_frame(&mut c), b"last-call");
        stop.cancel();
        handle.join();
        // The reactor is gone: the connection sees EOF.
        let mut buf = [0u8; 1];
        assert_eq!(c.read(&mut buf).unwrap_or(0), 0);
    }

    #[test]
    fn shutdown_disposition_invokes_the_hook_and_acks() {
        let (handle, service, _stop) = start(ReactorConfig {
            workers: 1,
            thread_name: "quit-test".into(),
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        send_frame(&mut c, b"quit");
        assert_eq!(recv_frame(&mut c), b"bye");
        // Wait for the hook on the reactor thread.
        let deadline = Instant::now() + Duration::from_secs(5);
        while service.shutdowns.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(service.shutdowns.load(Ordering::Relaxed), 1);
        handle.join();
    }

    #[test]
    fn disconnect_aborts_queued_work() {
        let (handle, service, _stop) = start(ReactorConfig {
            workers: 1,
            thread_name: "abort-test".into(),
            ..ReactorConfig::default()
        });
        {
            let mut c = TcpStream::connect(handle.addr()).unwrap();
            // Jam the single worker, then queue work and vanish.
            send_frame(&mut c, b"sleep-jam");
            for _ in 0..4 {
                send_frame(&mut c, b"doomed");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // Give the reactor time to notice the close and the worker time
        // to drain the queue.
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.counters().connections_open > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.join();
        // The sleeper ran; the doomed requests were skipped (alive flag
        // cleared before their jobs started).
        assert_eq!(service.handled.load(Ordering::Relaxed), 1);
    }
}
