//! A hashed timer wheel for connection idle timeouts and per-request
//! deadline backstops.
//!
//! The reactor schedules tens of thousands of coarse timers (one idle
//! timer per connection, one deadline backstop per in-flight request)
//! and fires them from its poll loop. A hashed wheel makes both
//! operations O(1) amortized: `schedule` hashes the due tick into one
//! of `slots` buckets; `expired` walks only the buckets whose tick has
//! come due since the last call, retaining entries that hashed into the
//! bucket but belong to a later lap.
//!
//! Cancellation is *lazy*: the wheel has no `cancel`. Callers attach
//! enough identity to the key (slab slot + generation + sequence) to
//! recognize stale firings and drop them — the reactor validates every
//! fired key against live connection state. Re-arming (idle timers
//! pushed forward by activity) is likewise done at fire time: the
//! callback checks the real deadline and reschedules if it moved.

use std::time::{Duration, Instant};

/// One scheduled timer: fires at `due`, delivering `key` to the caller.
#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    due: Instant,
    key: K,
}

/// The wheel; see the module docs. `K` is caller-defined timer identity.
#[derive(Debug)]
pub struct TimerWheel<K> {
    slots: Vec<Vec<Entry<K>>>,
    granularity: Duration,
    /// Origin instant; ticks are counted from here.
    epoch: Instant,
    /// First tick not yet processed by [`TimerWheel::expired`].
    next_tick: u64,
    len: usize,
}

impl<K: Copy> TimerWheel<K> {
    /// A wheel with `slots` buckets of `granularity` width each. One
    /// full lap spans `slots * granularity`; timers beyond a lap simply
    /// stay bucketed until their lap comes around.
    pub fn new(slots: usize, granularity: Duration) -> TimerWheel<K> {
        assert!(slots > 0, "timer wheel needs at least one slot");
        assert!(
            granularity > Duration::ZERO,
            "timer wheel granularity must be positive"
        );
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            epoch: Instant::now(),
            next_tick: 0,
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.epoch);
        (since.as_nanos() / self.granularity.as_nanos().max(1)) as u64
    }

    /// Schedule `key` to fire once `due` has passed. Timers already in
    /// the past fire on the next [`TimerWheel::expired`] call.
    pub fn schedule(&mut self, due: Instant, key: K) {
        // A due tick behind the sweep cursor would never be visited
        // again this lap; clamp it to the cursor so it fires promptly.
        let tick = self.tick_of(due).max(self.next_tick);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { due, key });
        self.len += 1;
    }

    /// Timers currently scheduled (including stale ones awaiting lazy
    /// cancellation).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no timers at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Advance the wheel to `now`, appending every fired key to `out`.
    /// Entries sharing a bucket but due on a later lap are retained.
    pub fn expired(&mut self, now: Instant, out: &mut Vec<K>) {
        let current = self.tick_of(now);
        if current < self.next_tick {
            return;
        }
        // Visiting more ticks than the wheel has slots would re-scan
        // buckets; one full lap covers them all.
        let first = if current - self.next_tick >= self.slots.len() as u64 {
            self.next_tick = current + 1;
            0
        } else {
            let f = self.next_tick;
            self.next_tick = current + 1;
            f
        };
        let span = if first == 0 && current + 1 >= self.slots.len() as u64 {
            // Full-lap scan.
            0..self.slots.len() as u64
        } else {
            first..current + 1
        };
        for tick in span {
            let slot = (tick % self.slots.len() as u64) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].due <= now {
                    out.push(bucket.swap_remove(i).key);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_due_timers_and_keeps_future_ones() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(8, Duration::from_millis(10));
        let now = Instant::now();
        wheel.schedule(now, 1);
        wheel.schedule(now + Duration::from_secs(60), 2);
        let mut fired = Vec::new();
        wheel.expired(now + Duration::from_millis(15), &mut fired);
        assert_eq!(fired, vec![1]);
        assert_eq!(wheel.len(), 1);
    }

    #[test]
    fn far_future_timers_survive_bucket_collisions() {
        // 4 slots of 10ms: a timer 40ms out lands in the same bucket as
        // one due now, but must not fire with it.
        let mut wheel: TimerWheel<u32> = TimerWheel::new(4, Duration::from_millis(10));
        let now = Instant::now();
        wheel.schedule(now, 1);
        wheel.schedule(now + Duration::from_millis(40), 2);
        let mut fired = Vec::new();
        wheel.expired(now + Duration::from_millis(5), &mut fired);
        assert_eq!(fired, vec![1]);
        fired.clear();
        wheel.expired(now + Duration::from_millis(50), &mut fired);
        assert_eq!(fired, vec![2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn a_long_gap_between_sweeps_fires_everything_once() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(4, Duration::from_millis(10));
        let now = Instant::now();
        for k in 0..20 {
            wheel.schedule(now + Duration::from_millis(u64::from(k)), k);
        }
        let mut fired = Vec::new();
        // A sweep far past every deadline (many laps later) must fire
        // each timer exactly once.
        wheel.expired(now + Duration::from_secs(5), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, (0..20).collect::<Vec<_>>());
        assert!(wheel.is_empty());
        fired.clear();
        wheel.expired(now + Duration::from_secs(6), &mut fired);
        assert!(fired.is_empty());
    }

    #[test]
    fn scheduling_in_the_past_fires_on_the_next_sweep() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(8, Duration::from_millis(10));
        let now = Instant::now();
        let mut fired = Vec::new();
        wheel.expired(now + Duration::from_millis(100), &mut fired);
        assert!(fired.is_empty());
        // The wheel's cursor is now past this due tick; it must still fire.
        wheel.schedule(now, 7);
        wheel.expired(now + Duration::from_millis(120), &mut fired);
        assert_eq!(fired, vec![7]);
    }
}
