//! The protocol-agnostic seam between the reactor and the application.
//!
//! `splatt-net` owns sockets, framing, ordering, and backpressure; it
//! knows nothing about what the bytes inside a frame mean. A
//! [`FrameService`] supplies that meaning: it turns one request payload
//! into one [`Reply`], peeks deadlines out of payloads so the reactor
//! can arm its backstop timers, and encodes the typed shed frames the
//! reactor writes when admission control refuses work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which admission layer refused a request; passed to
/// [`FrameService::shed_reply`] so the payload can say so.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedLayer {
    /// The decode-layer queue-depth gate was full.
    QueueDepth {
        /// Depth observed at rejection time.
        depth: usize,
        /// The gate's configured capacity.
        max_depth: usize,
    },
    /// The connection's pipeline already held the maximum number of
    /// unanswered requests.
    Pipeline {
        /// The per-connection pipeline cap.
        max_pipeline: usize,
    },
}

/// What the reactor should do with the connection after writing a
/// reply's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Keep serving the connection.
    Continue,
    /// Flush this reply, then close the connection.
    CloseAfterWrite,
    /// Flush this reply, then close the connection *and* begin reactor
    /// drain (used for protocol-level shutdown requests). The reactor
    /// calls [`FrameService::on_shutdown`] when it sees this.
    ShutdownAfterWrite,
}

/// One response frame plus its connection-lifecycle consequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The response payload; the reactor adds the length prefix.
    pub payload: Vec<u8>,
    pub disposition: Disposition,
}

impl Reply {
    /// A normal keep-alive reply.
    pub fn ok(payload: Vec<u8>) -> Reply {
        Reply {
            payload,
            disposition: Disposition::Continue,
        }
    }
}

/// Per-request context handed to [`FrameService::handle`] on a worker
/// thread.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    alive: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl RequestCtx {
    pub(crate) fn new(alive: Arc<AtomicBool>, deadline: Option<Instant>) -> RequestCtx {
        RequestCtx { alive, deadline }
    }

    /// Whether the requesting connection has disconnected (or the
    /// reactor is tearing down). Long-running handlers poll this and
    /// abort: nobody is waiting for the answer.
    pub fn is_aborted(&self) -> bool {
        !self.alive.load(Ordering::Relaxed)
    }

    /// The absolute deadline the reactor derived from the request, if
    /// any; the reactor also arms a backstop timer slightly past it.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// The application half of the reactor; see the module docs.
///
/// `handle` runs on a worker-pool thread and may block; everything else
/// runs on the reactor thread and must be fast and allocation-light.
pub trait FrameService: Send + Sync + 'static {
    /// Serve one request payload. Runs on a worker thread.
    fn handle(&self, payload: &[u8], ctx: &RequestCtx) -> Reply;

    /// Peek the request's deadline budget out of its payload without
    /// fully decoding it, so the reactor can arm a backstop timer.
    /// `None` means no per-request deadline.
    fn deadline_of(&self, payload: &[u8]) -> Option<Duration> {
        let _ = payload;
        None
    }

    /// Encode the typed "overloaded" response payload written when
    /// admission control sheds the request at `layer`. Runs on the
    /// reactor thread; keep it cheap.
    fn shed_reply(&self, layer: ShedLayer) -> Vec<u8>;

    /// Encode the typed "deadline expired" response payload the
    /// reactor's backstop timer writes when a worker overruns a
    /// request's deadline.
    fn deadline_reply(&self) -> Vec<u8>;

    /// Called once, on the reactor thread, when a reply carries
    /// [`Disposition::ShutdownAfterWrite`] — the hook where the
    /// application starts its own drain.
    fn on_shutdown(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_reports_disconnect_through_the_alive_flag() {
        let alive = Arc::new(AtomicBool::new(true));
        let ctx = RequestCtx::new(Arc::clone(&alive), None);
        assert!(!ctx.is_aborted());
        alive.store(false, Ordering::Relaxed);
        assert!(ctx.is_aborted());
        assert_eq!(ctx.deadline(), None);
    }
}
