//! Per-connection frame state machine: nonblocking reads into a frame
//! reassembly buffer, sequence-ordered completion tracking for
//! pipelined requests, and a coalescing write buffer.
//!
//! The connection owns its socket's mode exclusively: the stream is put
//! into nonblocking mode once at registration and never toggled again
//! (the legacy front end's per-request `set_nonblocking` flip raced its
//! own read timeout; the reactor has no such race by construction).
//!
//! Pipelining discipline: requests on one connection are answered in
//! the order they arrived, whatever order the worker pool finishes them
//! in. Each request gets a sequence number at decode; completions are
//! parked in an ordered map until they are next in line, then appended
//! to the write buffer — several at once when the pool bursts, which is
//! where write coalescing comes from.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use splatt_guard::OwnedAdmissionPermit;

use crate::service::{Disposition, Reply};

/// Wire framing: a `u32` little-endian payload length precedes each
/// payload (matching `splatt-serve`'s frame layer).
pub const FRAME_HEADER: usize = 4;

/// Result of pumping bytes from the socket.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Some bytes may have arrived; the socket would now block.
    Progress,
    /// Orderly EOF from the peer.
    Eof,
}

/// A frame-layer protocol violation (oversized frame).
#[derive(Debug)]
pub struct FrameTooLarge {
    pub len: usize,
    pub max: usize,
}

/// See the module docs.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    pub fd: i32,
    /// Distinguishes reincarnations of the same slab slot so stale
    /// completions and timers can be recognized and dropped.
    pub generation: u32,
    /// Raw bytes read but not yet framed.
    read_buf: Vec<u8>,
    /// Encoded, length-prefixed response bytes not yet written.
    out_buf: Vec<u8>,
    /// Prefix of `out_buf` already written to the socket.
    out_pos: usize,
    /// Response frames currently sitting in `out_buf`.
    pending_out_frames: usize,
    /// Next sequence number to assign at decode.
    next_seq: u64,
    /// Next sequence number the write side may emit.
    next_write_seq: u64,
    /// Completions that finished out of order, parked until their turn.
    done: BTreeMap<u64, Reply>,
    /// Sequence numbers dispatched to the pool and not yet answered
    /// (by completion or by the deadline backstop).
    in_flight: std::collections::HashSet<u64>,
    /// Shared with worker jobs; cleared on disconnect so handlers can
    /// abort work nobody will read.
    pub alive: Arc<AtomicBool>,
    /// Accept-layer admission permit, held for the connection lifetime.
    _permit: OwnedAdmissionPermit,
    pub last_activity: Instant,
    /// Close once the write buffer drains.
    pub closing: bool,
}

impl Conn {
    /// Register a freshly accepted stream: switch it to nonblocking
    /// (once, forever) and wrap it in connection state.
    ///
    /// # Errors
    /// Propagates `set_nonblocking` failure.
    pub fn new(
        stream: TcpStream,
        generation: u32,
        permit: OwnedAdmissionPermit,
        now: Instant,
    ) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let fd = raw_fd(&stream);
        Ok(Conn {
            stream,
            fd,
            generation,
            read_buf: Vec::new(),
            out_buf: Vec::new(),
            out_pos: 0,
            pending_out_frames: 0,
            next_seq: 0,
            next_write_seq: 0,
            done: BTreeMap::new(),
            in_flight: std::collections::HashSet::new(),
            alive: Arc::new(AtomicBool::new(true)),
            _permit: permit,
            last_activity: now,
            closing: false,
        })
    }

    /// Drain the socket into the reassembly buffer until it would
    /// block. `scratch` is the reactor's shared read buffer.
    ///
    /// # Errors
    /// Propagates socket errors other than `WouldBlock`/`Interrupted`.
    pub fn read_ready(&mut self, scratch: &mut [u8], now: Instant) -> io::Result<ReadOutcome> {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => {
                    self.read_buf.extend_from_slice(&scratch[..n]);
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(ReadOutcome::Progress)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Extract the next complete frame from the reassembly buffer.
    /// `Ok(None)` means more bytes are needed.
    ///
    /// # Errors
    /// [`FrameTooLarge`] when the peer announces a frame over `max_frame`.
    pub fn next_frame(&mut self, max_frame: usize) -> Result<Option<Vec<u8>>, FrameTooLarge> {
        if self.read_buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes([
            self.read_buf[0],
            self.read_buf[1],
            self.read_buf[2],
            self.read_buf[3],
        ]) as usize;
        if len > max_frame {
            return Err(FrameTooLarge {
                len,
                max: max_frame,
            });
        }
        if self.read_buf.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let mut payload = self.read_buf.split_off(FRAME_HEADER);
        let rest = payload.split_off(len);
        self.read_buf = rest;
        Ok(Some(payload))
    }

    /// Assign the next request sequence number and mark it in flight.
    pub fn begin_request(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight.insert(seq);
        seq
    }

    /// Assign a sequence number for a request answered instantly on the
    /// reactor thread (a shed): it participates in response ordering
    /// but never goes in flight.
    pub fn begin_instant(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Whether `seq` is still awaiting an answer. The deadline backstop
    /// and late worker completions race through this: whoever calls
    /// [`Conn::finish_request`] first wins.
    pub fn is_in_flight(&self, seq: u64) -> bool {
        self.in_flight.contains(&seq)
    }

    /// Claim `seq` as answered; returns false if something else (the
    /// backstop, a duplicate completion) already did.
    pub fn finish_request(&mut self, seq: u64) -> bool {
        self.in_flight.remove(&seq)
    }

    /// Requests currently unanswered on this connection (in flight in
    /// the pool plus completions parked for ordering).
    pub fn pipeline_depth(&self) -> usize {
        self.in_flight.len() + self.done.len()
    }

    /// Park a completed reply, then move every now-contiguous reply
    /// into the write buffer. Returns the number of frames buffered by
    /// this call (0 if `seq` is still blocked behind an earlier one).
    pub fn enqueue_reply(&mut self, seq: u64, reply: Reply) -> usize {
        self.done.insert(seq, reply);
        let mut appended = 0;
        while let Some(reply) = self.done.remove(&self.next_write_seq) {
            self.next_write_seq += 1;
            appended += 1;
            self.pending_out_frames += 1;
            let len = reply.payload.len() as u32;
            self.out_buf.extend_from_slice(&len.to_le_bytes());
            self.out_buf.extend_from_slice(&reply.payload);
            match reply.disposition {
                Disposition::Continue => {}
                Disposition::CloseAfterWrite | Disposition::ShutdownAfterWrite => {
                    self.closing = true;
                }
            }
        }
        appended
    }

    /// Whether any buffered response bytes await the socket.
    pub fn wants_write(&self) -> bool {
        self.out_pos < self.out_buf.len()
    }

    /// Push buffered response bytes until the socket would block or the
    /// buffer drains. Returns `(write_syscalls, frames_flushed,
    /// coalesced)` where `coalesced` is true when this flush carried
    /// two or more frames.
    ///
    /// # Errors
    /// Propagates socket errors other than `WouldBlock`/`Interrupted`.
    pub fn flush(&mut self, now: Instant) -> io::Result<(u64, u64, bool)> {
        let coalesced = self.pending_out_frames >= 2;
        let mut syscalls = 0u64;
        while self.out_pos < self.out_buf.len() {
            match self.stream.write(&self.out_buf[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    syscalls += 1;
                    self.out_pos += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_pos >= self.out_buf.len() {
            self.out_buf.clear();
            self.out_pos = 0;
            let flushed = self.pending_out_frames as u64;
            self.pending_out_frames = 0;
            Ok((syscalls, flushed, coalesced && flushed > 0))
        } else {
            // Partial flush: frames are counted when the buffer fully
            // drains so each is reported exactly once.
            Ok((syscalls, 0, false))
        }
    }

    /// Whether the connection has fully quiesced: nothing unanswered
    /// and nothing left to write.
    pub fn is_drained(&self) -> bool {
        self.in_flight.is_empty() && self.done.is_empty() && !self.wants_write()
    }

    /// Mark the connection dead so worker jobs holding its alive flag
    /// abort.
    pub fn mark_dead(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }
}

fn raw_fd(stream: &TcpStream) -> i32 {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_guard::AdmissionGate;
    use std::net::TcpListener;

    fn test_conn() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let gate = Arc::new(AdmissionGate::new(4));
        let permit = gate.try_admit_owned().unwrap();
        let conn = Conn::new(stream, 1, permit, Instant::now()).unwrap();
        (conn, peer)
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = (payload.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn reassembles_frames_split_across_reads() {
        let (mut conn, mut peer) = test_conn();
        let msg = frame(b"hello");
        peer.write_all(&msg[..3]).unwrap();
        peer.flush().unwrap();
        let mut scratch = [0u8; 4096];
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.read_ready(&mut scratch, Instant::now()).unwrap();
        assert!(conn.next_frame(1 << 20).unwrap().is_none());
        peer.write_all(&msg[3..]).unwrap();
        peer.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.read_ready(&mut scratch, Instant::now()).unwrap();
        assert_eq!(conn.next_frame(1 << 20).unwrap().unwrap(), b"hello");
    }

    #[test]
    fn rejects_frames_over_the_cap() {
        let (mut conn, mut peer) = test_conn();
        peer.write_all(&(100u32).to_le_bytes()).unwrap();
        peer.flush().unwrap();
        let mut scratch = [0u8; 4096];
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.read_ready(&mut scratch, Instant::now()).unwrap();
        let err = conn.next_frame(10).unwrap_err();
        assert_eq!(err.len, 100);
        assert_eq!(err.max, 10);
    }

    #[test]
    fn out_of_order_completions_are_written_in_request_order() {
        let (mut conn, mut peer) = test_conn();
        let a = conn.begin_request();
        let b = conn.begin_request();
        let c = conn.begin_request();
        // Finish them backwards.
        assert!(conn.finish_request(c));
        assert_eq!(conn.enqueue_reply(c, Reply::ok(b"C".to_vec())), 0);
        assert!(conn.finish_request(b));
        assert_eq!(conn.enqueue_reply(b, Reply::ok(b"B".to_vec())), 0);
        assert!(conn.finish_request(a));
        // The head of line unblocks everything: three frames coalesce.
        assert_eq!(conn.enqueue_reply(a, Reply::ok(b"A".to_vec())), 3);
        let (_sys, flushed, coalesced) = conn.flush(Instant::now()).unwrap();
        assert_eq!(flushed, 3);
        assert!(coalesced);
        let mut got = [0u8; 15];
        peer.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        peer.read_exact(&mut got).unwrap();
        let mut expect = Vec::new();
        for p in [b"A", b"B", b"C"] {
            expect.extend_from_slice(&frame(p));
        }
        assert_eq!(&got[..], &expect[..]);
    }

    #[test]
    fn finish_request_claims_a_sequence_exactly_once() {
        let (mut conn, _peer) = test_conn();
        let seq = conn.begin_request();
        assert!(conn.is_in_flight(seq));
        assert!(conn.finish_request(seq));
        assert!(!conn.finish_request(seq), "second claim must lose the race");
        assert_eq!(conn.pipeline_depth(), 0);
    }

    #[test]
    fn instant_replies_share_the_ordering_sequence() {
        let (mut conn, _peer) = test_conn();
        let a = conn.begin_request();
        let shed = conn.begin_instant();
        assert_eq!(conn.pipeline_depth(), 1);
        // The shed's reply parks behind the in-flight request.
        assert_eq!(conn.enqueue_reply(shed, Reply::ok(b"S".to_vec())), 0);
        conn.finish_request(a);
        assert_eq!(conn.enqueue_reply(a, Reply::ok(b"A".to_vec())), 2);
        assert!(!conn.closing);
        assert!(conn.wants_write());
    }

    #[test]
    fn close_dispositions_latch_the_closing_flag() {
        let (mut conn, _peer) = test_conn();
        let seq = conn.begin_instant();
        conn.enqueue_reply(
            seq,
            Reply {
                payload: b"bye".to_vec(),
                disposition: Disposition::CloseAfterWrite,
            },
        );
        assert!(conn.closing);
        assert!(!conn.is_drained());
        conn.flush(Instant::now()).unwrap();
        assert!(conn.is_drained());
    }
}
