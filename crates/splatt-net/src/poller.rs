//! Readiness polling behind one interface: a real `poll(2)` backend on
//! unix and a portable nonblocking-sweep fallback everywhere else.
//!
//! The reactor rebuilds its interest list every iteration from the
//! connection slab and hands it to [`Poller::wait`]. The poll backend
//! translates it to a `pollfd` array and blocks in the kernel until
//! readiness or timeout. The sweep backend cannot ask the OS anything,
//! so it *optimistically* reports every interest as ready after a short
//! pacing sleep — the reactor's nonblocking reads and writes then
//! discover real readiness themselves via `WouldBlock`. The sweep burns
//! more syscalls per idle connection and adds up to one pacing interval
//! of latency; it exists so the crate builds and behaves correctly on
//! targets without `poll(2)`, and so tests can exercise the reactor's
//! `WouldBlock` paths deterministically (`force_sweep`).

use std::io;
use std::time::Duration;

use crate::sys;

/// Which backend a [`Poller`] is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerKind {
    /// Kernel readiness via `poll(2)`.
    Poll,
    /// Optimistic nonblocking sweep with pacing sleeps.
    Sweep,
}

/// One descriptor the caller wants readiness for.
#[derive(Debug, Clone, Copy)]
pub struct Interest {
    /// Caller-defined identity, echoed back in [`Event::token`].
    pub token: u64,
    /// Raw descriptor (ignored by the sweep backend).
    pub fd: i32,
    pub readable: bool,
    pub writable: bool,
}

/// Readiness reported for one interest.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup condition; the caller should read to find out
    /// (a read on such a socket returns the real error or EOF).
    pub error: bool,
}

/// Sweep pacing: how long the fallback sleeps before reporting
/// everything ready. Bounds both busy-spin and added latency.
const SWEEP_PACE: Duration = Duration::from_millis(1);

/// See the module docs.
#[derive(Debug)]
pub struct Poller {
    kind: PollerKind,
    /// Scratch `pollfd` array, reused across waits (poll backend only).
    fds: Vec<sys::PollFd>,
}

impl Poller {
    /// A poller on the best backend this platform has; `force_sweep`
    /// selects the fallback even where `poll(2)` exists (for tests).
    pub fn new(force_sweep: bool) -> Poller {
        let kind = if sys::have_poll() && !force_sweep {
            PollerKind::Poll
        } else {
            PollerKind::Sweep
        };
        Poller {
            kind,
            fds: Vec::new(),
        }
    }

    /// The backend in use.
    pub fn kind(&self) -> PollerKind {
        self.kind
    }

    /// Wait up to `timeout` for readiness on `interests`, clearing and
    /// filling `events`. Returns the number of ready interests (0 on
    /// timeout).
    ///
    /// # Errors
    /// Propagates `poll(2)` failures (poll backend only).
    pub fn wait(
        &mut self,
        interests: &[Interest],
        timeout: Duration,
        events: &mut Vec<Event>,
    ) -> io::Result<usize> {
        events.clear();
        match self.kind {
            PollerKind::Poll => self.wait_poll(interests, timeout, events),
            PollerKind::Sweep => {
                std::thread::sleep(SWEEP_PACE.min(timeout));
                for it in interests {
                    if it.readable || it.writable {
                        events.push(Event {
                            token: it.token,
                            readable: it.readable,
                            writable: it.writable,
                            error: false,
                        });
                    }
                }
                Ok(events.len())
            }
        }
    }

    fn wait_poll(
        &mut self,
        interests: &[Interest],
        timeout: Duration,
        events: &mut Vec<Event>,
    ) -> io::Result<usize> {
        self.fds.clear();
        self.fds.reserve(interests.len());
        for it in interests {
            let mut flags = 0i16;
            if it.readable {
                flags |= sys::POLL_IN;
            }
            if it.writable {
                flags |= sys::POLL_OUT;
            }
            self.fds.push(sys::PollFd::new(it.fd, flags));
        }
        let ready = sys::poll_fds(&mut self.fds, timeout)?;
        if ready > 0 {
            for (it, fd) in interests.iter().zip(&self.fds) {
                if fd.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token: it.token,
                    readable: fd.revents & sys::POLL_IN != 0,
                    writable: fd.revents & sys::POLL_OUT != 0,
                    error: fd.revents & (sys::POLL_ERR | sys::POLL_HUP) != 0,
                });
            }
        }
        Ok(events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn fd_of(stream: &TcpStream) -> i32 {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            stream.as_raw_fd()
        }
        #[cfg(not(unix))]
        {
            let _ = stream;
            0
        }
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    #[cfg(unix)]
    fn poll_backend_reports_readability_only_when_data_arrives() {
        let (mut a, b) = pair();
        let mut poller = Poller::new(false);
        assert_eq!(poller.kind(), PollerKind::Poll);
        let interests = [Interest {
            token: 42,
            fd: fd_of(&b),
            readable: true,
            writable: false,
        }];
        let mut events = Vec::new();
        let n = poller
            .wait(&interests, Duration::from_millis(10), &mut events)
            .unwrap();
        assert_eq!(n, 0, "no data yet, poll must time out");
        a.write_all(b"x").unwrap();
        let n = poller
            .wait(&interests, Duration::from_millis(1000), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
    }

    #[test]
    fn sweep_backend_reports_everything_optimistically() {
        let (_a, b) = pair();
        let mut poller = Poller::new(true);
        assert_eq!(poller.kind(), PollerKind::Sweep);
        let interests = [Interest {
            token: 7,
            fd: fd_of(&b),
            readable: true,
            writable: true,
        }];
        let mut events = Vec::new();
        let n = poller
            .wait(&interests, Duration::from_millis(50), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable && events[0].writable);
    }

    #[test]
    #[cfg(unix)]
    fn poll_backend_reports_writability_on_a_fresh_socket() {
        let (a, _b) = pair();
        let mut poller = Poller::new(false);
        let interests = [Interest {
            token: 1,
            fd: fd_of(&a),
            readable: false,
            writable: true,
        }];
        let mut events = Vec::new();
        let n = poller
            .wait(&interests, Duration::from_millis(1000), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);
    }
}
