//! Thin, std-only OS shims: `poll(2)` readiness on unix and the
//! `RLIMIT_NOFILE` raise a many-connection server needs at startup.
//!
//! Nothing here pulls in an external crate — the declarations bind the
//! libc symbols every Rust binary already links. Non-unix targets get
//! no-op fallbacks; the reactor detects that and runs its portable
//! nonblocking-sweep poller instead.

#[cfg(unix)]
pub use unix::*;

#[cfg(unix)]
mod unix {
    use std::io;
    use std::os::fd::RawFd;

    /// Readable interest/readiness (`POLLIN`).
    pub const POLL_IN: i16 = 0x001;
    /// Writable interest/readiness (`POLLOUT`).
    pub const POLL_OUT: i16 = 0x004;
    /// Error condition (`POLLERR`) — always reported, never requested.
    pub const POLL_ERR: i16 = 0x008;
    /// Peer hangup (`POLLHUP`) — always reported, never requested.
    pub const POLL_HUP: i16 = 0x010;

    /// One `struct pollfd` as `poll(2)` expects it.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    impl PollFd {
        /// Interest in `events` on `fd`, with readiness cleared.
        pub fn new(fd: RawFd, events: i16) -> PollFd {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }
    }

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: i32 = 7;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    /// Block until readiness lands on any of `fds` or `timeout` passes.
    /// Returns the number of entries with non-zero `revents` (0 on
    /// timeout). `EINTR` is retried internally so callers never see it.
    ///
    /// # Errors
    /// Propagates `poll(2)` failures other than `EINTR`.
    pub fn poll_fds(fds: &mut [PollFd], timeout: std::time::Duration) -> io::Result<usize> {
        let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, millis) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Whether this platform has a real `poll(2)` backend.
    pub fn have_poll() -> bool {
        true
    }

    /// Current `(soft, hard)` `RLIMIT_NOFILE`.
    ///
    /// # Errors
    /// Propagates `getrlimit` failures.
    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((lim.cur, lim.max))
    }

    /// Raise the file-descriptor limit toward `want` and return the
    /// soft limit actually in effect afterwards. Tries the hard limit
    /// first (possible with `CAP_SYS_RESOURCE`/root), then settles for
    /// raising the soft limit to the existing hard cap. Never lowers.
    ///
    /// # Errors
    /// Propagates `getrlimit` failures; a refused raise is not an error
    /// — the achieved limit is simply returned.
    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let (soft, hard) = nofile_limit()?;
        if soft >= want {
            return Ok(soft);
        }
        if hard < want {
            let raised = RLimit {
                cur: want,
                max: want,
            };
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
                return Ok(want);
            }
        }
        let capped = RLimit {
            cur: want.min(hard).max(soft),
            max: hard,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &capped) } == 0 {
            return Ok(capped.cur);
        }
        Ok(soft)
    }
}

#[cfg(not(unix))]
pub use portable::*;

#[cfg(not(unix))]
mod portable {
    use std::io;

    pub const POLL_IN: i16 = 0x001;
    pub const POLL_OUT: i16 = 0x004;
    pub const POLL_ERR: i16 = 0x008;
    pub const POLL_HUP: i16 = 0x010;

    /// Mirror of the unix layout so the reactor compiles unchanged; the
    /// sweep poller never hands these to the OS.
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    impl PollFd {
        pub fn new(fd: i32, events: i16) -> PollFd {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }
    }

    /// No `poll(2)` here; the reactor uses the sweep poller instead.
    pub fn poll_fds(_fds: &mut [PollFd], _timeout: std::time::Duration) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "poll(2) unavailable; use the sweep poller",
        ))
    }

    pub fn have_poll() -> bool {
        false
    }

    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        Ok((u64::MAX, u64::MAX))
    }

    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        Ok(want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn poll_times_out_on_a_quiet_listener() {
        use std::os::fd::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLL_IN)];
        let n = poll_fds(&mut fds, std::time::Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    #[cfg(unix)]
    fn poll_reports_an_accept_ready_listener() {
        use std::os::fd::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLL_IN)];
        let n = poll_fds(&mut fds, std::time::Duration::from_millis(1000)).unwrap();
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLL_IN, 0);
    }

    #[test]
    fn nofile_limit_is_sane() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0);
        assert!(hard >= soft);
    }

    #[test]
    fn raising_the_limit_never_lowers_it() {
        let (before, _) = nofile_limit().unwrap();
        let after = raise_nofile_limit(before.saturating_sub(1).max(1)).unwrap();
        assert!(after >= before);
    }
}
