//! `splatt-net`: a std-only multiplexed I/O front end for the serving
//! stack.
//!
//! The thread-per-connection server this replaces spends one OS thread
//! per client — fine for dozens, fatal for the tens of thousands of
//! mostly-idle connections a production recommender front end holds
//! open. This crate multiplexes them all through **one reactor thread**
//! (readiness-polled nonblocking sockets via raw `poll(2)` on unix,
//! with a portable nonblocking-sweep fallback) and a **bounded worker
//! pool** that does the blocking application work, so front-end thread
//! count is `1 + workers` regardless of connection count.
//!
//! The pieces, bottom-up:
//!
//! - [`sys`]: `poll(2)` and `RLIMIT_NOFILE` shims bound directly from
//!   the libc every Rust binary already links — no external crates.
//! - [`Poller`]: one readiness interface over the poll(2) backend and
//!   the sweep fallback.
//! - [`Conn`] (internal): per-connection frame state machine —
//!   nonblocking reassembly reads, pipelined request sequencing,
//!   in-order completion release, and a coalescing write buffer.
//! - [`TimerWheel`]: hashed wheel with lazy cancellation for idle
//!   timeouts and per-request deadline backstops.
//! - [`WorkerPool`]: N threads draining a job queue whose boundedness
//!   comes from admission permits, not queue limits.
//! - [`serve_frames`]: the reactor itself, stitched to the application
//!   through the protocol-agnostic [`FrameService`] trait.
//!
//! Backpressure is layered and *typed*: an accept-layer connection cap,
//! a decode-layer queue-depth gate plus per-connection pipeline cap
//! (both `splatt_guard::AdmissionGate`s), and whatever gate the
//! application holds inside [`FrameService::handle`]. Refusals are
//! written to the wire as application-encoded frames, so an overloaded
//! server answers "overloaded" in microseconds instead of letting TCP
//! queues time requests out. Every layer's sheds — plus connection,
//! readiness-wakeup, and write-coalescing counts — are exported through
//! [`NetCounters`] for probe reports.

mod conn;
mod counters;
mod poller;
mod pool;
mod reactor;
mod service;
pub mod sys;
mod timer;

pub use conn::{Conn, FrameTooLarge, ReadOutcome, FRAME_HEADER};
pub use counters::{NetCounters, NetSnapshot};
pub use poller::{Event, Interest, Poller, PollerKind};
pub use pool::WorkerPool;
pub use reactor::{serve_frames, NetHandle, ReactorConfig};
pub use service::{Disposition, FrameService, Reply, RequestCtx, ShedLayer};
pub use timer::TimerWheel;
