//! Reactor observability: lock-free counters for the front end's
//! connection, readiness, write-coalescing, and shedding behavior.
//!
//! One [`NetCounters`] instance is shared between the reactor thread,
//! the worker pool, and whoever exports metrics; [`NetCounters::snapshot`]
//! reads a coherent-enough view (each field individually atomic) into a
//! plain [`NetSnapshot`] for probe reports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters maintained by the reactor. All increments are
/// relaxed — these are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Connections accepted from the OS (including ones later shed).
    pub accepted: AtomicU64,
    /// Connections currently registered with the reactor.
    pub connections_open: AtomicU64,
    /// High-water mark of `connections_open`.
    pub connections_peak: AtomicU64,
    /// `poll`/sweep iterations executed.
    pub polls: AtomicU64,
    /// Poll returns with at least one ready descriptor (readiness
    /// wakeups, as opposed to timeout ticks).
    pub readiness_wakeups: AtomicU64,
    /// Complete request frames parsed off sockets.
    pub frames_read: AtomicU64,
    /// Response frames appended to connection write buffers.
    pub frames_written: AtomicU64,
    /// Write syscalls issued.
    pub writes: AtomicU64,
    /// Flushes that pushed two or more response frames in one syscall
    /// batch — the payoff of buffering completions per connection.
    pub coalesced_writes: AtomicU64,
    /// Connections shed at the accept layer (connection cap).
    pub sheds_accept: AtomicU64,
    /// Requests shed at the decode layer (queue depth or per-connection
    /// pipeline cap).
    pub sheds_decode: AtomicU64,
    /// Connections closed by the idle timer.
    pub idle_closed: AtomicU64,
    /// Requests answered by the reactor's deadline backstop because the
    /// worker had not completed them in time.
    pub deadline_backstops: AtomicU64,
    /// Worker threads in the pool (set once at startup).
    pub worker_threads: AtomicU64,
}

/// A plain-data copy of [`NetCounters`], field for field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    pub accepted: u64,
    pub connections_open: u64,
    pub connections_peak: u64,
    pub polls: u64,
    pub readiness_wakeups: u64,
    pub frames_read: u64,
    pub frames_written: u64,
    pub writes: u64,
    pub coalesced_writes: u64,
    pub sheds_accept: u64,
    pub sheds_decode: u64,
    pub idle_closed: u64,
    pub deadline_backstops: u64,
    pub worker_threads: u64,
}

impl NetCounters {
    /// Bump `connections_open` and fold the new value into the peak.
    pub fn conn_opened(&self) {
        let now = self.connections_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.connections_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Decrement `connections_open`.
    pub fn conn_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Copy every counter into a [`NetSnapshot`].
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_peak: self.connections_peak.load(Ordering::Relaxed),
            polls: self.polls.load(Ordering::Relaxed),
            readiness_wakeups: self.readiness_wakeups.load(Ordering::Relaxed),
            frames_read: self.frames_read.load(Ordering::Relaxed),
            frames_written: self.frames_written.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            coalesced_writes: self.coalesced_writes.load(Ordering::Relaxed),
            sheds_accept: self.sheds_accept.load(Ordering::Relaxed),
            sheds_decode: self.sheds_decode.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            deadline_backstops: self.deadline_backstops.load(Ordering::Relaxed),
            worker_threads: self.worker_threads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_the_high_water_mark() {
        let c = NetCounters::default();
        c.conn_opened();
        c.conn_opened();
        c.conn_closed();
        c.conn_opened();
        let snap = c.snapshot();
        assert_eq!(snap.connections_open, 2);
        assert_eq!(snap.connections_peak, 2);
    }

    #[test]
    fn snapshot_copies_every_field() {
        let c = NetCounters::default();
        c.accepted.store(1, Ordering::Relaxed);
        c.polls.store(2, Ordering::Relaxed);
        c.readiness_wakeups.store(3, Ordering::Relaxed);
        c.frames_read.store(4, Ordering::Relaxed);
        c.frames_written.store(5, Ordering::Relaxed);
        c.writes.store(6, Ordering::Relaxed);
        c.coalesced_writes.store(7, Ordering::Relaxed);
        c.sheds_accept.store(8, Ordering::Relaxed);
        c.sheds_decode.store(9, Ordering::Relaxed);
        c.idle_closed.store(10, Ordering::Relaxed);
        c.deadline_backstops.store(11, Ordering::Relaxed);
        c.worker_threads.store(12, Ordering::Relaxed);
        let snap = c.snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.polls, 2);
        assert_eq!(snap.readiness_wakeups, 3);
        assert_eq!(snap.frames_read, 4);
        assert_eq!(snap.frames_written, 5);
        assert_eq!(snap.writes, 6);
        assert_eq!(snap.coalesced_writes, 7);
        assert_eq!(snap.sheds_accept, 8);
        assert_eq!(snap.sheds_decode, 9);
        assert_eq!(snap.idle_closed, 10);
        assert_eq!(snap.deadline_backstops, 11);
        assert_eq!(snap.worker_threads, 12);
    }
}
