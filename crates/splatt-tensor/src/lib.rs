//! Sparse tensor substrate for the splatt-rs workspace.
//!
//! Provides everything the decomposition core needs below the CSF level:
//!
//! * [`SparseTensor`] — coordinate-format storage in SPLATT's layout (one
//!   index array per mode, parallel to the value array).
//! * [`io`] — FROSTT-style `.tns` text I/O, the format the paper's data
//!   sets (YELP, NELL-2, …) ship in.
//! * [`synth`] — synthetic generators reproducing the *shape* of the
//!   paper's five data sets (Table I). The real data sets are multi-GB
//!   downloads we cannot assume; the generators preserve the mode
//!   dimensions / nonzero-count ratios that drive every behavioural
//!   difference the paper reports (most importantly the
//!   privatization-vs-locks decision that separates YELP from NELL-2).
//! * [`sort`] — the pre-processing sort (paper's "Sort" routine), with the
//!   four optimization variants of Figure 1 reproduced as selectable
//!   [`sort::SortVariant`]s.
//! * [`stats`] — Table I-style data set summaries.

mod coo;

pub mod alto;
pub mod io;
pub mod sort;
pub mod stats;
pub mod synth;

pub use alto::AltoTensor;
pub use coo::{MergeStats, SparseTensor};
pub use sort::SortVariant;
pub use stats::TensorStats;
pub use synth::DatasetShape;
