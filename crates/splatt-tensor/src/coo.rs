//! Coordinate-format sparse tensor in SPLATT's memory layout.
//!
//! SPLATT's `sptensor_t` stores an order-`N` tensor as `N` parallel index
//! arrays (`ind[0..N]`, each of length `nnz`) plus one value array — not an
//! array of coordinate tuples. The layout matters: the pre-processing sort
//! permutes each array independently (the "array of arrays" the paper's
//! Section IV-C discusses), and MTTKRP construction walks single-mode index
//! streams. Indices are `u32` (the paper's largest mode is 480 k).

/// Cost evidence from one [`SparseTensor::merge_entries`] call.
///
/// `compare_ops` counts full lexicographic coordinate comparisons (one
/// per compare, however many modes it inspects) spent sorting the delta
/// batch and running the two-way merge — the counter the refresh
/// loopback test uses to assert K incremental merges are asymptotically
/// cheaper than K full [`SparseTensor::coalesce`] re-sorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Nonzeros in the canonical base before the merge.
    pub base_nnz: usize,
    /// Delta entries in the batch.
    pub delta_nnz: usize,
    /// Nonzeros after the merge.
    pub out_nnz: usize,
    /// Coordinate comparisons spent on the delta sort plus the merge.
    pub compare_ops: u64,
    /// Whether the base was already canonical (strictly sorted). When
    /// `false` a one-time [`SparseTensor::coalesce`] ran first; its
    /// cost is not included in `compare_ops`.
    pub base_was_canonical: bool,
}

/// An order-`N` sparse tensor in coordinate (COO) format.
///
/// Duplicate coordinates are permitted (their values add, matching the
/// multilinear semantics); [`SparseTensor::coalesce`] merges them.
///
/// ```
/// use splatt_tensor::SparseTensor;
///
/// let mut t = SparseTensor::new(vec![4, 5, 6]);
/// t.push(&[0, 1, 2], 3.5);
/// t.push(&[3, 4, 5], -1.0);
/// assert_eq!(t.nnz(), 2);
/// assert_eq!(t.coord(1), vec![3, 4, 5]);
/// assert!((t.norm_squared() - 13.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensor {
    dims: Vec<usize>,
    inds: Vec<Vec<u32>>,
    vals: Vec<f64>,
}

impl SparseTensor {
    /// An empty tensor with the given mode dimensions.
    ///
    /// # Panics
    /// Panics if fewer than two modes, or any dimension is 0 or exceeds
    /// `u32::MAX`.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(dims.len() >= 2, "tensors need at least two modes");
        assert!(
            dims.iter().all(|&d| d > 0 && d <= u32::MAX as usize),
            "mode dimensions must be in 1..=u32::MAX"
        );
        let order = dims.len();
        SparseTensor {
            dims,
            inds: vec![Vec::new(); order],
            vals: Vec::new(),
        }
    }

    /// Build from parallel index arrays and values (SPLATT layout).
    ///
    /// # Panics
    /// Panics if array lengths disagree or any index is out of range.
    pub fn from_parts(dims: Vec<usize>, inds: Vec<Vec<u32>>, vals: Vec<f64>) -> Self {
        assert_eq!(inds.len(), dims.len(), "one index array per mode required");
        for (m, ind) in inds.iter().enumerate() {
            assert_eq!(ind.len(), vals.len(), "index array {m} length mismatch");
            assert!(
                ind.iter().all(|&i| (i as usize) < dims[m]),
                "index out of range in mode {m}"
            );
        }
        assert!(dims.len() >= 2, "tensors need at least two modes");
        SparseTensor { dims, inds, vals }
    }

    /// Build from `(coordinate, value)` tuples.
    ///
    /// # Panics
    /// Panics if any coordinate has the wrong arity or is out of range.
    pub fn from_entries(dims: Vec<usize>, entries: &[(Vec<u32>, f64)]) -> Self {
        let mut t = SparseTensor::new(dims);
        for (coord, val) in entries {
            t.push(coord, *val);
        }
        t
    }

    /// Append one nonzero.
    ///
    /// # Panics
    /// Panics if `coord.len() != order` or any index is out of range.
    pub fn push(&mut self, coord: &[u32], val: f64) {
        assert_eq!(coord.len(), self.order(), "coordinate arity mismatch");
        for (m, (&i, &d)) in coord.iter().zip(&self.dims).enumerate() {
            assert!(
                (i as usize) < d,
                "index {i} out of range for mode {m} (dim {d})"
            );
        }
        for (ind, &i) in self.inds.iter_mut().zip(coord) {
            ind.push(i);
        }
        self.vals.push(val);
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored nonzeros (duplicates counted separately).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Mode dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Index array of mode `m`.
    #[inline]
    pub fn ind(&self, m: usize) -> &[u32] {
        &self.inds[m]
    }

    /// Values array.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable access to all index arrays and the value array at once —
    /// what the sort needs to permute everything in lock step.
    pub(crate) fn parts_mut(&mut self) -> (&mut [Vec<u32>], &mut Vec<f64>) {
        (&mut self.inds, &mut self.vals)
    }

    /// The coordinate of nonzero `x` as a fresh vector.
    pub fn coord(&self, x: usize) -> Vec<u32> {
        self.inds.iter().map(|ind| ind[x]).collect()
    }

    /// Fraction of possible positions that hold a stored nonzero.
    pub fn density(&self) -> f64 {
        let cells: f64 = self.dims.iter().map(|&d| d as f64).product();
        self.nnz() as f64 / cells
    }

    /// Squared Frobenius norm `sum(v^2)` — `normX^2` in the CP-ALS fit.
    pub fn norm_squared(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum()
    }

    /// A copy of this tensor with its modes reordered: mode `m` of the
    /// result is mode `perm[m]` of `self`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..order`.
    pub fn permute_modes(&self, perm: &[usize]) -> SparseTensor {
        let order = self.order();
        assert_eq!(perm.len(), order, "perm must cover every mode");
        let mut seen = vec![false; order];
        for &m in perm {
            assert!(m < order && !seen[m], "perm must be a permutation of modes");
            seen[m] = true;
        }
        SparseTensor {
            dims: perm.iter().map(|&m| self.dims[m]).collect(),
            inds: perm.iter().map(|&m| self.inds[m].clone()).collect(),
            vals: self.vals.clone(),
        }
    }

    /// Deterministically split the nonzeros into a `(train, test)` pair,
    /// assigning roughly `holdout_fraction` of them to `test` — the
    /// standard preparation for completion experiments.
    ///
    /// # Panics
    /// Panics unless `0.0 <= holdout_fraction <= 1.0`.
    pub fn split_holdout(&self, holdout_fraction: f64, seed: u64) -> (SparseTensor, SparseTensor) {
        assert!(
            (0.0..=1.0).contains(&holdout_fraction),
            "holdout fraction must be in [0, 1]"
        );
        let mut train = SparseTensor::new(self.dims.clone());
        let mut test = SparseTensor::new(self.dims.clone());
        // cheap per-entry hash -> uniform in [0, 1): splitmix64 of (seed, x)
        let uniform = |x: usize| -> f64 {
            let mut z = seed ^ (x as u64).wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let mut coord = vec![0u32; self.order()];
        for x in 0..self.nnz() {
            for (c, ind) in coord.iter_mut().zip(&self.inds) {
                *c = ind[x];
            }
            if uniform(x) < holdout_fraction {
                test.push(&coord, self.vals[x]);
            } else {
                train.push(&coord, self.vals[x]);
            }
        }
        (train, test)
    }

    /// Merge a batch of delta entries into this tensor: each
    /// `(coordinate, value)` pair sums into the cell it names — growing
    /// mode dimensions as needed to admit out-of-range coordinates —
    /// and exact cancellations vanish, leaving the result in canonical
    /// (strictly sorted, duplicate-free) lexicographic order. This is
    /// the ingest path for WAL-recovered nnz deltas: deterministic, so
    /// replaying the same acknowledged prefix always yields the same
    /// tensor.
    ///
    /// The merge is a linear sorted two-way merge of the canonical base
    /// against the sorted batch — O(N + Δ·log Δ) — not a full re-sort
    /// of all N + Δ entries. A non-canonical base pays a one-time
    /// [`SparseTensor::coalesce`] first. Per-cell accumulation is
    /// strictly left-to-right (base value first, then deltas in batch
    /// order), so splitting one batch into several merges the same
    /// prefix to a *bit-identical* tensor even for values with inexact
    /// sums.
    ///
    /// # Panics
    /// Panics if any entry's coordinate arity differs from the tensor
    /// order.
    pub fn merge_entries(&mut self, entries: &[(Vec<u32>, f64)]) -> MergeStats {
        use std::cmp::Ordering;
        let order = self.order();
        for (coord, _) in entries {
            assert_eq!(coord.len(), order, "delta entry arity mismatch");
            for (d, &i) in self.dims.iter_mut().zip(coord) {
                *d = (*d).max(i as usize + 1);
            }
        }
        let base_was_canonical = self.is_strictly_sorted();
        if !base_was_canonical {
            self.coalesce();
        }
        let mut compare_ops: u64 = 0;
        // Stable sort of the batch by coordinate: ties keep batch order,
        // so duplicate deltas to one cell accumulate left-to-right.
        let mut dperm: Vec<usize> = (0..entries.len()).collect();
        dperm.sort_by(|&a, &b| {
            compare_ops += 1;
            entries[a].0.cmp(&entries[b].0)
        });
        let n = self.nnz();
        let dn = entries.len();
        let mut new_inds: Vec<Vec<u32>> = vec![Vec::with_capacity(n + dn); order];
        let mut new_vals: Vec<f64> = Vec::with_capacity(n + dn);
        let cmp_base_delta = |inds: &[Vec<u32>], x: usize, coord: &[u32]| -> Ordering {
            for (ind, &c) in inds.iter().zip(coord) {
                match ind[x].cmp(&c) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        };
        let (mut bi, mut di) = (0usize, 0usize);
        while bi < n || di < dn {
            let rel = if bi == n {
                Ordering::Greater
            } else if di == dn {
                Ordering::Less
            } else {
                compare_ops += 1;
                cmp_base_delta(&self.inds, bi, &entries[dperm[di]].0)
            };
            if rel == Ordering::Less {
                let v = self.vals[bi];
                if v != 0.0 {
                    for (ni, oi) in new_inds.iter_mut().zip(&self.inds) {
                        ni.push(oi[bi]);
                    }
                    new_vals.push(v);
                }
                bi += 1;
            } else {
                let coord = entries[dperm[di]].0.as_slice();
                let mut acc = if rel == Ordering::Equal {
                    let v = self.vals[bi];
                    bi += 1;
                    v
                } else {
                    0.0
                };
                acc += entries[dperm[di]].1;
                di += 1;
                while di < dn && {
                    compare_ops += 1;
                    entries[dperm[di]].0 == coord
                } {
                    acc += entries[dperm[di]].1;
                    di += 1;
                }
                if acc != 0.0 {
                    for (ni, &c) in new_inds.iter_mut().zip(coord) {
                        ni.push(c);
                    }
                    new_vals.push(acc);
                }
            }
        }
        self.inds = new_inds;
        self.vals = new_vals;
        MergeStats {
            base_nnz: n,
            delta_nnz: dn,
            out_nnz: self.vals.len(),
            compare_ops,
            base_was_canonical,
        }
    }

    /// Merge duplicate coordinates by summing their values, dropping exact
    /// zeros produced by cancellation. Ordering of the result is the
    /// lexicographic coordinate order.
    pub fn coalesce(&mut self) {
        let n = self.nnz();
        if n == 0 {
            return;
        }
        let order = self.order();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_unstable_by(|&a, &b| {
            for ind in &self.inds {
                match ind[a].cmp(&ind[b]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut new_inds: Vec<Vec<u32>> = vec![Vec::with_capacity(n); order];
        let mut new_vals: Vec<f64> = Vec::with_capacity(n);
        for &x in &perm {
            let same_as_last = !new_vals.is_empty()
                && new_inds
                    .iter()
                    .zip(&self.inds)
                    .all(|(ni, oi)| *ni.last().unwrap() == oi[x]);
            if same_as_last {
                *new_vals.last_mut().unwrap() += self.vals[x];
            } else {
                for (ni, oi) in new_inds.iter_mut().zip(&self.inds) {
                    ni.push(oi[x]);
                }
                new_vals.push(self.vals[x]);
            }
        }
        // drop exact-zero entries created by cancellation
        let mut keep = vec![true; new_vals.len()];
        for (k, v) in keep.iter_mut().zip(&new_vals) {
            *k = *v != 0.0;
        }
        if keep.iter().any(|k| !k) {
            for ind in &mut new_inds {
                let mut it = keep.iter();
                ind.retain(|_| *it.next().unwrap());
            }
            let mut it = keep.iter();
            new_vals.retain(|_| *it.next().unwrap());
        }
        self.inds = new_inds;
        self.vals = new_vals;
    }

    /// `true` if nonzeros are sorted lexicographically by the mode order
    /// `perm` (e.g. `[1, 0, 2]` = sort by mode 1, ties by mode 0, then 2).
    pub fn is_sorted_by(&self, perm: &[usize]) -> bool {
        (1..self.nnz()).all(|x| {
            for &m in perm {
                match self.inds[m][x - 1].cmp(&self.inds[m][x]) {
                    std::cmp::Ordering::Less => return true,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Equal => continue,
                }
            }
            true
        })
    }

    /// `true` if nonzeros are *strictly* sorted lexicographically by the
    /// identity mode order — sorted with no duplicate coordinates, the
    /// canonical form [`SparseTensor::coalesce`] produces.
    pub fn is_strictly_sorted(&self) -> bool {
        (1..self.nnz()).all(|x| {
            for ind in &self.inds {
                match ind[x - 1].cmp(&ind[x]) {
                    std::cmp::Ordering::Less => return true,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Equal => continue,
                }
            }
            false // exact duplicate coordinate
        })
    }

    /// Multiset of `(coordinate, value)` pairs, sorted — for equivalence
    /// checks in tests (sorting must be a permutation of this multiset).
    pub fn canonical_entries(&self) -> Vec<(Vec<u32>, f64)> {
        let mut out: Vec<(Vec<u32>, f64)> = (0..self.nnz())
            .map(|x| (self.coord(x), self.vals[x]))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseTensor {
        SparseTensor::from_entries(
            vec![3, 4, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![2, 3, 4], 2.0),
                (vec![1, 2, 3], 3.0),
            ],
        )
    }

    #[test]
    fn construction_basics() {
        let t = small();
        assert_eq!(t.order(), 3);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.dims(), &[3, 4, 5]);
        assert_eq!(t.ind(0), &[0, 2, 1]);
        assert_eq!(t.vals(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn coord_roundtrip() {
        let t = small();
        assert_eq!(t.coord(1), vec![2, 3, 4]);
    }

    #[test]
    fn density_and_norm() {
        let t = small();
        assert!((t.density() - 3.0 / 60.0).abs() < 1e-15);
        assert!((t.norm_squared() - 14.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut t = SparseTensor::new(vec![2, 2]);
        t.push(&[2, 0], 1.0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn push_wrong_arity_panics() {
        let mut t = SparseTensor::new(vec![2, 2]);
        t.push(&[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two modes")]
    fn single_mode_rejected() {
        let _ = SparseTensor::new(vec![5]);
    }

    #[test]
    fn from_parts_validates_lengths() {
        let t = SparseTensor::from_parts(vec![2, 2], vec![vec![0, 1], vec![1, 0]], vec![1.0, 2.0]);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_rejects_ragged() {
        let _ = SparseTensor::from_parts(vec![2, 2], vec![vec![0], vec![1, 0]], vec![1.0, 2.0]);
    }

    #[test]
    fn coalesce_merges_duplicates() {
        let mut t = SparseTensor::from_entries(
            vec![2, 2],
            &[(vec![0, 1], 1.0), (vec![0, 1], 2.0), (vec![1, 0], 5.0)],
        );
        t.coalesce();
        assert_eq!(t.nnz(), 2);
        assert_eq!(
            t.canonical_entries(),
            vec![(vec![0, 1], 3.0), (vec![1, 0], 5.0)]
        );
    }

    #[test]
    fn coalesce_drops_cancelled_entries() {
        let mut t = SparseTensor::from_entries(
            vec![2, 2],
            &[(vec![0, 0], 1.0), (vec![0, 0], -1.0), (vec![1, 1], 2.0)],
        );
        t.coalesce();
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.canonical_entries(), vec![(vec![1, 1], 2.0)]);
    }

    #[test]
    fn coalesce_empty_is_noop() {
        let mut t = SparseTensor::new(vec![2, 2]);
        t.coalesce();
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn merge_entries_sums_updates_and_grows_dims() {
        let mut t = small();
        t.merge_entries(&[
            (vec![0, 0, 0], 0.5),  // update of an existing cell
            (vec![2, 3, 4], -2.0), // exact cancellation
            (vec![4, 1, 1], 9.0),  // out of range: grows mode 0 to 5
        ]);
        assert_eq!(t.dims(), &[5, 4, 5]);
        assert_eq!(
            t.canonical_entries(),
            vec![
                (vec![0, 0, 0], 1.5),
                (vec![1, 2, 3], 3.0),
                (vec![4, 1, 1], 9.0),
            ]
        );
    }

    #[test]
    fn merge_entries_is_deterministic_and_batchable() {
        // One big merge and two staged merges agree entry-for-entry.
        let deltas: Vec<(Vec<u32>, f64)> = (0..40u32)
            .map(|i| (vec![i % 5, i % 4, i % 3], (i as f64) * 0.25 - 3.0))
            .collect();
        let mut whole = small();
        whole.merge_entries(&deltas);
        let mut staged = small();
        staged.merge_entries(&deltas[..17]);
        staged.merge_entries(&deltas[17..]);
        assert_eq!(whole.canonical_entries(), staged.canonical_entries());
        assert_eq!(whole.dims(), staged.dims());
    }

    #[test]
    fn merge_entries_batch_split_is_bit_identical() {
        // Inexact values: 0.1*i sums depend on accumulation order, so
        // this pins the left-to-right (base, then batch order) rule.
        let deltas: Vec<(Vec<u32>, f64)> = (0..60u32)
            .map(|i| (vec![i % 7, i % 5, i % 3], (i as f64) * 0.1 - 2.7))
            .collect();
        let mut whole = small();
        whole.merge_entries(&deltas);
        for split in [1usize, 13, 29, 59] {
            let mut staged = small();
            staged.merge_entries(&deltas[..split]);
            staged.merge_entries(&deltas[split..]);
            assert_eq!(staged.dims(), whole.dims(), "split {split}");
            assert_eq!(staged.nnz(), whole.nnz(), "split {split}");
            for x in 0..whole.nnz() {
                assert_eq!(staged.coord(x), whole.coord(x), "split {split}");
                assert_eq!(
                    staged.vals()[x].to_bits(),
                    whole.vals()[x].to_bits(),
                    "split {split} entry {x} must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn merge_entries_result_is_canonical_and_linear() {
        let mut t = small();
        t.coalesce();
        let stats = t.merge_entries(&[(vec![2, 2, 2], 1.0), (vec![0, 0, 1], 2.0)]);
        assert!(t.is_strictly_sorted(), "merge output must be canonical");
        assert!(stats.base_was_canonical, "coalesced base is canonical");
        assert_eq!(stats.base_nnz, 3);
        assert_eq!(stats.delta_nnz, 2);
        assert_eq!(stats.out_nnz, 5);
        // Linear merge: comparisons bounded by sort (d log d) + merge (n + d).
        assert!(
            stats.compare_ops <= 2 * (3 + 2) + 2 * 4,
            "compare_ops {} not linear-ish",
            stats.compare_ops
        );
        // A second merge into the now-canonical output skips coalesce.
        let stats2 = t.merge_entries(&[(vec![1, 1, 1], 1.0)]);
        assert!(stats2.base_was_canonical);
    }

    #[test]
    fn merge_entries_canonicalizes_unsorted_base_once() {
        let mut t = SparseTensor::from_entries(
            vec![3, 3],
            &[(vec![2, 2], 1.0), (vec![0, 0], 2.0), (vec![2, 2], 0.5)],
        );
        let stats = t.merge_entries(&[(vec![1, 1], 4.0)]);
        assert!(!stats.base_was_canonical);
        assert_eq!(stats.base_nnz, 2, "base coalesced before the merge");
        assert_eq!(
            t.canonical_entries(),
            vec![(vec![0, 0], 2.0), (vec![1, 1], 4.0), (vec![2, 2], 1.5),]
        );
        assert!(t.is_strictly_sorted());
    }

    #[test]
    fn is_strictly_sorted_rejects_duplicates() {
        let sorted = small(); // entries of small() are not sorted
        assert!(!sorted.is_strictly_sorted());
        let mut c = small();
        c.coalesce();
        assert!(c.is_strictly_sorted());
        let dup = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 1], 1.0), (vec![0, 1], 2.0)]);
        assert!(!dup.is_strictly_sorted(), "exact duplicates are not strict");
    }

    #[test]
    fn is_sorted_by_detects_order() {
        let t = SparseTensor::from_entries(
            vec![3, 3],
            &[(vec![0, 2], 1.0), (vec![1, 1], 1.0), (vec![2, 0], 1.0)],
        );
        assert!(t.is_sorted_by(&[0, 1]));
        assert!(!t.is_sorted_by(&[1, 0]));
    }

    #[test]
    fn is_sorted_handles_ties() {
        let t = SparseTensor::from_entries(vec![3, 3], &[(vec![1, 0], 1.0), (vec![1, 2], 1.0)]);
        assert!(t.is_sorted_by(&[0, 1]));
        assert!(t.is_sorted_by(&[0])); // prefix order with ties allowed
    }

    #[test]
    fn canonical_entries_is_order_invariant() {
        let a = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 1], 1.0), (vec![1, 0], 2.0)]);
        let b = SparseTensor::from_entries(vec![2, 2], &[(vec![1, 0], 2.0), (vec![0, 1], 1.0)]);
        assert_eq!(a.canonical_entries(), b.canonical_entries());
    }

    #[test]
    fn permute_modes_relabels_coordinates() {
        let t = small();
        let p = t.permute_modes(&[2, 0, 1]);
        assert_eq!(p.dims(), &[5, 3, 4]);
        // entry (1, 2, 3) in `t` becomes (3, 1, 2)
        assert!(p.canonical_entries().contains(&(vec![3, 1, 2], 3.0)));
        assert_eq!(p.nnz(), t.nnz());
    }

    #[test]
    fn permute_modes_identity_is_noop() {
        let t = small();
        assert_eq!(t.permute_modes(&[0, 1, 2]), t);
    }

    #[test]
    fn permute_then_inverse_roundtrips() {
        let t = small();
        let p = t.permute_modes(&[1, 2, 0]);
        // inverse of [1,2,0] is [2,0,1]
        assert_eq!(p.permute_modes(&[2, 0, 1]), t);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn permute_rejects_bad_perm() {
        let _ = small().permute_modes(&[0, 0, 1]);
    }

    #[test]
    fn split_holdout_partitions_entries() {
        let mut t = SparseTensor::new(vec![50, 50]);
        for i in 0..50u32 {
            for j in 0..20u32 {
                t.push(&[i, j], (i + j) as f64);
            }
        }
        let (train, test) = t.split_holdout(0.25, 7);
        assert_eq!(train.nnz() + test.nnz(), t.nnz());
        // fraction is approximate but must be in the right ballpark
        let frac = test.nnz() as f64 / t.nnz() as f64;
        assert!((0.15..0.35).contains(&frac), "holdout fraction {frac}");
        // union of entries equals the original multiset
        let mut all = train.canonical_entries();
        all.extend(test.canonical_entries());
        all.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        assert_eq!(all, t.canonical_entries());
    }

    #[test]
    fn split_holdout_is_deterministic() {
        let t = SparseTensor::from_entries(
            vec![4, 4],
            &[(vec![0, 1], 1.0), (vec![1, 2], 2.0), (vec![2, 3], 3.0)],
        );
        let (a1, b1) = t.split_holdout(0.5, 3);
        let (a2, b2) = t.split_holdout(0.5, 3);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn split_holdout_extremes() {
        let t = small();
        let (train, test) = t.split_holdout(0.0, 1);
        assert_eq!(train.nnz(), t.nnz());
        assert_eq!(test.nnz(), 0);
        let (train, test) = t.split_holdout(1.0, 1);
        assert_eq!(train.nnz(), 0);
        assert_eq!(test.nnz(), t.nnz());
    }

    #[test]
    fn four_mode_tensor_supported() {
        let t = SparseTensor::from_entries(
            vec![2, 3, 4, 5],
            &[(vec![1, 2, 3, 4], 7.0), (vec![0, 0, 0, 0], 1.0)],
        );
        assert_eq!(t.order(), 4);
        assert_eq!(t.coord(0), vec![1, 2, 3, 4]);
    }
}
