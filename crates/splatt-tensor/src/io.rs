//! FROSTT-style `.tns` text I/O.
//!
//! The data sets in the paper's Table I ship as whitespace-separated text:
//! one nonzero per line, `order` 1-based coordinates followed by the value.
//! Lines starting with `#` are comments. Mode dimensions are inferred as
//! the per-mode maximum unless provided explicitly.

use crate::SparseTensor;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced while parsing a `.tns` stream.
#[derive(Debug)]
pub enum TnsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line could not be parsed; carries the 1-based line number
    /// and a description.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for TnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TnsError::Io(e) => write!(f, "I/O error: {e}"),
            TnsError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for TnsError {}

impl From<std::io::Error> for TnsError {
    fn from(e: std::io::Error) -> Self {
        TnsError::Io(e)
    }
}

/// Parse a `.tns` stream, inferring mode dimensions from the data.
///
/// # Errors
/// [`TnsError::Parse`] on malformed lines (wrong arity, non-numeric
/// fields, zero indices — the format is 1-based); [`TnsError::Io`] on read
/// failures. An empty stream is an error (the order cannot be inferred).
pub fn read_tns(reader: impl Read) -> Result<SparseTensor, TnsError> {
    let reader = BufReader::new(reader);
    let mut order: Option<usize> = None;
    let mut inds: Vec<Vec<u32>> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut dims: Vec<usize> = Vec::new();

    let mut line_buf = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let ord = *order.get_or_insert_with(|| fields.len().saturating_sub(1));
        if ord < 2 {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("expected at least 3 fields, found {}", fields.len()),
            });
        }
        if fields.len() != ord + 1 {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("expected {} fields, found {}", ord + 1, fields.len()),
            });
        }
        if inds.is_empty() {
            inds = vec![Vec::new(); ord];
            dims = vec![0; ord];
        }
        for (m, f) in fields[..ord].iter().enumerate() {
            let idx: u64 = f.parse().map_err(|_| TnsError::Parse {
                line: lineno,
                message: format!("invalid index '{f}' in mode {m}"),
            })?;
            if idx == 0 || idx > u32::MAX as u64 {
                return Err(TnsError::Parse {
                    line: lineno,
                    message: format!("index {idx} out of range (format is 1-based)"),
                });
            }
            let zero_based = (idx - 1) as u32;
            inds[m].push(zero_based);
            dims[m] = dims[m].max(idx as usize);
        }
        let v: f64 = fields[ord].parse().map_err(|_| TnsError::Parse {
            line: lineno,
            message: format!("invalid value '{}'", fields[ord]),
        })?;
        vals.push(v);
    }

    if order.is_none() {
        return Err(TnsError::Parse {
            line: 0,
            message: "empty tensor file: cannot infer order".to_string(),
        });
    }
    Ok(SparseTensor::from_parts(dims, inds, vals))
}

/// Read a `.tns` file from disk.
///
/// # Errors
/// See [`read_tns`].
pub fn read_tns_file(path: impl AsRef<Path>) -> Result<SparseTensor, TnsError> {
    read_tns(std::fs::File::open(path)?)
}

/// Write a tensor as 1-based `.tns` text.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_tns(tensor: &SparseTensor, writer: impl Write) -> Result<(), std::io::Error> {
    let mut w = BufWriter::new(writer);
    for x in 0..tensor.nnz() {
        for m in 0..tensor.order() {
            write!(w, "{} ", tensor.ind(m)[x] as u64 + 1)?;
        }
        writeln!(w, "{}", tensor.vals()[x])?;
    }
    w.flush()
}

/// Write a tensor to a `.tns` file on disk.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_tns_file(tensor: &SparseTensor, path: impl AsRef<Path>) -> Result<(), std::io::Error> {
    write_tns(tensor, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let text = "1 1 1 1.5\n2 3 4 -2.0\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.order(), 3);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.dims(), &[2, 3, 4]);
        assert_eq!(t.coord(1), vec![1, 2, 3]);
        assert_eq!(t.vals(), &[1.5, -2.0]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n1 1 2.0\n  # another\n2 2 3.0\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.order(), 2);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let t = SparseTensor::from_entries(
            vec![3, 4, 5],
            &[(vec![0, 1, 2], 1.25), (vec![2, 3, 4], -0.5)],
        );
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        assert_eq!(back.canonical_entries(), t.canonical_entries());
    }

    #[test]
    fn inferred_dims_are_maxima() {
        let t = read_tns("5 1 1.0\n1 7 2.0\n".as_bytes()).unwrap();
        assert_eq!(t.dims(), &[5, 7]);
    }

    #[test]
    fn rejects_zero_index() {
        let err = read_tns("0 1 1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_ragged_lines() {
        let err = read_tns("1 1 1 1.0\n1 1 2.0\n".as_bytes()).unwrap_err();
        match err {
            TnsError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("fields"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_value() {
        let err = read_tns("1 1 abc\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { .. }));
    }

    #[test]
    fn rejects_empty_stream() {
        assert!(read_tns("".as_bytes()).is_err());
        assert!(read_tns("# only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("splatt_tns_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        let t = SparseTensor::from_entries(vec![2, 2], &[(vec![1, 1], 4.0)]);
        write_tns_file(&t, &path).unwrap();
        let back = read_tns_file(&path).unwrap();
        assert_eq!(back.canonical_entries(), t.canonical_entries());
        std::fs::remove_dir_all(&dir).ok();
    }
}
