//! FROSTT-style `.tns` text I/O.
//!
//! The data sets in the paper's Table I ship as whitespace-separated text:
//! one nonzero per line, `order` 1-based coordinates followed by the value.
//! Lines starting with `#` are comments. Mode dimensions are inferred as
//! the per-mode maximum unless provided explicitly.

use crate::SparseTensor;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced while parsing a `.tns` stream.
#[derive(Debug)]
pub enum TnsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line could not be parsed; carries the 1-based line number
    /// and a description.
    Parse { line: usize, message: String },
    /// A coordinate appeared twice under [`DuplicatePolicy::Error`];
    /// carries the 1-based line of the second occurrence and the 1-based
    /// coordinate.
    Duplicate { line: usize, coord: Vec<u64> },
}

impl std::fmt::Display for TnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TnsError::Io(e) => write!(f, "I/O error: {e}"),
            TnsError::Parse { line, message } => write!(f, "line {line}: {message}"),
            TnsError::Duplicate { line, coord } => {
                let c: Vec<String> = coord.iter().map(|i| i.to_string()).collect();
                write!(f, "line {line}: duplicate coordinate ({})", c.join(", "))
            }
        }
    }
}

impl std::error::Error for TnsError {}

impl From<std::io::Error> for TnsError {
    fn from(e: std::io::Error) -> Self {
        TnsError::Io(e)
    }
}

/// What [`read_tns_with`] does when the same coordinate appears on more
/// than one data line. FROSTT files are nominally duplicate-free, but
/// real exports (and the scaled-down synthetic generators) are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Keep every line as its own nonzero (the historical behavior);
    /// callers may [`SparseTensor::coalesce`] later.
    #[default]
    Keep,
    /// Merge repeated coordinates by summing their values.
    Sum,
    /// Reject the stream with [`TnsError::Duplicate`].
    Error,
}

/// Parse the shared per-line payload: `ord` 1-based coordinates (mapped
/// to 0-based `u32`) followed by a finite value.
fn parse_entry_fields(
    fields: &[&str],
    ord: usize,
    lineno: usize,
) -> Result<(Vec<u32>, f64), TnsError> {
    let mut coord = Vec::with_capacity(ord);
    for (m, f) in fields[..ord].iter().enumerate() {
        let idx: u64 = f.parse().map_err(|_| TnsError::Parse {
            line: lineno,
            message: format!("invalid index '{f}' in mode {m}"),
        })?;
        if idx == 0 || idx > u32::MAX as u64 {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("index {idx} out of range (format is 1-based)"),
            });
        }
        coord.push((idx - 1) as u32);
    }
    let v: f64 = fields[ord].parse().map_err(|_| TnsError::Parse {
        line: lineno,
        message: format!("invalid value '{}'", fields[ord]),
    })?;
    if !v.is_finite() {
        return Err(TnsError::Parse {
            line: lineno,
            message: format!("non-finite value '{}'", fields[ord]),
        });
    }
    Ok((coord, v))
}

/// Parse a `.tns` stream into raw `(coordinate, value)` entries in file
/// order, without building a tensor: the ingest path for WAL delta
/// batches, where entries must survive exactly as written (duplicates
/// preserved, order preserved) so the log replays deterministically.
/// Coordinates are returned 0-based; the same validations as
/// [`read_tns_with`] apply (consistent arity, 1-based indices that fit
/// `u32`, finite values).
///
/// Returns `(order, entries)`.
///
/// # Errors
/// See [`read_tns_with`]; an empty stream is an error.
pub fn read_tns_entries(reader: impl Read) -> Result<RawEntries, TnsError> {
    let mut reader = BufReader::new(reader);
    let mut order: Option<usize> = None;
    let mut entries: Vec<(Vec<u32>, f64)> = Vec::new();
    let mut line_buf = String::new();
    let mut lineno = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let ord = *order.get_or_insert_with(|| fields.len().saturating_sub(1));
        if ord < 2 {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("expected at least 3 fields, found {}", fields.len()),
            });
        }
        if fields.len() != ord + 1 {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("expected {} fields, found {}", ord + 1, fields.len()),
            });
        }
        entries.push(parse_entry_fields(&fields, ord, lineno)?);
    }
    match order {
        Some(ord) => Ok((ord, entries)),
        None => Err(TnsError::Parse {
            line: 0,
            message: "empty tensor file: cannot infer order".to_string(),
        }),
    }
}

/// Raw `.tns` content: the inferred order and every `(coords, value)`
/// entry in file order (0-based coordinates, duplicates preserved).
pub type RawEntries = (usize, Vec<(Vec<u32>, f64)>);

/// Read raw `.tns` entries from a file on disk; see [`read_tns_entries`].
///
/// # Errors
/// See [`read_tns_entries`].
pub fn read_tns_entries_file(path: impl AsRef<Path>) -> Result<RawEntries, TnsError> {
    read_tns_entries(std::fs::File::open(path)?)
}

/// Parse a `.tns` stream, inferring mode dimensions from the data.
/// Equivalent to [`read_tns_with`] under [`DuplicatePolicy::Keep`].
///
/// # Errors
/// See [`read_tns_with`].
pub fn read_tns(reader: impl Read) -> Result<SparseTensor, TnsError> {
    read_tns_with(reader, DuplicatePolicy::Keep)
}

/// Parse a `.tns` stream, inferring mode dimensions from the data and
/// resolving repeated coordinates per `duplicates`.
///
/// # Errors
/// [`TnsError::Parse`] on malformed lines (wrong arity, non-numeric
/// fields, zero or `> u32::MAX` indices — the format is 1-based — and
/// non-finite values, which would silently poison a decomposition);
/// [`TnsError::Duplicate`] on a repeated coordinate under
/// [`DuplicatePolicy::Error`]; [`TnsError::Io`] on read failures. An
/// empty stream is an error (the order cannot be inferred).
pub fn read_tns_with(
    reader: impl Read,
    duplicates: DuplicatePolicy,
) -> Result<SparseTensor, TnsError> {
    let reader = BufReader::new(reader);
    let mut order: Option<usize> = None;
    let mut inds: Vec<Vec<u32>> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut dims: Vec<usize> = Vec::new();
    // coordinate -> entry index, maintained only when duplicates matter
    let mut seen: HashMap<Vec<u32>, usize> = HashMap::new();

    let mut line_buf = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let ord = *order.get_or_insert_with(|| fields.len().saturating_sub(1));
        if ord < 2 {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("expected at least 3 fields, found {}", fields.len()),
            });
        }
        if fields.len() != ord + 1 {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("expected {} fields, found {}", ord + 1, fields.len()),
            });
        }
        if inds.is_empty() {
            inds = vec![Vec::new(); ord];
            dims = vec![0; ord];
        }
        let (coord, v) = parse_entry_fields(&fields, ord, lineno)?;
        if duplicates != DuplicatePolicy::Keep {
            if let Some(&at) = seen.get(&coord) {
                match duplicates {
                    DuplicatePolicy::Sum => {
                        vals[at] += v;
                        continue;
                    }
                    DuplicatePolicy::Error => {
                        return Err(TnsError::Duplicate {
                            line: lineno,
                            coord: coord.iter().map(|&i| i as u64 + 1).collect(),
                        });
                    }
                    DuplicatePolicy::Keep => unreachable!(),
                }
            }
            seen.insert(coord.clone(), vals.len());
        }
        for (m, &i) in coord.iter().enumerate() {
            inds[m].push(i);
            dims[m] = dims[m].max(i as usize + 1);
        }
        vals.push(v);
    }

    if order.is_none() {
        return Err(TnsError::Parse {
            line: 0,
            message: "empty tensor file: cannot infer order".to_string(),
        });
    }
    Ok(SparseTensor::from_parts(dims, inds, vals))
}

/// Read a `.tns` file from disk.
///
/// # Errors
/// See [`read_tns`].
pub fn read_tns_file(path: impl AsRef<Path>) -> Result<SparseTensor, TnsError> {
    read_tns(std::fs::File::open(path)?)
}

/// Read a `.tns` file from disk with an explicit duplicate policy.
///
/// # Errors
/// See [`read_tns_with`].
pub fn read_tns_file_with(
    path: impl AsRef<Path>,
    duplicates: DuplicatePolicy,
) -> Result<SparseTensor, TnsError> {
    read_tns_with(std::fs::File::open(path)?, duplicates)
}

/// Write a tensor as 1-based `.tns` text.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_tns(tensor: &SparseTensor, writer: impl Write) -> Result<(), std::io::Error> {
    let mut w = BufWriter::new(writer);
    for x in 0..tensor.nnz() {
        for m in 0..tensor.order() {
            write!(w, "{} ", tensor.ind(m)[x] as u64 + 1)?;
        }
        writeln!(w, "{}", tensor.vals()[x])?;
    }
    w.flush()
}

/// Write a tensor to a `.tns` file on disk.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_tns_file(tensor: &SparseTensor, path: impl AsRef<Path>) -> Result<(), std::io::Error> {
    write_tns(tensor, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let text = "1 1 1 1.5\n2 3 4 -2.0\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.order(), 3);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.dims(), &[2, 3, 4]);
        assert_eq!(t.coord(1), vec![1, 2, 3]);
        assert_eq!(t.vals(), &[1.5, -2.0]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n1 1 2.0\n  # another\n2 2 3.0\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.order(), 2);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let t = SparseTensor::from_entries(
            vec![3, 4, 5],
            &[(vec![0, 1, 2], 1.25), (vec![2, 3, 4], -0.5)],
        );
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        assert_eq!(back.canonical_entries(), t.canonical_entries());
    }

    #[test]
    fn inferred_dims_are_maxima() {
        let t = read_tns("5 1 1.0\n1 7 2.0\n".as_bytes()).unwrap();
        assert_eq!(t.dims(), &[5, 7]);
    }

    #[test]
    fn rejects_zero_index() {
        let err = read_tns("0 1 1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_ragged_lines() {
        let err = read_tns("1 1 1 1.0\n1 1 2.0\n".as_bytes()).unwrap_err();
        match err {
            TnsError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("fields"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_value() {
        let err = read_tns("1 1 abc\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { .. }));
    }

    #[test]
    fn rejects_empty_stream() {
        assert!(read_tns("".as_bytes()).is_err());
        assert!(read_tns("# only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_nonfinite_values() {
        for bad in ["NaN", "nan", "inf", "-inf", "Infinity"] {
            let text = format!("1 1 1.0\n2 2 {bad}\n");
            let err = read_tns(text.as_bytes()).unwrap_err();
            match err {
                TnsError::Parse { line, message } => {
                    assert_eq!(line, 2, "{bad}");
                    assert!(message.contains("non-finite"), "{bad}: {message}");
                }
                other => panic!("{bad}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_policy_sum_merges_values() {
        let text = "1 2 3 1.5\n4 1 1 2.0\n1 2 3 -0.5\n";
        let t = read_tns_with(text.as_bytes(), DuplicatePolicy::Sum).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(
            t.canonical_entries(),
            vec![(vec![0, 1, 2], 1.0), (vec![3, 0, 0], 2.0)]
        );
    }

    #[test]
    fn duplicate_policy_error_names_line_and_coord() {
        let text = "1 2 3 1.5\n4 1 1 2.0\n1 2 3 -0.5\n";
        let err = read_tns_with(text.as_bytes(), DuplicatePolicy::Error).unwrap_err();
        match err {
            TnsError::Duplicate { line, coord } => {
                assert_eq!(line, 3);
                assert_eq!(coord, vec![1, 2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // keep (the default) still accepts the stream verbatim
        assert_eq!(read_tns(text.as_bytes()).unwrap().nnz(), 3);
    }

    #[test]
    fn qc_roundtrip_with_duplicates_matches_coalesce() {
        // Sum must agree with the in-memory coalesce on any generated
        // stream containing repeats.
        splatt_rt::qc::check("tns sum == coalesce", 48, |g| {
            let dims = [
                g.usize_in(1..6) as u32,
                g.usize_in(1..6) as u32,
                g.usize_in(1..6) as u32,
            ];
            let n = g.usize_in(1..40);
            let mut text = String::new();
            let mut reference = SparseTensor::new(dims.iter().map(|&d| d as usize).collect());
            for _ in 0..n {
                let coord: Vec<u32> = dims
                    .iter()
                    .map(|&d| g.usize_in(0..d as usize) as u32)
                    .collect();
                // small integers over 2^-4 stay exact under f64 addition,
                // so text-vs-memory sums are bit-comparable
                let v = (g.usize_in(0..64) as f64 - 32.0) / 16.0;
                text.push_str(&format!(
                    "{} {} {} {v}\n",
                    coord[0] + 1,
                    coord[1] + 1,
                    coord[2] + 1
                ));
                reference.push(&coord, v);
            }
            reference.coalesce();
            let parsed = read_tns_with(text.as_bytes(), DuplicatePolicy::Sum).unwrap();
            // coalesce drops entries that summed to exactly zero; the
            // reader keeps them, so compare on the union of coordinates
            let mut parsed = parsed;
            parsed.coalesce();
            assert_eq!(
                parsed.canonical_entries(),
                reference.canonical_entries(),
                "seed {:#x}",
                g.seed()
            );
        });
    }

    #[test]
    fn qc_adversarial_streams_error_not_panic() {
        // Whatever we throw at the parser, it must return Ok or a typed
        // error — never panic, never wrap an index.
        splatt_rt::qc::check("tns adversarial inputs", 64, |g| {
            let base = "1 2 3 1.0\n2 3 4 2.0\n3 1 2 3.0\n";
            let attack = *g.choose(&[
                "truncate",
                "huge-index",
                "overflow-index",
                "nan",
                "inf",
                "ragged",
                "zero-index",
                "negative-index",
                "garbage",
            ]);
            let text = match attack {
                // cut the stream mid-line (no trailing newline)
                "truncate" => {
                    let cut = g.usize_in(1..base.len());
                    base[..cut].to_string()
                }
                "huge-index" => format!("{base}4294967295 1 1 1.0\n"),
                "overflow-index" => format!("{base}4294967296 1 1 1.0\n"),
                "nan" => format!("{base}4 4 4 NaN\n"),
                "inf" => format!("{base}4 4 4 -inf\n"),
                "ragged" => format!("{base}1 2 1.0\n"),
                "zero-index" => format!("{base}0 1 1 1.0\n"),
                "negative-index" => format!("{base}-3 1 1 1.0\n"),
                "garbage" => format!("{base}\u{1F4A3} \u{1F4A3} \u{1F4A3} \u{1F4A3}\n"),
                _ => unreachable!(),
            };
            let policy = *g.choose(&[
                DuplicatePolicy::Keep,
                DuplicatePolicy::Sum,
                DuplicatePolicy::Error,
            ]);
            match read_tns_with(text.as_bytes(), policy) {
                Ok(t) => {
                    // the only attacks that may still parse are a
                    // truncation that landed on a line boundary, or the
                    // largest representable index
                    assert!(
                        attack == "truncate" || attack == "huge-index",
                        "attack {attack} parsed (seed {:#x})",
                        g.seed()
                    );
                    assert!(t.nnz() <= 4);
                    for m in 0..t.order() {
                        assert!(t.dims()[m] <= u32::MAX as usize);
                    }
                }
                Err(TnsError::Parse { line, .. }) => {
                    assert!(line <= 4, "line {line} out of range (seed {:#x})", g.seed());
                }
                Err(TnsError::Duplicate { .. }) => {
                    panic!("no attack introduces duplicates (seed {:#x})", g.seed())
                }
                Err(TnsError::Io(e)) => panic!("unexpected I/O error {e} (seed {:#x})", g.seed()),
            }
        });
    }

    #[test]
    fn entries_reader_preserves_order_and_duplicates() {
        let text = "# c\n1 2 3 1.5\n1 2 3 -0.5\n4 1 1 2.0\n";
        let (order, entries) = read_tns_entries(text.as_bytes()).unwrap();
        assert_eq!(order, 3);
        assert_eq!(
            entries,
            vec![
                (vec![0, 1, 2], 1.5),
                (vec![0, 1, 2], -0.5),
                (vec![3, 0, 0], 2.0),
            ]
        );
    }

    #[test]
    fn entries_reader_rejects_what_the_tensor_reader_rejects() {
        for bad in [
            "",
            "0 1 1 1.0\n",
            "1 1 1 NaN\n",
            "1 1 1 1.0\n1 1 2.0\n",
            "4294967296 1 1 1.0\n",
        ] {
            assert!(read_tns_entries(bad.as_bytes()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("splatt_tns_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        let t = SparseTensor::from_entries(vec![2, 2], &[(vec![1, 1], 4.0)]);
        write_tns_file(&t, &path).unwrap();
        let back = read_tns_file(&path).unwrap();
        assert_eq!(back.canonical_entries(), t.canonical_entries());
        std::fs::remove_dir_all(&dir).ok();
    }
}
