//! ALTO: a linearized, mode-agnostic sparse tensor format.
//!
//! Instead of one CSF tree per root mode, ALTO (Laukemann et al.,
//! "Accelerating Sparse Tensor Decomposition Using Adaptive Linearized
//! Representation") keeps a **single sorted stream** of bit-packed
//! linearized coordinates shared by every mode's MTTKRP: each nonzero's
//! per-mode indices are packed into one machine word, most-significant
//! field first, so the natural integer order of the stream *is* the
//! lexicographic coordinate order. Kernels for any output mode walk the
//! same stream and detect fiber boundaries by comparing adjacent words —
//! no per-mode trees, no duplicated value arrays.
//!
//! Load balance comes from recursive coordinate-space partitioning
//! ([`AltoTensor::partition`], backed by
//! `splatt_par::partition::recursive_weighted`): task boundaries are
//! aligned to root-coordinate (slice) boundaries so the root-mode kernel
//! stays synchronization-free, with per-task nonzero counts balanced by
//! recursive bisection.
//!
//! The mode order inside the packed word matches the CSF `One`
//! allocation policy's tree (shortest mode first, remaining modes by
//! ascending dimension), so an [`AltoTensor`] and a one-tree CSF built
//! from the same tensor describe the *same* fiber structure — the
//! property the `format_differential` test harness pins down to the bit.

use crate::sort::{self, SortVariant};
use crate::SparseTensor;
use splatt_par::{partition, TaskTeam};

/// Word types the linearized stream can pack into. 64-bit covers every
/// tensor whose summed per-mode index widths fit one machine word (all
/// of the paper's data sets); 128-bit covers the rest up to 128 bits.
pub trait AltoWord: Copy + Eq + Send + Sync {
    /// All-zero word.
    const ZERO: Self;
    /// `self | (v << shift)` — pack one mode's index field.
    fn or_field(self, v: u32, shift: u32) -> Self;
    /// Extract the field at `shift` under `mask`.
    fn field(self, shift: u32, mask: u64) -> u32;
    /// Do `self` and `other` agree on every bit at or above `shift`?
    /// (`true` means no level at or above the field starting at `shift`
    /// changed between the two coordinates.)
    fn agrees_through(self, other: Self, shift: u32) -> bool;
}

impl AltoWord for u64 {
    const ZERO: Self = 0;
    #[inline(always)]
    fn or_field(self, v: u32, shift: u32) -> Self {
        self | ((v as u64) << shift)
    }
    #[inline(always)]
    fn field(self, shift: u32, mask: u64) -> u32 {
        (self.checked_shr(shift).unwrap_or(0) & mask) as u32
    }
    #[inline(always)]
    fn agrees_through(self, other: Self, shift: u32) -> bool {
        (self ^ other).checked_shr(shift).unwrap_or(0) == 0
    }
}

impl AltoWord for u128 {
    const ZERO: Self = 0;
    #[inline(always)]
    fn or_field(self, v: u32, shift: u32) -> Self {
        self | ((v as u128) << shift)
    }
    #[inline(always)]
    fn field(self, shift: u32, mask: u64) -> u32 {
        (self.checked_shr(shift).unwrap_or(0) as u64 & mask) as u32
    }
    #[inline(always)]
    fn agrees_through(self, other: Self, shift: u32) -> bool {
        (self ^ other).checked_shr(shift).unwrap_or(0) == 0
    }
}

/// The packed coordinate stream, width chosen at build time.
pub enum AltoStream {
    /// Total index width ≤ 64 bits (the common case).
    U64(Vec<u64>),
    /// Total index width in 65..=128 bits.
    U128(Vec<u128>),
}

impl AltoStream {
    /// Stream length (== nnz).
    pub fn len(&self) -> usize {
        match self {
            AltoStream::U64(w) => w.len(),
            AltoStream::U128(w) => w.len(),
        }
    }

    /// Is the stream empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes per packed word.
    pub fn word_bytes(&self) -> usize {
        match self {
            AltoStream::U64(_) => std::mem::size_of::<u64>(),
            AltoStream::U128(_) => std::mem::size_of::<u128>(),
        }
    }
}

/// The first tree level whose coordinate field differs between adjacent
/// stream words — i.e. the shallowest fiber the word at `cur` opens,
/// exactly mirroring CSF's per-stream `open_level`. Duplicate
/// coordinates open only a new leaf (`shifts.len() - 1`).
#[inline]
pub fn open_level<W: AltoWord>(prev: W, cur: W, shifts: &[u32]) -> usize {
    for (l, &s) in shifts.iter().enumerate() {
        if !prev.agrees_through(cur, s) {
            return l;
        }
    }
    shifts.len() - 1
}

/// Bits needed to address `dim` distinct indices (`0` for a singleton
/// mode — its only index is 0 and needs no bits).
fn index_bits(dim: usize) -> u32 {
    if dim <= 1 {
        0
    } else {
        usize::BITS - (dim - 1).leading_zeros()
    }
}

/// A sparse tensor in ALTO form: one sorted stream of bit-packed
/// linearized coordinates plus the parallel value array, shared by every
/// mode's MTTKRP kernel.
pub struct AltoTensor {
    dims: Vec<usize>,
    /// Level → original mode: shortest mode first, rest by ascending
    /// dimension (ties by mode index) — the CSF `One` tree's ordering.
    dim_perm: Vec<usize>,
    /// Field width per level.
    bits: Vec<u32>,
    /// Bit offset of each level's field inside the packed word
    /// (level 0 is most significant, the leaf level sits at shift 0).
    shifts: Vec<u32>,
    /// Field mask per level (`(1 << bits) - 1`).
    masks: Vec<u64>,
    stream: AltoStream,
    vals: Vec<f64>,
    /// Stream offsets where the root coordinate changes
    /// (`nslices + 1` entries) — the alignment grid for partitioning.
    slice_ptr: Vec<usize>,
    /// Nonzeros under each root slice (parallel to `slice_ptr` gaps).
    slice_nnz: Vec<usize>,
}

impl AltoTensor {
    /// The linearization mode order for these dims: every mode sorted by
    /// ascending `(dimension, mode)`. Matches the CSF `One` allocation's
    /// tree permutation, so the two formats share fiber structure.
    pub fn mode_perm(dims: &[usize]) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..dims.len()).collect();
        perm.sort_by_key(|&m| (dims[m], m));
        perm
    }

    /// Total packed bits for these dims.
    pub fn packed_bits(dims: &[usize]) -> u32 {
        dims.iter().map(|&d| index_bits(d)).sum()
    }

    /// Can these dims be linearized (≤ 128 total index bits)?
    pub fn fits(dims: &[usize]) -> bool {
        Self::packed_bits(dims) <= 128
    }

    /// Build from `tensor`: copy, sort by [`AltoTensor::mode_perm`] (the
    /// paper's "Sort" routine — the identical deterministic sort CSF
    /// construction uses, so tie order matches the CSF oracle), then
    /// pack the stream.
    ///
    /// # Panics
    /// Panics if the dims need more than 128 linearization bits
    /// (use [`AltoTensor::fits`] to pre-check).
    pub fn build(tensor: &SparseTensor, team: &TaskTeam, variant: SortVariant) -> Self {
        Self::build_guarded(tensor, team, variant, None)
    }

    /// [`AltoTensor::build`] under run governance: the sort polls
    /// `guard` between buckets. A cancelled build returns a structurally
    /// valid but empty tensor; the caller's next guard check aborts
    /// before it is consumed.
    ///
    /// # Panics
    /// As [`AltoTensor::build`].
    pub fn build_guarded(
        tensor: &SparseTensor,
        team: &TaskTeam,
        variant: SortVariant,
        guard: Option<&splatt_guard::RunGuard>,
    ) -> Self {
        assert!(!tensor.dims().is_empty(), "ALTO needs at least one mode");
        assert!(
            Self::fits(tensor.dims()),
            "ALTO linearization needs {} bits, more than the 128 supported — use CSF",
            Self::packed_bits(tensor.dims())
        );
        let dim_perm = Self::mode_perm(tensor.dims());
        let mut sorted = tensor.clone();
        sort::sort_by_perm_guarded(&mut sorted, &dim_perm, team, variant, guard);
        if guard.is_some_and(|g| g.is_cancelled()) && !sorted.is_sorted_by(&dim_perm) {
            let empty = SparseTensor::new(tensor.dims().to_vec());
            return Self::from_sorted(&empty, dim_perm);
        }
        Self::from_sorted(&sorted, dim_perm)
    }

    /// Pack an already `dim_perm`-sorted tensor.
    fn from_sorted(sorted: &SparseTensor, dim_perm: Vec<usize>) -> Self {
        debug_assert!(
            sorted.is_sorted_by(&dim_perm),
            "tensor must be pre-sorted by the linearization perm"
        );
        let order = sorted.order();
        let nnz = sorted.nnz();
        let dims = sorted.dims().to_vec();

        let bits: Vec<u32> = dim_perm.iter().map(|&m| index_bits(dims[m])).collect();
        let mut shifts = vec![0u32; order];
        for l in (0..order - 1).rev() {
            shifts[l] = shifts[l + 1] + bits[l + 1];
        }
        let masks: Vec<u64> = bits
            .iter()
            .map(|&b| if b == 0 { 0 } else { (1u64 << b) - 1 })
            .collect();
        let total_bits = shifts[0] + bits[0];

        let streams: Vec<&[u32]> = dim_perm.iter().map(|&m| sorted.ind(m)).collect();
        fn pack<W: AltoWord>(streams: &[&[u32]], shifts: &[u32], nnz: usize) -> Vec<W> {
            (0..nnz)
                .map(|x| {
                    let mut w = W::ZERO;
                    for (s, &shift) in streams.iter().zip(shifts) {
                        w = w.or_field(s[x], shift);
                    }
                    w
                })
                .collect()
        }
        let stream = if total_bits <= 64 {
            AltoStream::U64(pack::<u64>(&streams, &shifts, nnz))
        } else {
            AltoStream::U128(pack::<u128>(&streams, &shifts, nnz))
        };

        // root-slice grid: one entry per distinct leading coordinate
        let root = streams.first().copied().unwrap_or(&[]);
        let mut slice_ptr = Vec::new();
        slice_ptr.push(0);
        for x in 1..nnz {
            if root[x] != root[x - 1] {
                slice_ptr.push(x);
            }
        }
        if nnz > 0 {
            slice_ptr.push(nnz);
        }
        let slice_nnz: Vec<usize> = slice_ptr.windows(2).map(|w| w[1] - w[0]).collect();

        AltoTensor {
            dims,
            dim_perm,
            bits,
            shifts,
            masks,
            stream,
            vals: sorted.vals().to_vec(),
            slice_ptr,
            slice_nnz,
        }
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Original mode dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Linearization order: `dim_perm()[l]` is the original mode whose
    /// index occupies level `l` of the packed word.
    #[inline]
    pub fn dim_perm(&self) -> &[usize] {
        &self.dim_perm
    }

    /// The packed-word level holding original mode `m`.
    pub fn level_of_mode(&self, m: usize) -> usize {
        self.dim_perm
            .iter()
            .position(|&p| p == m)
            .expect("mode not present in this tensor")
    }

    /// Field bit widths per level.
    #[inline]
    pub fn bits(&self) -> &[u32] {
        &self.bits
    }

    /// Field bit offsets per level.
    #[inline]
    pub fn shifts(&self) -> &[u32] {
        &self.shifts
    }

    /// Field masks per level.
    #[inline]
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }

    /// The packed coordinate stream.
    #[inline]
    pub fn stream(&self) -> &AltoStream {
        &self.stream
    }

    /// Nonzero values in stream order.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Number of root slices (distinct leading coordinates present).
    #[inline]
    pub fn nslices(&self) -> usize {
        self.slice_nnz.len()
    }

    /// Stream offsets of the root-slice boundaries (`nslices + 1`
    /// entries; empty-tensor streams carry the single offset 0).
    #[inline]
    pub fn slice_ptr(&self) -> &[usize] {
        &self.slice_ptr
    }

    /// Nonzeros under each root slice.
    #[inline]
    pub fn slice_nnz(&self) -> &[usize] {
        &self.slice_nnz
    }

    /// Coordinate of nonzero `x` at packed level `level` (i.e. in
    /// original mode `dim_perm()[level]`).
    pub fn coord(&self, x: usize, level: usize) -> u32 {
        let (shift, mask) = (self.shifts[level], self.masks[level]);
        match &self.stream {
            AltoStream::U64(w) => w[x].field(shift, mask),
            AltoStream::U128(w) => w[x].field(shift, mask),
        }
    }

    /// ALTO's recursive coordinate-space partitioning: split the stream
    /// into `nparts` contiguous spans of balanced nonzero count whose
    /// boundaries are aligned to root-slice boundaries (so the root
    /// kernel needs no synchronization). Returns `nparts + 1` monotonic
    /// *slice-index* bounds; translate through [`AltoTensor::slice_ptr`]
    /// for stream offsets.
    pub fn partition(&self, nparts: usize) -> Vec<usize> {
        partition::recursive_weighted(&partition::prefix_sum(&self.slice_nnz), nparts)
    }

    /// Bytes held by this representation: the packed stream, the values,
    /// the slice grid, and the level tables — every owned array at its
    /// true element width (the `--mem-budget` accounting contract CSF's
    /// `storage_bytes` follows).
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        self.stream.len() * self.stream.word_bytes()
            + self.vals.len() * size_of::<f64>()
            + self.slice_ptr.len() * size_of::<usize>()
            + self.slice_nnz.len() * size_of::<usize>()
            + self.dims.len() * size_of::<usize>()
            + self.dim_perm.len() * size_of::<usize>()
            + self.bits.len() * size_of::<u32>()
            + self.shifts.len() * size_of::<u32>()
            + self.masks.len() * size_of::<u64>()
    }

    /// Rebuild the coordinate tensor (for round-trip tests), entries in
    /// stream order.
    pub fn to_coo(&self) -> SparseTensor {
        let order = self.order();
        let nnz = self.nnz();
        let mut inds: Vec<Vec<u32>> = vec![vec![0; nnz]; order];
        for (l, &m) in self.dim_perm.iter().enumerate() {
            for (x, slot) in inds[m].iter_mut().enumerate() {
                *slot = self.coord(x, l);
            }
        }
        SparseTensor::from_parts(self.dims.clone(), inds, self.vals.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn team() -> TaskTeam {
        TaskTeam::new(2)
    }

    #[test]
    fn round_trips_coordinates_and_values() {
        let t = synth::power_law(&[30, 14, 40], 2_000, 1.8, 3);
        let a = AltoTensor::build(&t, &team(), SortVariant::AllOpts);
        assert_eq!(a.nnz(), t.nnz());
        assert_eq!(a.to_coo().canonical_entries(), t.canonical_entries());
    }

    #[test]
    fn mode_perm_is_shortest_first() {
        assert_eq!(AltoTensor::mode_perm(&[40, 10, 70]), vec![1, 0, 2]);
        assert_eq!(AltoTensor::mode_perm(&[5, 5, 5]), vec![0, 1, 2]);
        assert_eq!(AltoTensor::mode_perm(&[9, 2, 9, 4]), vec![1, 3, 0, 2]);
    }

    #[test]
    fn packing_matches_extraction() {
        let t = SparseTensor::from_entries(
            vec![4, 3, 5],
            &[
                (vec![2, 1, 4], 1.5),
                (vec![0, 0, 0], 1.0),
                (vec![3, 2, 1], 4.0),
            ],
        );
        let a = AltoTensor::build(&t, &team(), SortVariant::AllOpts);
        // sorted by perm [1, 0, 2] (dims 3, 4, 5)
        for x in 0..a.nnz() {
            for l in 0..a.order() {
                let m = a.dim_perm()[l];
                assert!(u64::from(a.coord(x, l)) <= a.masks()[l], "mode {m}");
            }
        }
        assert_eq!(a.to_coo().canonical_entries(), t.canonical_entries());
    }

    #[test]
    fn wide_dims_take_the_u128_stream() {
        // 5 modes x 15 bits = 75 bits > 64: must pack into u128
        let dims = vec![20_000usize; 5];
        let t = SparseTensor::from_entries(
            dims.clone(),
            &[
                (vec![19_999, 0, 5, 19_998, 7], 2.0),
                (vec![0, 1, 2, 3, 4], -1.0),
                (vec![19_999, 0, 5, 19_998, 6], 0.5),
            ],
        );
        assert_eq!(AltoTensor::packed_bits(&dims), 75);
        let a = AltoTensor::build(&t, &team(), SortVariant::AllOpts);
        assert!(matches!(a.stream(), AltoStream::U128(_)));
        assert_eq!(a.to_coo().canonical_entries(), t.canonical_entries());
    }

    #[test]
    fn singleton_modes_need_no_bits() {
        let t = SparseTensor::from_entries(
            vec![1, 6, 1, 4],
            &[(vec![0, 3, 0, 2], 1.0), (vec![0, 5, 0, 0], 2.0)],
        );
        let a = AltoTensor::build(&t, &team(), SortVariant::AllOpts);
        assert_eq!(AltoTensor::packed_bits(&[1, 6, 1, 4]), 5);
        assert_eq!(a.to_coo().canonical_entries(), t.canonical_entries());
    }

    #[test]
    fn empty_tensor_builds() {
        let t = SparseTensor::new(vec![3, 4, 5]);
        let a = AltoTensor::build(&t, &team(), SortVariant::AllOpts);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.nslices(), 0);
        assert_eq!(a.partition(3), vec![0, 0, 0, 0]);
        assert_eq!(a.to_coo().nnz(), 0);
    }

    #[test]
    fn slice_grid_counts_distinct_root_coordinates() {
        let t = SparseTensor::from_entries(
            vec![10, 3, 10],
            &[
                (vec![4, 1, 2], 1.0),
                (vec![7, 1, 0], 2.0),
                (vec![1, 1, 9], 3.0),
                (vec![3, 1, 3], 4.0),
            ],
        );
        // mode 1 (dim 3) roots the perm; all nonzeros share root coord 1
        let a = AltoTensor::build(&t, &team(), SortVariant::AllOpts);
        assert_eq!(a.dim_perm()[0], 1);
        assert_eq!(a.nslices(), 1);
        assert_eq!(a.slice_nnz(), &[4]);
        assert_eq!(a.slice_ptr(), &[0, 4]);
    }

    #[test]
    fn partition_aligns_to_slices_and_covers() {
        let t = synth::power_law(&[50, 20, 60], 3_000, 1.9, 11);
        let a = AltoTensor::build(&t, &team(), SortVariant::AllOpts);
        for nparts in [1usize, 2, 3, 7] {
            let b = a.partition(nparts);
            assert_eq!(b.len(), nparts + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), a.nslices());
            for k in 1..b.len() {
                assert!(b[k] >= b[k - 1]);
            }
            let covered: usize = (0..nparts)
                .map(|p| a.slice_ptr()[b[p + 1]] - a.slice_ptr()[b[p]])
                .sum();
            assert_eq!(covered, a.nnz());
        }
    }

    #[test]
    fn open_level_mirrors_csf_semantics() {
        let shifts = [10u32, 4, 0];
        let pack = |a: u64, b: u64, c: u64| (a << 10) | (b << 4) | c;
        // root change opens everything
        assert_eq!(open_level(pack(1, 2, 3), pack(2, 2, 3), &shifts), 0);
        // middle change opens levels 1..
        assert_eq!(open_level(pack(1, 2, 3), pack(1, 3, 3), &shifts), 1);
        // leaf change opens only the leaf
        assert_eq!(open_level(pack(1, 2, 3), pack(1, 2, 4), &shifts), 2);
        // duplicate coordinate still opens a fresh leaf
        assert_eq!(open_level(pack(1, 2, 3), pack(1, 2, 3), &shifts), 2);
    }

    #[test]
    fn storage_counts_every_owned_array() {
        let t = synth::random_uniform(&[16, 12, 20], 500, 5);
        let a = AltoTensor::build(&t, &team(), SortVariant::AllOpts);
        let floor = a.nnz() * (8 + 8); // stream words + values
        assert!(a.storage_bytes() >= floor);
    }

    #[test]
    #[should_panic(expected = "more than the 128 supported")]
    fn oversized_dims_panic() {
        // 5 modes near the u32 ceiling: 5 * 32 = 160 bits
        let dims = vec![u32::MAX as usize; 5];
        let t = SparseTensor::new(dims);
        let _ = AltoTensor::build(&t, &team(), SortVariant::AllOpts);
    }
}
