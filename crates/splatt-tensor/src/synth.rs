//! Synthetic tensors shaped like the paper's data sets.
//!
//! The five data sets in Table I are multi-gigabyte external downloads
//! (Yelp Dataset Challenge, NELL, Netflix, …) that cannot be assumed
//! present, so we synthesize stand-ins. What must be preserved is not the
//! values but the *shape statistics the paper's behaviour depends on*:
//!
//! * mode dimensions and nonzero count — these set the
//!   `dim[mode] * nthreads / nnz` ratio that decides privatization vs.
//!   locks in the MTTKRP (the entire YELP-vs-NELL-2 contrast of Section
//!   V-D.2). The ratio is invariant under uniform scaling of `dims` and
//!   `nnz`, so scaled-down instances reproduce the same lock decisions at
//!   the same task counts.
//! * index skew — real review/knowledge tensors are power-law distributed,
//!   which drives load imbalance in slice-partitioned kernels. Generators
//!   draw indices from a tunable power-law marginal.

use crate::SparseTensor;
use splatt_rt::rng::{RngExt, SeedableRng, StdRng};

/// Shape parameters of one of the paper's data sets (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetShape {
    /// Data set name as printed in Table I.
    pub name: &'static str,
    /// Full-scale mode dimensions from the paper.
    pub dims: [usize; 3],
    /// Full-scale nonzero count from the paper.
    pub nnz: usize,
    /// Power-law skew exponent for index marginals (1.0 = uniform);
    /// larger values concentrate nonzeros in low indices.
    pub skew: f64,
}

/// YELP: 41k x 11k x 75k, 8M nonzeros. Small tensor whose *sparse modes*
/// force the MTTKRP onto the lock-based path beyond ~2 tasks.
pub const YELP: DatasetShape = DatasetShape {
    name: "YELP",
    dims: [41_000, 11_000, 75_000],
    nnz: 8_000_000,
    skew: 2.0,
};

/// RATE-BEER: 27k x 105k x 262k, 62M nonzeros.
pub const RATE_BEER: DatasetShape = DatasetShape {
    name: "RATE-BEER",
    dims: [27_000, 105_000, 262_000],
    nnz: 62_000_000,
    skew: 2.0,
};

/// BEER-ADVOCATE: 31k x 61k x 182k, 63M nonzeros.
pub const BEER_ADVOCATE: DatasetShape = DatasetShape {
    name: "BEER-ADVOCATE",
    dims: [31_000, 61_000, 182_000],
    nnz: 63_000_000,
    skew: 2.0,
};

/// NELL-2: 12k x 9k x 29k, 77M nonzeros. Dense-ish modes keep the MTTKRP
/// on the privatized (lock-free) path at every task count the paper runs.
pub const NELL2: DatasetShape = DatasetShape {
    name: "NELL-2",
    dims: [12_000, 9_000, 29_000],
    nnz: 77_000_000,
    skew: 1.5,
};

/// NETFLIX: 480k x 18k x 2k, 100M nonzeros.
pub const NETFLIX: DatasetShape = DatasetShape {
    name: "NETFLIX",
    dims: [480_000, 18_000, 2_000],
    nnz: 100_000_000,
    skew: 1.8,
};

/// All five Table I shapes, in table order.
pub const ALL_SHAPES: [DatasetShape; 5] = [YELP, RATE_BEER, BEER_ADVOCATE, NELL2, NETFLIX];

impl DatasetShape {
    /// Dimensions and nonzero count scaled by `scale` (each dimension and
    /// the nonzero count multiplied by `scale`, floored, clamped to ≥ 4
    /// and ≥ 16 respectively).
    ///
    /// Scaling `dims` and `nnz` by the same factor preserves the
    /// privatization ratio `dim * ntasks / nnz` exactly, so the lock
    /// decisions of the full-size data set survive scaling.
    pub fn scaled(&self, scale: f64) -> (Vec<usize>, usize) {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        let dims = self
            .dims
            .iter()
            .map(|&d| (((d as f64) * scale) as usize).max(4))
            .collect();
        let nnz = (((self.nnz as f64) * scale) as usize).max(16);
        (dims, nnz)
    }

    /// Generate a synthetic instance at `scale` (1.0 = paper size).
    pub fn generate(&self, scale: f64, seed: u64) -> SparseTensor {
        let (dims, nnz) = self.scaled(scale);
        power_law(&dims, nnz, self.skew, seed)
    }
}

/// Draw one power-law index in `0..dim`: `floor(dim * u^alpha)` for
/// uniform `u`. `alpha = 1` is uniform; larger `alpha` piles probability
/// onto low indices (short-head heavy, long-tail light — the shape of
/// review and knowledge-base data).
fn power_index(rng: &mut StdRng, dim: usize, alpha: f64) -> u32 {
    let u: f64 = rng.random();
    let idx = (dim as f64 * u.powf(alpha)) as usize;
    idx.min(dim - 1) as u32
}

/// Random sparse tensor with uniform index marginals and values in
/// `[0.5, 1.5)`. Duplicate coordinates possible (harmless for CP-ALS).
pub fn random_uniform(dims: &[usize], nnz: usize, seed: u64) -> SparseTensor {
    power_law(dims, nnz, 1.0, seed)
}

/// Random sparse tensor with power-law index marginals (exponent `alpha`
/// per mode) and values in `[0.5, 1.5)`.
///
/// # Panics
/// Panics if any dimension is zero or `alpha <= 0`.
pub fn power_law(dims: &[usize], nnz: usize, alpha: f64, seed: u64) -> SparseTensor {
    assert!(alpha > 0.0, "power-law exponent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let order = dims.len();
    let mut inds: Vec<Vec<u32>> = vec![Vec::with_capacity(nnz); order];
    let mut vals: Vec<f64> = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        for (m, &d) in dims.iter().enumerate() {
            inds[m].push(power_index(&mut rng, d, alpha));
        }
        vals.push(0.5 + rng.random::<f64>());
    }
    SparseTensor::from_parts(dims.to_vec(), inds, vals)
}

/// A planted low-rank model: ground-truth factor matrices plus the sparse
/// tensor sampled from them. Used by recovery tests and the examples.
#[derive(Debug, Clone)]
pub struct PlantedModel {
    /// Ground-truth rank.
    pub rank: usize,
    /// One row-major `dims[m] x rank` factor per mode.
    pub factors: Vec<Vec<f64>>,
    /// Mode dimensions.
    pub dims: Vec<usize>,
}

impl PlantedModel {
    /// The model's value at a coordinate: `sum_r prod_m A_m[i_m, r]`.
    pub fn value_at(&self, coord: &[u32]) -> f64 {
        (0..self.rank)
            .map(|r| {
                coord
                    .iter()
                    .enumerate()
                    .map(|(m, &i)| self.factors[m][i as usize * self.rank + r])
                    .product::<f64>()
            })
            .sum()
    }
}

/// Sample a sparse tensor whose values follow a planted rank-`rank` model
/// with optional additive noise (`noise` = scale of a uniform
/// perturbation). Coordinates are sampled uniformly *without repetition*
/// (duplicate draws are discarded), so every stored entry equals the model
/// value plus its noise; the result may have slightly fewer than `nnz`
/// entries when the requested count approaches the number of cells.
///
/// Returns the tensor and the ground truth. CP-ALS on the result must
/// reach a fit near 1 when `noise == 0` — the core correctness experiment
/// for the whole stack.
pub fn planted_low_rank(
    dims: &[usize],
    rank: usize,
    nnz: usize,
    noise: f64,
    seed: u64,
) -> (SparseTensor, PlantedModel) {
    assert!(rank > 0, "rank must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .map(|&d| (0..d * rank).map(|_| 0.1 + rng.random::<f64>()).collect())
        .collect();
    let model = PlantedModel {
        rank,
        factors,
        dims: dims.to_vec(),
    };
    let mut tensor = SparseTensor::new(dims.to_vec());
    let mut seen = std::collections::HashSet::with_capacity(nnz);
    let mut coord = vec![0u32; dims.len()];
    let max_attempts = nnz.saturating_mul(20).max(64);
    let mut attempts = 0usize;
    while tensor.nnz() < nnz && attempts < max_attempts {
        attempts += 1;
        for (c, &d) in coord.iter_mut().zip(dims) {
            *c = rng.random_range(0..d as u32);
        }
        if !seen.insert(coord.clone()) {
            continue;
        }
        let v = model.value_at(&coord) + noise * (rng.random::<f64>() - 0.5);
        tensor.push(&coord, v);
    }
    (tensor, model)
}

/// A *fully dense* planted low-rank tensor: every cell of the rank-`rank`
/// model is stored as a nonzero (plus optional uniform noise). Unlike
/// [`planted_low_rank`] — whose unsampled cells are implicit zeros and
/// therefore break exact low-rankness — the result here is exactly
/// rank-`rank` when `noise == 0`, so CP-ALS must drive the fit to 1.
/// Intended for small dims (the cell count is `prod(dims)`).
pub fn planted_dense(
    dims: &[usize],
    rank: usize,
    noise: f64,
    seed: u64,
) -> (SparseTensor, PlantedModel) {
    assert!(rank > 0, "rank must be positive");
    let cells: usize = dims.iter().product();
    assert!(cells <= 1 << 24, "planted_dense is for small tensors");
    let mut rng = StdRng::seed_from_u64(seed);
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .map(|&d| (0..d * rank).map(|_| 0.1 + rng.random::<f64>()).collect())
        .collect();
    let model = PlantedModel {
        rank,
        factors,
        dims: dims.to_vec(),
    };
    let mut tensor = SparseTensor::new(dims.to_vec());
    let mut coord = vec![0u32; dims.len()];
    for cell in 0..cells {
        let mut rest = cell;
        for (c, &d) in coord.iter_mut().zip(dims).rev() {
            *c = (rest % d) as u32;
            rest /= d;
        }
        let v = model.value_at(&coord) + noise * (rng.random::<f64>() - 0.5);
        tensor.push(&coord, v);
    }
    (tensor, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table1() {
        assert_eq!(YELP.dims, [41_000, 11_000, 75_000]);
        assert_eq!(YELP.nnz, 8_000_000);
        assert_eq!(NELL2.dims, [12_000, 9_000, 29_000]);
        assert_eq!(NELL2.nnz, 77_000_000);
        assert_eq!(ALL_SHAPES.len(), 5);
    }

    #[test]
    fn scaling_preserves_privatization_ratio() {
        // middle mode (sorted dims) over nnz — the quantity SPLATT's
        // privatization heuristic divides
        let ratio = |dims: &[usize], nnz: usize| {
            let mut d = dims.to_vec();
            d.sort_unstable();
            d[1] as f64 / nnz as f64
        };
        let full = ratio(&YELP.dims, YELP.nnz);
        let (dims, nnz) = YELP.scaled(1.0 / 32.0);
        let scaled = ratio(&dims, nnz);
        assert!((full - scaled).abs() / full < 0.05, "{full} vs {scaled}");
    }

    #[test]
    fn generate_respects_scaled_size() {
        let t = YELP.generate(1.0 / 1000.0, 42);
        let (dims, nnz) = YELP.scaled(1.0 / 1000.0);
        assert_eq!(t.dims(), &dims[..]);
        assert_eq!(t.nnz(), nnz);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NELL2.generate(1.0 / 5000.0, 7);
        let b = NELL2.generate(1.0 / 5000.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn power_law_skews_toward_low_indices() {
        let dims = vec![1000, 1000];
        let t = power_law(&dims, 20_000, 3.0, 1);
        let low = t.ind(0).iter().filter(|&&i| i < 100).count();
        // with alpha=3, P(idx < dim/10) = 0.1^(1/3) ≈ 0.46 >> 0.1
        assert!(low > 5_000, "low-index count {low} not skewed");
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let dims = vec![1000, 1000];
        let t = random_uniform(&dims, 50_000, 2);
        let low = t.ind(0).iter().filter(|&&i| i < 100).count();
        assert!((3_000..7_000).contains(&low), "low-index count {low}");
    }

    #[test]
    fn all_indices_in_range() {
        let t = power_law(&[17, 5, 9], 1000, 2.5, 3);
        for m in 0..3 {
            assert!(t.ind(m).iter().all(|&i| (i as usize) < t.dims()[m]));
        }
    }

    #[test]
    fn planted_model_values_match_factors() {
        let (tensor, model) = planted_low_rank(&[6, 7, 8], 3, 50, 0.0, 11);
        for x in 0..tensor.nnz() {
            let coord = tensor.coord(x);
            assert!(
                (tensor.vals()[x] - model.value_at(&coord)).abs() < 1e-12,
                "entry {x} disagrees with planted model"
            );
        }
    }

    #[test]
    fn planted_model_is_coalesced() {
        let (tensor, _) = planted_low_rank(&[3, 3, 3], 2, 200, 0.0, 4);
        let entries = tensor.canonical_entries();
        for w in entries.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate coordinate survived coalesce");
        }
    }

    #[test]
    fn planted_dense_covers_every_cell() {
        let (tensor, model) = planted_dense(&[3, 4, 5], 2, 0.0, 13);
        assert_eq!(tensor.nnz(), 60);
        let entries = tensor.canonical_entries();
        for w in entries.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate cell");
        }
        for x in 0..tensor.nnz() {
            let coord = tensor.coord(x);
            assert!((tensor.vals()[x] - model.value_at(&coord)).abs() < 1e-12);
        }
    }

    #[test]
    fn planted_noise_perturbs_values() {
        let (clean, _) = planted_low_rank(&[5, 5, 5], 2, 60, 0.0, 9);
        let (noisy, model) = planted_low_rank(&[5, 5, 5], 2, 60, 0.5, 9);
        let _ = clean;
        let mut max_dev: f64 = 0.0;
        for x in 0..noisy.nnz() {
            let coord = noisy.coord(x);
            max_dev = max_dev.max((noisy.vals()[x] - model.value_at(&coord)).abs());
        }
        assert!(max_dev > 0.01, "noise had no effect");
    }
}
