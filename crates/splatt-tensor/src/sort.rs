//! The pre-processing tensor sort (the paper's "Sort" routine).
//!
//! SPLATT sorts the nonzeros lexicographically by a mode permutation
//! before building CSF: a parallel counting sort buckets nonzeros by the
//! leading mode, then a recursive quicksort orders each bucket by the
//! remaining modes. Section V-C of the Chapel-port paper finds two
//! bottlenecks in the naive port and fixes them for an ~8x total win
//! (Figure 1):
//!
//! 1. **Array-opt** — the quicksort partition step declared a local
//!    two-element array per recursive call (46 million allocations on
//!    NELL-2); the fix uses scalar locals.
//! 2. **Slices-opt** — moving the counting-sorted buffers back into the
//!    tensor was written with array-slice assignment, which *copies* in
//!    Chapel where C reassigns pointers; the fix swaps buffer ownership.
//!
//! Both defects are reproduced faithfully as [`SortVariant`] knobs:
//! `Initial` = both defects, `ArrayOpt` / `SlicesOpt` = one fix each,
//! `AllOpts` = both fixes (the shipping configuration).

use crate::SparseTensor;
use splatt_par::{partition, TaskTeam};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Process-wide count of sorts skipped by the already-strictly-sorted
/// fast path (see [`sort_by_perm_guarded`]) — surfaced in the probe
/// refresh row so incremental CSF/ALTO rebuilds can prove they reused
/// the canonical order instead of re-sorting.
static SORTS_SKIPPED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the skipped-sort counter.
pub fn sorts_skipped() -> u64 {
    SORTS_SKIPPED.load(AtomicOrdering::Relaxed)
}

/// `true` if the tensor is *strictly* sorted by `perm` — every adjacent
/// pair strictly increasing, so no duplicate coordinates. Strictness is
/// what makes skipping the sort safe: with exact duplicates a re-sort
/// could permute their values and break bit-identity.
fn is_strictly_sorted_by(tt: &SparseTensor, perm: &[usize]) -> bool {
    (1..tt.nnz()).all(|x| {
        for &m in perm {
            match tt.ind(m)[x - 1].cmp(&tt.ind(m)[x]) {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => continue,
            }
        }
        false // exact duplicate coordinate
    })
}

/// Which combination of the paper's two sorting fixes to apply
/// (Figure 1's four series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortVariant {
    /// Unoptimized port: per-call allocations in the quicksort partition
    /// *and* copy-based buffer reassignment.
    Initial,
    /// Allocation-free partition, copy-based reassignment.
    ArrayOpt,
    /// Per-call allocations, swap-based (pointer-style) reassignment.
    SlicesOpt,
    /// Both fixes — the final configuration.
    #[default]
    AllOpts,
}

impl SortVariant {
    /// All variants in Figure 1's legend order.
    pub const ALL: [SortVariant; 4] = [
        SortVariant::Initial,
        SortVariant::ArrayOpt,
        SortVariant::SlicesOpt,
        SortVariant::AllOpts,
    ];

    /// Legend label as printed in Figure 1.
    pub fn label(self) -> &'static str {
        match self {
            SortVariant::Initial => "Initial",
            SortVariant::ArrayOpt => "Array-opt",
            SortVariant::SlicesOpt => "Slices-opt",
            SortVariant::AllOpts => "All-opts",
        }
    }

    /// Does the quicksort partition allocate a small array per call?
    fn alloc_in_partition(self) -> bool {
        matches!(self, SortVariant::Initial | SortVariant::SlicesOpt)
    }

    /// Is the post-counting-sort buffer handoff a copy (vs. a swap)?
    fn copy_buffers(self) -> bool {
        matches!(self, SortVariant::Initial | SortVariant::ArrayOpt)
    }
}

/// Sort the tensor's nonzeros lexicographically by the mode permutation
/// `perm` (`perm[0]` is the primary key), in parallel on `team`.
///
/// This is SPLATT's `tt_sort`: counting sort on the primary mode, then a
/// per-bucket multi-key quicksort on the remaining modes, with buckets
/// distributed across tasks weighted by nonzero count.
///
/// ```
/// use splatt_par::TaskTeam;
/// use splatt_tensor::{sort, SortVariant, SparseTensor};
///
/// let mut t = SparseTensor::from_entries(
///     vec![3, 3, 3],
///     &[(vec![2, 0, 0], 1.0), (vec![0, 1, 0], 2.0), (vec![0, 0, 2], 3.0)],
/// );
/// let team = TaskTeam::new(2);
/// sort::sort_by_perm(&mut t, &[0, 1, 2], &team, SortVariant::AllOpts);
/// assert!(t.is_sorted_by(&[0, 1, 2]));
/// assert_eq!(t.vals(), &[3.0, 2.0, 1.0]);
/// ```
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..order`.
pub fn sort_by_perm(tt: &mut SparseTensor, perm: &[usize], team: &TaskTeam, variant: SortVariant) {
    sort_by_perm_guarded(tt, perm, team, variant, None);
}

/// [`sort_by_perm`] under run governance: each task polls `guard`
/// between buckets in the quicksort phase and bails out early once the
/// run is cancelled. The sort stays infallible — a cancelled sort simply
/// leaves the tensor partially sorted, and the driver's next full guard
/// check turns the cancellation into a typed abort before the result is
/// used.
pub fn sort_by_perm_guarded(
    tt: &mut SparseTensor,
    perm: &[usize],
    team: &TaskTeam,
    variant: SortVariant,
    guard: Option<&splatt_guard::RunGuard>,
) {
    let order = tt.order();
    assert_eq!(perm.len(), order, "perm must cover every mode");
    {
        let mut seen = vec![false; order];
        for &m in perm {
            assert!(m < order && !seen[m], "perm must be a permutation of modes");
            seen[m] = true;
        }
    }
    let nnz = tt.nnz();
    if nnz <= 1 {
        return;
    }

    // Fast path for incremental rebuilds: a tensor already strictly
    // sorted by `perm` (the canonical form `merge_entries` maintains)
    // needs no work — skip straight to CSF/ALTO construction.
    if is_strictly_sorted_by(tt, perm) {
        SORTS_SKIPPED.fetch_add(1, AtomicOrdering::Relaxed);
        return;
    }

    let primary = perm[0];
    let dim_primary = tt.dims()[primary];

    // ---- phase 1: parallel counting sort on the primary mode ----
    let slice_starts = counting_sort(tt, primary, dim_primary, team, variant);

    // ---- phase 2: per-bucket quicksort on the remaining modes ----
    if order == 1 {
        return;
    }
    let ntasks = team.ntasks();

    // bucket sizes -> weighted task boundaries (SPLATT hands each task a
    // contiguous run of buckets carrying ~nnz/ntasks nonzeros)
    let bucket_sizes: Vec<usize> = slice_starts.windows(2).map(|w| w[1] - w[0]).collect();
    let prefix = partition::prefix_sum(&bucket_sizes);
    let task_buckets = partition::weighted(&prefix, ntasks);

    let (inds, vals) = tt.parts_mut();
    // Secondary key arrays in comparison order.
    let mut keys: Vec<&mut Vec<u32>> = Vec::with_capacity(order - 1);
    {
        // pull out mutable references to the secondary-mode arrays in perm
        // order without aliasing: take them one at a time via split
        let mut remaining: Vec<Option<&mut Vec<u32>>> = inds.iter_mut().map(Some).collect();
        for &m in &perm[1..] {
            keys.push(remaining[m].take().expect("mode taken twice"));
        }
    }

    // Split every array into per-task element ranges at bucket boundaries
    // so tasks own disjoint memory.
    let elem_bounds: Vec<usize> = task_buckets.iter().map(|&b| slice_starts[b]).collect();

    struct TaskSeg<'a> {
        keys: Vec<&'a mut [u32]>,
        vals: &'a mut [f64],
        /// bucket element offsets relative to this segment's start
        buckets: Vec<usize>,
    }

    let mut segs: Vec<TaskSeg<'_>> = Vec::with_capacity(ntasks);
    {
        let mut key_rests: Vec<&mut [u32]> = keys.iter_mut().map(|k| k.as_mut_slice()).collect();
        let mut val_rest: &mut [f64] = vals.as_mut_slice();
        let mut consumed = 0usize;
        for t in 0..ntasks {
            let take = elem_bounds[t + 1] - elem_bounds[t];
            let mut seg_keys = Vec::with_capacity(key_rests.len());
            for kr in key_rests.iter_mut() {
                let (head, tail) = std::mem::take(kr).split_at_mut(take);
                *kr = tail;
                seg_keys.push(head);
            }
            let (vhead, vtail) = std::mem::take(&mut val_rest).split_at_mut(take);
            val_rest = vtail;
            let buckets = slice_starts[task_buckets[t]..=task_buckets[t + 1]]
                .iter()
                .map(|&s| s - consumed)
                .collect();
            consumed += take;
            segs.push(TaskSeg {
                keys: seg_keys,
                vals: vhead,
                buckets,
            });
        }
    }

    let segs: Vec<splatt_rt::sync::Mutex<TaskSeg<'_>>> =
        segs.into_iter().map(splatt_rt::sync::Mutex::new).collect();
    team.coforall(|tid| {
        let mut seg = segs[tid].lock();
        let seg = &mut *seg;
        let nbuckets = seg.buckets.len().saturating_sub(1);
        for b in 0..nbuckets {
            if let Some(g) = guard {
                if g.poll(tid) {
                    break;
                }
            }
            let lo = seg.buckets[b];
            let hi = seg.buckets[b + 1];
            if hi - lo > 1 {
                quicksort_multi(&mut seg.keys, seg.vals, lo, hi, variant);
            }
        }
    });
}

/// Convenience wrapper: sort for CSF construction rooted at `mode`
/// (primary key `mode`, remaining modes in ascending order — SPLATT's
/// default tie order).
pub fn sort_for_mode(tt: &mut SparseTensor, mode: usize, team: &TaskTeam, variant: SortVariant) {
    let order = tt.order();
    let mut perm = Vec::with_capacity(order);
    perm.push(mode);
    perm.extend((0..order).filter(|&m| m != mode));
    sort_by_perm(tt, &perm, team, variant);
}

/// Parallel counting sort of all index/value arrays by mode `primary`.
/// Returns the `dim + 1` bucket start offsets.
fn counting_sort(
    tt: &mut SparseTensor,
    primary: usize,
    dim: usize,
    team: &TaskTeam,
    variant: SortVariant,
) -> Vec<usize> {
    let nnz = tt.nnz();
    let ntasks = team.ntasks();
    let order = tt.order();

    // per-task histograms over the task's block of nonzeros
    let mut task_counts: Vec<Vec<usize>> = vec![Vec::new(); ntasks];
    {
        let key = tt.ind(primary);
        let slots: Vec<splatt_rt::sync::Mutex<&mut Vec<usize>>> = task_counts
            .iter_mut()
            .map(splatt_rt::sync::Mutex::new)
            .collect();
        team.coforall(|tid| {
            let mut counts = vec![0usize; dim];
            for x in partition::block(nnz, ntasks, tid) {
                counts[key[x] as usize] += 1;
            }
            **slots[tid].lock() = counts;
        });
    }

    // bucket starts and per-(task, slice) scatter offsets
    let mut slice_starts = vec![0usize; dim + 1];
    for s in 0..dim {
        let total: usize = task_counts.iter().map(|c| c[s]).sum();
        slice_starts[s + 1] = slice_starts[s] + total;
    }
    // task_offsets[t][s] = first output position task t writes in slice s
    let mut task_offsets: Vec<Vec<usize>> = vec![vec![0usize; dim]; ntasks];
    for s in 0..dim {
        let mut off = slice_starts[s];
        for t in 0..ntasks {
            task_offsets[t][s] = off;
            off += task_counts[t][s];
        }
    }

    // scatter into auxiliary buffers
    let mut aux_inds: Vec<Vec<u32>> = vec![vec![0u32; nnz]; order];
    let mut aux_vals: Vec<f64> = vec![0.0; nnz];
    {
        /// Shared writable view; tasks write disjoint positions.
        struct Scatter {
            inds: Vec<*mut u32>,
            vals: *mut f64,
        }
        // SAFETY: per-(task, slice) output ranges are disjoint by
        // construction of `task_offsets`, and each task writes each of its
        // input positions exactly once, so no two tasks ever write the
        // same element.
        unsafe impl Send for Scatter {}
        unsafe impl Sync for Scatter {}

        let scatter = Scatter {
            inds: aux_inds.iter_mut().map(|v| v.as_mut_ptr()).collect(),
            vals: aux_vals.as_mut_ptr(),
        };
        let src_inds: Vec<&[u32]> = (0..order).map(|m| tt.ind(m)).collect();
        let src_vals = tt.vals();
        let offsets: Vec<splatt_rt::sync::Mutex<Vec<usize>>> = task_offsets
            .into_iter()
            .map(splatt_rt::sync::Mutex::new)
            .collect();

        // Capture the whole struct (not its raw-pointer fields, which the
        // 2021 disjoint-capture rules would otherwise pull out one by one,
        // bypassing the Send/Sync impls).
        let scatter = &scatter;
        team.coforall(|tid| {
            let mut off = offsets[tid].lock();
            for x in partition::block(nnz, ntasks, tid) {
                let s = src_inds[primary][x] as usize;
                let dst = off[s];
                off[s] += 1;
                // SAFETY: `dst` is within `0..nnz` and owned exclusively by
                // this (task, slice) pair; see Scatter's safety comment.
                unsafe {
                    for (m, src) in src_inds.iter().enumerate() {
                        *scatter.inds[m].add(dst) = src[x];
                    }
                    *scatter.vals.add(dst) = src_vals[x];
                }
            }
        });
    }

    // hand the sorted buffers back to the tensor: copy (Chapel-initial
    // slice assignment) or swap (C pointer reassignment)
    let (inds, vals) = tt.parts_mut();
    if variant.copy_buffers() {
        for (dst, src) in inds.iter_mut().zip(&aux_inds) {
            chapel_slice_assign(dst, src);
        }
        chapel_slice_assign(vals, &aux_vals);
    } else {
        for (dst, src) in inds.iter_mut().zip(aux_inds.iter_mut()) {
            std::mem::swap(dst, src);
        }
        std::mem::swap(vals, &mut aux_vals);
    }

    slice_starts
}

/// Element-wise buffer copy through a simulated Chapel array-view access
/// path.
///
/// Chapel's (pre-1.17) slice assignment walks an array-view descriptor —
/// per element it dereferences the view, applies the domain's stride map,
/// and bounds-checks — which is why the paper found it "contributed the
/// most to the sorting runtime" and got a 4x whole-sort win by replacing
/// it with pointer reassignment. A plain Rust `copy_from_slice` compiles
/// to `memcpy` and would erase the modeled behaviour entirely, so the
/// copy-based variants route through this accessor: a heap-allocated view
/// descriptor plus per-element stride arithmetic that `black_box` keeps
/// out of the vectorizer's reach.
fn chapel_slice_assign<T: Copy>(dst: &mut [T], src: &[T]) {
    assert_eq!(dst.len(), src.len(), "slice assignment length mismatch");
    // (offset, length, stride): the modeled domain/view descriptor
    let desc = std::hint::black_box(Box::new((0usize, src.len(), 1usize)));
    for i in 0..src.len() {
        let idx = view_index(&desc, i);
        dst[idx] = src[idx];
    }
}

/// One simulated array-view index computation: an out-of-line call (view
/// element access does not inline in the modeled Chapel) that chases the
/// descriptor and applies the stride map. Keeping this un-inlined is what
/// prevents the copy loop from collapsing into `memcpy`.
#[inline(never)]
fn view_index(desc: &(usize, usize, usize), i: usize) -> usize {
    let idx = desc.0 + i * desc.2;
    debug_assert!(idx < desc.1);
    std::hint::black_box(idx)
}

/// Below this segment length, fall back to insertion sort.
const INSERTION_THRESHOLD: usize = 16;

#[inline]
fn less(keys: &[&mut [u32]], a: usize, b: usize) -> bool {
    for k in keys {
        match k[a].cmp(&k[b]) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => continue,
        }
    }
    false
}

#[inline]
fn swap_entries(keys: &mut [&mut [u32]], vals: &mut [f64], a: usize, b: usize) {
    for k in keys.iter_mut() {
        k.swap(a, b);
    }
    vals.swap(a, b);
}

/// `true` if entry `x`'s keys are lexicographically below the pivot tuple.
#[inline]
fn below_pivot(keys: &[&mut [u32]], x: usize, pivot: &[u32]) -> bool {
    for (k, &p) in keys.iter().zip(pivot) {
        match k[x].cmp(&p) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => continue,
        }
    }
    false
}

/// Multi-key quicksort over parallel arrays on `lo..hi`.
///
/// The `variant` knob reproduces the paper's Array-opt finding: the
/// unoptimized path heap-allocates the pivot key tuple on every partition
/// call (the Chapel code's per-call local array), the optimized path keeps
/// it in a fixed-size stack buffer.
fn quicksort_multi(
    keys: &mut [&mut [u32]],
    vals: &mut [f64],
    lo: usize,
    hi: usize,
    variant: SortVariant,
) {
    if hi - lo <= INSERTION_THRESHOLD {
        insertion_sort(keys, vals, lo, hi);
        return;
    }

    // median-of-3 pivot selection, moved to position hi-1
    let mid = lo + (hi - lo) / 2;
    if less(keys, mid, lo) {
        swap_entries(keys, vals, mid, lo);
    }
    if less(keys, hi - 1, lo) {
        swap_entries(keys, vals, hi - 1, lo);
    }
    if less(keys, hi - 1, mid) {
        swap_entries(keys, vals, hi - 1, mid);
    }
    swap_entries(keys, vals, mid, hi - 1);
    let pivot_idx = hi - 1;

    // partition (Lomuto) against the pivot's key tuple
    let store = if variant.alloc_in_partition() {
        // Chapel-initial behaviour: a fresh heap allocation per call.
        let pivot: Vec<u32> = keys.iter().map(|k| k[pivot_idx]).collect();
        partition_range(keys, vals, lo, pivot_idx, &pivot)
    } else {
        // Optimized: pivot keys in a fixed stack buffer (scalar locals in
        // the paper's two-key case).
        let mut buf = [0u32; 8];
        if keys.len() <= buf.len() {
            for (b, k) in buf.iter_mut().zip(keys.iter()) {
                *b = k[pivot_idx];
            }
            let nkeys = keys.len();
            partition_range(keys, vals, lo, pivot_idx, &buf[..nkeys])
        } else {
            // pathological order (> 9 modes): allocation is unavoidable
            let pivot: Vec<u32> = keys.iter().map(|k| k[pivot_idx]).collect();
            partition_range(keys, vals, lo, pivot_idx, &pivot)
        }
    };
    swap_entries(keys, vals, store, pivot_idx);

    quicksort_multi(keys, vals, lo, store, variant);
    quicksort_multi(keys, vals, store + 1, hi, variant);
}

/// Lomuto partition of `lo..pivot_idx` against `pivot`; returns the final
/// pivot position.
#[inline]
fn partition_range(
    keys: &mut [&mut [u32]],
    vals: &mut [f64],
    lo: usize,
    pivot_idx: usize,
    pivot: &[u32],
) -> usize {
    let mut store = lo;
    for x in lo..pivot_idx {
        if below_pivot(keys, x, pivot) {
            swap_entries(keys, vals, store, x);
            store += 1;
        }
    }
    store
}

fn insertion_sort(keys: &mut [&mut [u32]], vals: &mut [f64], lo: usize, hi: usize) {
    for i in (lo + 1)..hi {
        let mut j = i;
        while j > lo && less(keys, j, j - 1) {
            swap_entries(keys, vals, j, j - 1);
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn check_sorted(tt: &SparseTensor, perm: &[usize]) {
        assert!(tt.is_sorted_by(perm), "tensor not sorted by {perm:?}");
    }

    fn sort_preserves_and_orders(variant: SortVariant, ntasks: usize) {
        let team = TaskTeam::new(ntasks);
        let mut tt = synth::power_law(&[40, 30, 50], 5_000, 1.7, 99);
        let before = tt.canonical_entries();
        for mode in 0..3 {
            sort_for_mode(&mut tt, mode, &team, variant);
            let mut perm = vec![mode];
            perm.extend((0..3).filter(|&m| m != mode));
            check_sorted(&tt, &perm);
            assert_eq!(tt.canonical_entries(), before, "entries changed");
        }
    }

    #[test]
    fn all_variants_sort_correctly_single_task() {
        for v in SortVariant::ALL {
            sort_preserves_and_orders(v, 1);
        }
    }

    #[test]
    fn all_variants_sort_correctly_multi_task() {
        for v in SortVariant::ALL {
            sort_preserves_and_orders(v, 4);
        }
    }

    #[test]
    fn sort_by_custom_perm() {
        let team = TaskTeam::new(2);
        let mut tt = synth::random_uniform(&[20, 20, 20], 2_000, 5);
        sort_by_perm(&mut tt, &[2, 0, 1], &team, SortVariant::AllOpts);
        check_sorted(&tt, &[2, 0, 1]);
    }

    #[test]
    fn sort_empty_and_singleton() {
        let team = TaskTeam::new(2);
        let mut empty = SparseTensor::new(vec![5, 5, 5]);
        sort_for_mode(&mut empty, 0, &team, SortVariant::AllOpts);
        assert_eq!(empty.nnz(), 0);

        let mut single = SparseTensor::from_entries(vec![5, 5, 5], &[(vec![4, 3, 2], 1.0)]);
        sort_for_mode(&mut single, 1, &team, SortVariant::Initial);
        assert_eq!(single.nnz(), 1);
        assert_eq!(single.coord(0), vec![4, 3, 2]);
    }

    #[test]
    fn sort_with_heavy_duplicate_keys() {
        // every nonzero in the same primary slice: exercises one giant
        // bucket through the quicksort
        let mut tt = SparseTensor::new(vec![4, 100, 100]);
        let mut state = 12345u64;
        for _ in 0..3_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = ((state >> 20) % 100) as u32;
            let k = ((state >> 40) % 100) as u32;
            tt.push(&[2, j, k], 1.0);
        }
        let before = tt.canonical_entries();
        let team = TaskTeam::new(3);
        sort_for_mode(&mut tt, 0, &team, SortVariant::AllOpts);
        check_sorted(&tt, &[0, 1, 2]);
        assert_eq!(tt.canonical_entries(), before);
    }

    #[test]
    fn sort_already_sorted_input() {
        let team = TaskTeam::new(2);
        let mut tt = synth::random_uniform(&[15, 15, 15], 1_000, 8);
        sort_for_mode(&mut tt, 0, &team, SortVariant::AllOpts);
        let snapshot = tt.clone();
        sort_for_mode(&mut tt, 0, &team, SortVariant::AllOpts);
        // Coordinate order is fully determined; values attached to
        // duplicate coordinates may legally permute among themselves.
        for m in 0..3 {
            assert_eq!(tt.ind(m), snapshot.ind(m), "mode {m} order changed");
        }
        assert_eq!(tt.canonical_entries(), snapshot.canonical_entries());
    }

    #[test]
    fn sort_reverse_sorted_input() {
        let mut tt = SparseTensor::new(vec![50, 50, 50]);
        for i in (0..50u32).rev() {
            for j in (0..10u32).rev() {
                tt.push(&[i, j, (i + j) % 50], (i + j) as f64);
            }
        }
        let before = tt.canonical_entries();
        let team = TaskTeam::new(4);
        sort_for_mode(&mut tt, 0, &team, SortVariant::ArrayOpt);
        check_sorted(&tt, &[0, 1, 2]);
        assert_eq!(tt.canonical_entries(), before);
    }

    #[test]
    fn variants_produce_identical_results() {
        let base = synth::power_law(&[25, 35, 45], 4_000, 2.0, 17);
        let team = TaskTeam::new(2);
        let mut reference = base.clone();
        sort_for_mode(&mut reference, 2, &team, SortVariant::AllOpts);
        for v in [
            SortVariant::Initial,
            SortVariant::ArrayOpt,
            SortVariant::SlicesOpt,
        ] {
            let mut t = base.clone();
            sort_for_mode(&mut t, 2, &team, v);
            // identical full ordering (the sort is deterministic up to
            // equal-key runs; compare coordinate streams)
            for m in 0..3 {
                assert_eq!(
                    t.ind(m),
                    reference.ind(m),
                    "variant {v:?} differs in mode {m}"
                );
            }
        }
    }

    #[test]
    fn four_mode_sort() {
        let team = TaskTeam::new(2);
        let mut tt = synth::random_uniform(&[8, 9, 10, 11], 2_000, 23);
        let before = tt.canonical_entries();
        sort_for_mode(&mut tt, 3, &team, SortVariant::AllOpts);
        check_sorted(&tt, &[3, 0, 1, 2]);
        assert_eq!(tt.canonical_entries(), before);
    }

    #[test]
    fn more_tasks_than_buckets() {
        let team = TaskTeam::new(8);
        let mut tt = synth::random_uniform(&[2, 30, 30], 500, 3);
        let before = tt.canonical_entries();
        sort_for_mode(&mut tt, 0, &team, SortVariant::AllOpts);
        check_sorted(&tt, &[0, 1, 2]);
        assert_eq!(tt.canonical_entries(), before);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_perm_panics() {
        let team = TaskTeam::new(1);
        let mut tt = SparseTensor::new(vec![2, 2, 2]);
        tt.push(&[0, 0, 0], 1.0);
        tt.push(&[1, 1, 1], 1.0);
        sort_by_perm(&mut tt, &[0, 0, 1], &team, SortVariant::AllOpts);
    }

    #[test]
    fn variant_flags_match_paper_matrix() {
        use SortVariant::*;
        assert!(Initial.alloc_in_partition() && Initial.copy_buffers());
        assert!(!ArrayOpt.alloc_in_partition() && ArrayOpt.copy_buffers());
        assert!(SlicesOpt.alloc_in_partition() && !SlicesOpt.copy_buffers());
        assert!(!AllOpts.alloc_in_partition() && !AllOpts.copy_buffers());
    }

    #[test]
    fn guarded_sort_with_clean_guard_matches_unguarded() {
        let team = TaskTeam::new(3);
        let mut a = synth::random_uniform(&[13, 9, 11], 400, 5);
        let mut b = a.clone();
        sort_by_perm(&mut a, &[1, 0, 2], &team, SortVariant::AllOpts);
        let guard = splatt_guard::RunGuard::unarmed();
        sort_by_perm_guarded(
            &mut b,
            &[1, 0, 2],
            &team,
            SortVariant::AllOpts,
            Some(&guard),
        );
        assert_eq!(a.canonical_entries(), b.canonical_entries());
        assert!(b.is_sorted_by(&[1, 0, 2]));
    }

    #[test]
    fn cancelled_sort_bails_without_panicking_and_preserves_entries() {
        let team = TaskTeam::new(3);
        let mut tt = synth::random_uniform(&[13, 9, 11], 400, 5);
        let before = tt.canonical_entries();
        let guard = splatt_guard::RunGuard::unarmed();
        guard.cancel();
        // The quicksort phase is skipped; the data is merely permuted,
        // never lost or corrupted.
        sort_by_perm_guarded(
            &mut tt,
            &[1, 0, 2],
            &team,
            SortVariant::AllOpts,
            Some(&guard),
        );
        assert_eq!(tt.canonical_entries(), before);
    }
}
