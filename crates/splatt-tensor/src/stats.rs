//! Data set summaries in the shape of the paper's Table I.

use crate::SparseTensor;
use std::fmt;

/// Summary statistics for a sparse tensor (the columns of Table I, plus a
/// couple of skew measures useful for interpreting load balance).
#[derive(Debug, Clone, PartialEq)]
pub struct TensorStats {
    /// Mode dimensions.
    pub dims: Vec<usize>,
    /// Stored nonzero count.
    pub nnz: usize,
    /// `nnz / prod(dims)`.
    pub density: f64,
    /// Approximate size of the COO representation in memory, in bytes
    /// (`order` u32 indices + one f64 value per nonzero). The paper's
    /// "Size on Disk" column is the text file; this is the loaded size.
    pub coo_bytes: usize,
    /// Per-mode maximum slice nonzero count (load-imbalance indicator).
    pub max_slice_nnz: Vec<usize>,
    /// Per-mode mean nonzero count over *nonempty* slices.
    pub mean_slice_nnz: Vec<f64>,
}

impl TensorStats {
    /// Compute statistics for `t`.
    pub fn compute(t: &SparseTensor) -> Self {
        let order = t.order();
        let mut max_slice_nnz = Vec::with_capacity(order);
        let mut mean_slice_nnz = Vec::with_capacity(order);
        for m in 0..order {
            let mut counts = vec![0usize; t.dims()[m]];
            for &i in t.ind(m) {
                counts[i as usize] += 1;
            }
            let max = counts.iter().copied().max().unwrap_or(0);
            let nonempty = counts.iter().filter(|&&c| c > 0).count();
            max_slice_nnz.push(max);
            mean_slice_nnz.push(if nonempty > 0 {
                t.nnz() as f64 / nonempty as f64
            } else {
                0.0
            });
        }
        TensorStats {
            dims: t.dims().to_vec(),
            nnz: t.nnz(),
            density: t.density(),
            coo_bytes: t.nnz() * (order * 4 + 8),
            max_slice_nnz,
            mean_slice_nnz,
        }
    }

    /// Dimensions rendered like Table I ("41k x 11k x 75k").
    pub fn dims_human(&self) -> String {
        self.dims
            .iter()
            .map(|&d| human_count(d))
            .collect::<Vec<_>>()
            .join(" x ")
    }
}

/// Render a count with k/M suffixes like the paper's Table I.
pub fn human_count(n: usize) -> String {
    if n >= 10_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 10_000 {
        format!("{}k", n / 1_000)
    } else {
        format!("{n}")
    }
}

/// Render a byte count with MB/GB suffixes.
pub fn human_bytes(n: usize) -> String {
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let f = n as f64;
    if f >= GB {
        format!("{:.2} GB", f / GB)
    } else if f >= MB {
        format!("{:.0} MB", f / MB)
    } else {
        format!("{:.0} KB", f / 1024.0)
    }
}

impl fmt::Display for TensorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} | nnz {} | density {:.2e} | {} in memory",
            self.dims_human(),
            human_count(self.nnz),
            self.density,
            human_bytes(self.coo_bytes),
        )?;
        for (m, (&max, &mean)) in self
            .max_slice_nnz
            .iter()
            .zip(&self.mean_slice_nnz)
            .enumerate()
        {
            writeln!(f, "  mode {m}: max slice nnz {max}, mean {mean:.1}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn stats_of_known_tensor() {
        let t = SparseTensor::from_entries(
            vec![2, 3, 4],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 1], 1.0),
                (vec![1, 2, 3], 1.0),
            ],
        );
        let s = TensorStats::compute(&t);
        assert_eq!(s.nnz, 3);
        assert_eq!(s.dims, vec![2, 3, 4]);
        assert!((s.density - 3.0 / 24.0).abs() < 1e-15);
        assert_eq!(s.coo_bytes, 3 * (3 * 4 + 8));
        assert_eq!(s.max_slice_nnz[0], 2); // slice 0 of mode 0 holds 2 nnz
        assert_eq!(s.max_slice_nnz[1], 1);
    }

    #[test]
    fn mean_over_nonempty_slices() {
        let t = SparseTensor::from_entries(
            vec![10, 2],
            &[(vec![0, 0], 1.0), (vec![0, 1], 1.0), (vec![9, 0], 1.0)],
        );
        let s = TensorStats::compute(&t);
        // mode 0: slices {0: 2, 9: 1} nonempty -> mean 1.5
        assert!((s.mean_slice_nnz[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_tensor_stats() {
        let t = SparseTensor::new(vec![3, 3]);
        let s = TensorStats::compute(&t);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.max_slice_nnz, vec![0, 0]);
        assert_eq!(s.mean_slice_nnz, vec![0.0, 0.0]);
    }

    #[test]
    fn human_count_formats() {
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(41_000), "41k");
        assert_eq!(human_count(77_000_000), "77M");
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(2048), "2 KB");
        assert_eq!(human_bytes(240 * 1024 * 1024), "240 MB");
        assert_eq!(
            human_bytes(2 * 1024 * 1024 * 1024 + 300 * 1024 * 1024),
            "2.29 GB"
        );
    }

    #[test]
    fn display_contains_density() {
        let t = synth::random_uniform(&[10, 10, 10], 100, 1);
        let s = format!("{}", TensorStats::compute(&t));
        assert!(s.contains("density"));
        assert!(s.contains("mode 2"));
    }
}
