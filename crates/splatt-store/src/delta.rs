//! The nnz-delta batch codec: the payload format WAL records carry.
//!
//! A batch is a list of sparse-tensor entries `(coords, value)` of one
//! fixed order. Values travel as raw `f64` bit patterns so a decoded
//! batch is *bit-identical* to what was appended — the property the
//! refit-oracle pins in the recovery storm depend on. The codec is
//! deliberately dumb: fixed-width little-endian fields inside a
//! CRC-protected frame, with every length cross-checked against the
//! actual byte count *before* any allocation (a corrupt count field
//! must produce a typed error, not an allocation bomb — the frame CRC
//! normally catches damage first, but the decoder must stand alone).
//!
//! Layout: `u8 order ‖ u32 count ‖ count × (order × u32 coords ‖ u64 value-bits)`.

/// One sparse entry: zero-based coordinates and the value.
pub type DeltaEntry = (Vec<u32>, f64);

/// Why a delta payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaDecodeError {
    /// Byte offset the decoder stopped at.
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for DeltaDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "delta decode error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for DeltaDecodeError {}

fn err(offset: usize, message: impl Into<String>) -> DeltaDecodeError {
    DeltaDecodeError {
        offset,
        message: message.into(),
    }
}

/// Encode a batch of `order`-way entries.
///
/// # Panics
/// If any entry's coordinate count differs from `order`, or `count`
/// exceeds `u32::MAX` — both are caller bugs, not data errors.
pub fn encode_delta(order: usize, entries: &[DeltaEntry]) -> Vec<u8> {
    assert!(
        order >= 1 && order <= u8::MAX as usize,
        "order {order} out of range"
    );
    assert!(entries.len() <= u32::MAX as usize, "batch too large");
    let mut out = Vec::with_capacity(5 + entries.len() * (4 * order + 8));
    out.push(order as u8);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (coords, value) in entries {
        assert_eq!(coords.len(), order, "entry order mismatch");
        for &c in coords {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    out
}

/// Decode a batch; returns `(order, entries)` with values bit-identical
/// to what [`encode_delta`] was given.
pub fn decode_delta(bytes: &[u8]) -> Result<(usize, Vec<DeltaEntry>), DeltaDecodeError> {
    if bytes.len() < 5 {
        return Err(err(bytes.len(), "payload shorter than the 5-byte header"));
    }
    let order = bytes[0] as usize;
    if order == 0 {
        return Err(err(0, "order must be at least 1"));
    }
    let count = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes")) as usize;
    let entry_len = 4 * order + 8;
    let expected = count
        .checked_mul(entry_len)
        .and_then(|n| n.checked_add(5))
        .ok_or_else(|| err(1, "entry count overflows the payload length"))?;
    if bytes.len() != expected {
        return Err(err(
            bytes.len().min(expected),
            format!(
                "count {count} of order-{order} entries needs {expected} bytes, payload has {}",
                bytes.len()
            ),
        ));
    }
    let mut entries = Vec::with_capacity(count);
    let mut at = 5;
    for _ in 0..count {
        let mut coords = Vec::with_capacity(order);
        for _ in 0..order {
            coords.push(u32::from_le_bytes(
                bytes[at..at + 4].try_into().expect("4 bytes"),
            ));
            at += 4;
        }
        let bits = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        entries.push((coords, f64::from_bits(bits)));
    }
    Ok((order, entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_identical() {
        let entries: Vec<DeltaEntry> = vec![
            (vec![0, 1, 2], 1.5),
            (vec![9, 9, 9], -0.0),
            (vec![u32::MAX, 0, 7], f64::MIN_POSITIVE),
            (vec![3, 4, 5], 1.0e-300),
            (vec![1, 2, 3], std::f64::consts::PI),
        ];
        let bytes = encode_delta(3, &entries);
        let (order, decoded) = decode_delta(&bytes).expect("decode");
        assert_eq!(order, 3);
        assert_eq!(decoded.len(), entries.len());
        for ((ec, ev), (dc, dv)) in entries.iter().zip(&decoded) {
            assert_eq!(ec, dc);
            assert_eq!(ev.to_bits(), dv.to_bits(), "value bits must match");
        }
    }

    #[test]
    fn empty_batch_round_trips() {
        let bytes = encode_delta(4, &[]);
        let (order, decoded) = decode_delta(&bytes).expect("decode");
        assert_eq!(order, 4);
        assert!(decoded.is_empty());
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let entries: Vec<DeltaEntry> = (0..8).map(|i| (vec![i, i + 1], i as f64 * 0.5)).collect();
        let bytes = encode_delta(2, &entries);
        for cut in 0..bytes.len() {
            assert!(
                decode_delta(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        assert!(decode_delta(&bytes).is_ok());
    }

    #[test]
    fn inflated_count_is_rejected_without_allocating() {
        let mut bytes = encode_delta(3, &[(vec![1, 2, 3], 1.0)]);
        // Claim u32::MAX entries; the checked arithmetic must reject it
        // before reserving count*entry_len bytes.
        bytes[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        let e = decode_delta(&bytes).expect_err("rejected");
        assert!(e.message.contains("needs"), "{e}");
    }

    #[test]
    fn zero_order_is_rejected() {
        let bytes = vec![0u8, 0, 0, 0, 0];
        assert!(decode_delta(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_delta(2, &[(vec![1, 2], 3.0)]);
        bytes.push(0xAB);
        assert!(decode_delta(&bytes).is_err());
    }
}
