//! The versioned store manifest: one small framed artifact that names
//! what the store directory currently contains.
//!
//! `MANIFEST.splatt` is published atomically, so its generation number
//! is the store's commit clock: readers that see generation *g* see
//! every artifact the manifest at *g* names. Entries are free-form
//! `key=value` pairs — the ingest CLI records the acked WAL sequence,
//! the active segment, and the paths of derived artifacts.

use crate::atomic::{publish_artifact, read_artifact};
use crate::error::StoreError;
use crate::frame::FrameDefect;
use splatt_faults::IoFaultPlan;
use std::path::Path;

/// File name of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.splatt";

/// First payload line of every manifest.
pub const MANIFEST_HEADER: &str = "splatt-manifest-v1";

/// The decoded manifest: a generation stamp and ordered entries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Monotonic publish counter; starts at 1 for the first publish.
    pub generation: u64,
    /// Ordered `key=value` entries.
    pub entries: Vec<(String, String)>,
}

impl Manifest {
    /// Value of the first entry with `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Set `key` to `value`, replacing an existing entry.
    pub fn set(&mut self, key: &str, value: &str) {
        assert!(
            !key.contains('=') && !key.contains('\n') && !value.contains('\n'),
            "manifest keys must be '='-free and values newline-free"
        );
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            self.entries.push((key.to_string(), value.to_string()));
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for (k, v) in &self.entries {
            text.push_str(k);
            text.push('=');
            text.push_str(v);
            text.push('\n');
        }
        text.into_bytes()
    }

    fn decode(generation: u64, payload: &[u8], path: &Path) -> Result<Manifest, StoreError> {
        let corrupt = || StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: 0,
            defect: FrameDefect::BadMagic,
        };
        let text = std::str::from_utf8(payload).map_err(|_| corrupt())?;
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(corrupt());
        }
        let mut entries = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once('=').ok_or_else(corrupt)?;
            entries.push((k.to_string(), v.to_string()));
        }
        Ok(Manifest {
            generation,
            entries,
        })
    }

    /// Load the manifest from a store directory; `Ok(None)` when the
    /// store has never published one.
    pub fn load(dir: &Path, plan: Option<&IoFaultPlan>) -> Result<Option<Manifest>, StoreError> {
        let path = dir.join(MANIFEST_NAME);
        if !path.exists() {
            return Ok(None);
        }
        let frame = read_artifact(&path, plan)?;
        Ok(Some(Manifest::decode(
            frame.generation,
            &frame.payload,
            &path,
        )?))
    }

    /// Atomically publish this manifest into `dir` at the next
    /// generation (current on-disk generation + 1). Returns the
    /// published generation.
    pub fn publish(&mut self, dir: &Path, plan: Option<&IoFaultPlan>) -> Result<u64, StoreError> {
        let current = match Manifest::load(dir, plan) {
            Ok(Some(m)) => m.generation,
            Ok(None) => 0,
            // A corrupt manifest must not wedge the store forever:
            // republishing at the next generation after the last one we
            // were asked for is still monotonic for readers.
            Err(StoreError::Corrupt { .. }) => self.generation,
            Err(e) => return Err(e),
        };
        self.generation = current.max(self.generation) + 1;
        let path = dir.join(MANIFEST_NAME);
        publish_artifact(&path, self.generation, &self.encode(), plan)?;
        Ok(self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir() -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::SeqCst);
        let dir =
            std::env::temp_dir().join(format!("splatt-store-manifest-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn publish_load_round_trips_and_generation_is_monotonic() {
        let dir = tmpdir();
        assert_eq!(Manifest::load(&dir, None).expect("load empty"), None);

        let mut m = Manifest::default();
        m.set("acked_seq", "41");
        m.set("segments", "3");
        assert_eq!(m.publish(&dir, None).expect("publish"), 1);

        let loaded = Manifest::load(&dir, None).expect("load").expect("some");
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.get("acked_seq"), Some("41"));
        assert_eq!(loaded.get("segments"), Some("3"));

        let mut m2 = loaded;
        m2.set("acked_seq", "99");
        assert_eq!(m2.publish(&dir, None).expect("publish 2"), 2);
        let loaded2 = Manifest::load(&dir, None).expect("load 2").expect("some");
        assert_eq!(loaded2.generation, 2);
        assert_eq!(loaded2.get("acked_seq"), Some("99"));
    }

    #[test]
    fn corrupt_manifest_is_typed_not_a_panic() {
        let dir = tmpdir();
        std::fs::write(dir.join(MANIFEST_NAME), b"garbage bytes").expect("write");
        match Manifest::load(&dir, None) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn set_replaces_in_place() {
        let mut m = Manifest::default();
        m.set("k", "1");
        m.set("other", "x");
        m.set("k", "2");
        assert_eq!(m.entries.len(), 2);
        assert_eq!(m.get("k"), Some("2"));
    }
}
