//! The store's typed error surface.

use crate::frame::FrameDefect;
use splatt_faults::IoFault;
use std::path::PathBuf;

/// Everything a persistence operation can fail with. The invariant the
/// whole crate is built around: corruption and injected faults are
/// *values* of this type, never panics and never silently wrong data.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A frame failed validation somewhere other than a truncatable
    /// WAL tail — e.g. a checksum mismatch in a non-final segment or a
    /// damaged artifact file. Acknowledged data is implicated, so the
    /// store refuses to silently drop it.
    Corrupt {
        path: PathBuf,
        /// Byte offset of the defect within the file.
        offset: u64,
        defect: FrameDefect,
    },
    /// WAL record sequence numbers were not contiguous — segments are
    /// missing or reordered.
    SequenceGap {
        path: PathBuf,
        expected: u64,
        found: u64,
    },
    /// An injected disk fault fired (crash or failed fsync). The
    /// operation was not acknowledged.
    Fault(IoFault),
}

impl StoreError {
    /// Whether this error is an injected process death — the storm
    /// harness uses this to tell "the process died here" apart from a
    /// real failure.
    pub fn is_crash(&self) -> bool {
        matches!(self, StoreError::Fault(IoFault::Crash { .. }))
    }

    /// Whether this error is an injected fsync failure (data written
    /// but not acknowledged durable; a retry may succeed).
    pub fn is_fsync_failure(&self) -> bool {
        matches!(self, StoreError::Fault(IoFault::FsyncFailed { .. }))
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt {
                path,
                offset,
                defect,
            } => write!(
                f,
                "corrupt frame in {} at byte {offset}: {defect}",
                path.display()
            ),
            StoreError::SequenceGap {
                path,
                expected,
                found,
            } => write!(
                f,
                "wal sequence gap in {}: expected seq {expected}, found {found}",
                path.display()
            ),
            StoreError::Fault(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<IoFault> for StoreError {
    fn from(e: IoFault) -> Self {
        StoreError::Fault(e)
    }
}

impl From<StoreError> for std::io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}
