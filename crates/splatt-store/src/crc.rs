//! CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`), in-crate.
//!
//! The workspace is std-only by policy, so the checksum every on-disk
//! frame carries is implemented here rather than pulled from a crate.
//! The table is built at compile time; the byte-at-a-time loop is fast
//! enough for the artifact sizes this repo persists (checkpoints and
//! WAL records in the kilobytes-to-megabytes range).

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC32 state, for checksumming without concatenating.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (all-ones preconditioning).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The finalized (bit-inverted) checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        for split in [0, 1, 7, 100, 4095, 4096] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let data = b"splatt durable frame payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}.{bit} undetected");
            }
        }
    }
}
