//! Process-wide durability counters, mirrored into the probe report.
//!
//! The store keeps its observability surface as plain numbers so
//! `splatt-probe` (which by policy depends on nothing) can carry them
//! in its schema-stable JSON without a crate edge. Counters are global
//! atomics: the CLI snapshots them after an ingest/recover run and
//! copies the snapshot into the probe `store` row.

use std::sync::atomic::{AtomicU64, Ordering};

static WAL_APPENDS: AtomicU64 = AtomicU64::new(0);
static WAL_COMMITS: AtomicU64 = AtomicU64::new(0);
static FSYNCS: AtomicU64 = AtomicU64::new(0);
static ATOMIC_PUBLISHES: AtomicU64 = AtomicU64::new(0);
static SEGMENTS_ROTATED: AtomicU64 = AtomicU64::new(0);
static RECOVERIES: AtomicU64 = AtomicU64::new(0);
static RECORDS_RECOVERED: AtomicU64 = AtomicU64::new(0);
static TORN_BYTES_TRUNCATED: AtomicU64 = AtomicU64::new(0);
static CHECKSUM_FAILURES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the store's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Records appended to a WAL (buffered; not yet durable).
    pub wal_appends: u64,
    /// Group commits that reached the durable-ack point.
    pub wal_commits: u64,
    /// `fsync` calls issued (segments, artifacts, directories).
    pub fsyncs: u64,
    /// Artifacts published through the temp→fsync→rename protocol.
    pub atomic_publishes: u64,
    /// WAL segment rotations.
    pub segments_rotated: u64,
    /// WAL recovery scans performed on open.
    pub recoveries: u64,
    /// Records returned by recovery scans.
    pub records_recovered: u64,
    /// Bytes physically truncated off torn WAL tails.
    pub torn_bytes_truncated: u64,
    /// CRC mismatches observed while reading frames.
    pub checksum_failures: u64,
}

pub(crate) fn inc_wal_appends() {
    WAL_APPENDS.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn inc_wal_commits() {
    WAL_COMMITS.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn inc_fsyncs() {
    FSYNCS.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn inc_atomic_publishes() {
    ATOMIC_PUBLISHES.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn inc_segments_rotated() {
    SEGMENTS_ROTATED.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn inc_recoveries() {
    RECOVERIES.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn add_records_recovered(n: u64) {
    RECORDS_RECOVERED.fetch_add(n, Ordering::Relaxed);
}
pub(crate) fn add_torn_bytes_truncated(n: u64) {
    TORN_BYTES_TRUNCATED.fetch_add(n, Ordering::Relaxed);
}
pub(crate) fn inc_checksum_failures() {
    CHECKSUM_FAILURES.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot every counter.
pub fn snapshot() -> StoreCounters {
    StoreCounters {
        wal_appends: WAL_APPENDS.load(Ordering::Relaxed),
        wal_commits: WAL_COMMITS.load(Ordering::Relaxed),
        fsyncs: FSYNCS.load(Ordering::Relaxed),
        atomic_publishes: ATOMIC_PUBLISHES.load(Ordering::Relaxed),
        segments_rotated: SEGMENTS_ROTATED.load(Ordering::Relaxed),
        recoveries: RECOVERIES.load(Ordering::Relaxed),
        records_recovered: RECORDS_RECOVERED.load(Ordering::Relaxed),
        torn_bytes_truncated: TORN_BYTES_TRUNCATED.load(Ordering::Relaxed),
        checksum_failures: CHECKSUM_FAILURES.load(Ordering::Relaxed),
    }
}

/// Reset every counter to zero (test isolation).
pub fn reset() {
    WAL_APPENDS.store(0, Ordering::Relaxed);
    WAL_COMMITS.store(0, Ordering::Relaxed);
    FSYNCS.store(0, Ordering::Relaxed);
    ATOMIC_PUBLISHES.store(0, Ordering::Relaxed);
    SEGMENTS_ROTATED.store(0, Ordering::Relaxed);
    RECOVERIES.store(0, Ordering::Relaxed);
    RECORDS_RECOVERED.store(0, Ordering::Relaxed);
    TORN_BYTES_TRUNCATED.store(0, Ordering::Relaxed);
    CHECKSUM_FAILURES.store(0, Ordering::Relaxed);
}
