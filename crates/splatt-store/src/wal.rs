//! Append-only write-ahead log of opaque records (nnz delta batches).
//!
//! ## Protocol
//!
//! * [`Wal::append`] buffers a CRC-framed record in memory and hands
//!   back its sequence number. **Appended is not durable.**
//! * [`Wal::commit`] writes every buffered record with one `write`,
//!   then one `fsync` — the *group commit*. Only when `commit` returns
//!   `Ok` are the records acknowledged durable; the returned value is
//!   the highest acknowledged sequence number.
//! * Segments rotate at the commit boundary once the active segment
//!   exceeds `segment_bytes`, so a segment is only ever succeeded by
//!   another after it has been fully committed — which is what lets
//!   recovery distinguish a torn tail from real corruption.
//!
//! ## Recovery
//!
//! [`Wal::open`] scans segments in order, validating every frame's CRC
//! and the global contiguity of sequence numbers. A defect in the
//! **final** segment is the signature of a crash mid-commit: the tail
//! is physically truncated at the defect offset and the log continues
//! from the last good record. A defect in any **earlier** segment
//! implicates acknowledged data, so recovery refuses with a typed
//! [`StoreError::Corrupt`] instead of silently dropping records.
//! Recovery therefore returns *at least* every acknowledged record and
//! *at most* the appended prefix — never a record that was not
//! appended, never a hole.

use crate::atomic::{fsync_dir, fsync_faulted, read_faulted, write_faulted};
use crate::counters;
use crate::error::StoreError;
use crate::frame::{self, FrameDefect};
use splatt_faults::IoFaultPlan;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes (checked after each commit).
    pub segment_bytes: u64,
    /// Optional disk-fault plan driving injected crashes and faults.
    pub plan: Option<Arc<IoFaultPlan>>,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 << 20,
            plan: None,
        }
    }
}

/// One recovered record: its global sequence number and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// What a recovery scan found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalRecovery {
    /// Every intact record, in sequence order.
    pub records: Vec<WalRecord>,
    /// Segment files scanned.
    pub segments_scanned: usize,
    /// Bytes truncated off the torn tail of the final segment.
    pub truncated_bytes: u64,
    /// The defect that ended the final segment, if it was torn.
    pub tail_defect: Option<FrameDefect>,
}

/// The append-only log; see the module docs for the protocol.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    plan: Option<Arc<IoFaultPlan>>,
    /// Active segment, opened for append.
    file: File,
    seg_index: u64,
    /// Bytes already written to the active segment.
    seg_len: u64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Highest sequence number acknowledged durable.
    acked_seq: Option<u64>,
    /// Highest sequence number written but not yet fsynced (survives a
    /// failed fsync so the retry does not rewrite the records).
    written_seq: Option<u64>,
    /// Encoded frames appended since the last write.
    pending: Vec<u8>,
    pending_last_seq: Option<u64>,
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:06}.log")
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segments.push((idx, entry.path()));
        }
    }
    segments.sort_by_key(|(idx, _)| *idx);
    Ok(segments)
}

impl Wal {
    /// Open (or create) the log in `dir`, running recovery first.
    ///
    /// Returns the ready-to-append log and everything recovery found.
    /// New appends continue after the last recovered record.
    pub fn open(dir: &Path, opts: WalOptions) -> Result<(Wal, WalRecovery), StoreError> {
        std::fs::create_dir_all(dir)?;
        let plan = opts.plan;
        let plan_ref = plan.as_deref();
        let segments = list_segments(dir)?;

        let mut recovery = WalRecovery::default();
        let mut expected_seq = 0u64;

        if !segments.is_empty() {
            counters::inc_recoveries();
            recovery.segments_scanned = segments.len();
            let last = segments.len() - 1;
            for (i, (_, path)) in segments.iter().enumerate() {
                let bytes = read_faulted(path, plan_ref, "wal read-segment")?;
                let (frames, defect) = frame::parse_frames(&bytes);
                for f in &frames {
                    if f.generation != expected_seq {
                        return Err(StoreError::SequenceGap {
                            path: path.clone(),
                            expected: expected_seq,
                            found: f.generation,
                        });
                    }
                    expected_seq += 1;
                }
                match defect {
                    None => {}
                    Some((offset, kind)) => {
                        if kind == FrameDefect::ChecksumMismatch {
                            counters::inc_checksum_failures();
                        }
                        if i != last {
                            // Bytes can only follow a fully committed
                            // segment, so damage here is corruption of
                            // acknowledged data — refuse, don't drop.
                            return Err(StoreError::Corrupt {
                                path: path.clone(),
                                offset: offset as u64,
                                defect: kind,
                            });
                        }
                        // Torn tail of the final segment: truncate.
                        let torn = bytes.len() as u64 - offset as u64;
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(offset as u64)?;
                        fsync_faulted(&f, plan_ref, "wal truncate-fsync")?;
                        recovery.truncated_bytes = torn;
                        recovery.tail_defect = Some(kind);
                        counters::add_torn_bytes_truncated(torn);
                    }
                }
                recovery
                    .records
                    .extend(frames.into_iter().map(|f| WalRecord {
                        seq: f.generation,
                        payload: f.payload,
                    }));
            }
            counters::add_records_recovered(recovery.records.len() as u64);
        }

        // Resume appending into the last segment (or create the first).
        let (seg_index, seg_path) = match segments.last() {
            Some((idx, path)) => (*idx, path.clone()),
            None => {
                let path = dir.join(segment_name(0));
                if let Some(p) = plan_ref {
                    p.next_op("wal create-segment")?;
                }
                File::create(&path)?;
                fsync_dir(dir, plan_ref, "wal fsync-dir")?;
                (0, path)
            }
        };
        let file = OpenOptions::new().append(true).open(&seg_path)?;
        let seg_len = file.metadata()?.len();
        let acked = expected_seq.checked_sub(1);

        Ok((
            Wal {
                dir: dir.to_path_buf(),
                segment_bytes: opts.segment_bytes.max(1),
                plan,
                file,
                seg_index,
                seg_len,
                next_seq: expected_seq,
                acked_seq: acked,
                written_seq: acked,
                pending: Vec::new(),
                pending_last_seq: None,
            },
            recovery,
        ))
    }

    /// Recovery scan without keeping the log open for appends.
    pub fn recover(dir: &Path, plan: Option<Arc<IoFaultPlan>>) -> Result<WalRecovery, StoreError> {
        let (_, recovery) = Wal::open(
            dir,
            WalOptions {
                plan,
                ..WalOptions::default()
            },
        )?;
        Ok(recovery)
    }

    /// Buffer one record; returns its sequence number. Not durable
    /// until the next successful [`Wal::commit`].
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        frame::encode_frame_into(&mut self.pending, seq, payload);
        self.next_seq += 1;
        self.pending_last_seq = Some(seq);
        counters::inc_wal_appends();
        Ok(seq)
    }

    /// Group-commit every buffered record: one write, one fsync.
    ///
    /// On `Ok`, the returned sequence number (and everything before
    /// it) is acknowledged durable. On an injected fsync failure the
    /// records stay un-acknowledged but are *not* rewritten by the
    /// next commit — a retry issues only the fsync.
    pub fn commit(&mut self) -> Result<Option<u64>, StoreError> {
        let plan = self.plan.clone();
        let plan_ref = plan.as_deref();
        if !self.pending.is_empty() {
            let buf = std::mem::take(&mut self.pending);
            match write_faulted(&mut self.file, &buf, plan_ref, "wal write") {
                Ok(()) => {}
                Err(e) => {
                    // A torn write is a process death: the Wal object
                    // is dead with it. Restore nothing.
                    return Err(e);
                }
            }
            self.seg_len += buf.len() as u64;
            self.written_seq = self.pending_last_seq.take().or(self.written_seq);
        }
        if self.written_seq > self.acked_seq {
            fsync_faulted(&self.file, plan_ref, "wal fsync")?;
            self.acked_seq = self.written_seq;
            counters::inc_wal_commits();
        }
        if self.seg_len >= self.segment_bytes {
            self.rotate(plan_ref)?;
        }
        Ok(self.acked_seq)
    }

    fn rotate(&mut self, plan: Option<&IoFaultPlan>) -> Result<(), StoreError> {
        let next_index = self.seg_index + 1;
        let path = self.dir.join(segment_name(next_index));
        if let Some(p) = plan {
            p.next_op("wal rotate-create")?;
        }
        File::create(&path)?;
        fsync_dir(&self.dir, plan, "wal rotate-fsync-dir")?;
        self.file = OpenOptions::new().append(true).open(&path)?;
        self.seg_index = next_index;
        self.seg_len = 0;
        counters::inc_segments_rotated();
        Ok(())
    }

    /// Highest acknowledged-durable sequence number, if any.
    pub fn acked_seq(&self) -> Option<u64> {
        self.acked_seq
    }

    /// Next sequence number [`Wal::append`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Index of the active segment file.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::SeqCst);
        let dir =
            std::env::temp_dir().join(format!("splatt-store-wal-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn append_commit_reopen_round_trips() {
        let dir = tmpdir("rt");
        {
            let (mut wal, rec) = Wal::open(&dir, WalOptions::default()).expect("open");
            assert!(rec.records.is_empty());
            for i in 0..10u64 {
                let seq = wal
                    .append(format!("record {i}").as_bytes())
                    .expect("append");
                assert_eq!(seq, i);
            }
            assert_eq!(wal.commit().expect("commit"), Some(9));
        }
        let (wal, rec) = Wal::open(&dir, WalOptions::default()).expect("reopen");
        assert_eq!(rec.records.len(), 10);
        assert_eq!(rec.truncated_bytes, 0);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.payload, format!("record {i}").into_bytes());
        }
        assert_eq!(wal.next_seq(), 10);
        assert_eq!(wal.acked_seq(), Some(9));
    }

    #[test]
    fn appends_without_commit_may_be_lost_but_commits_never() {
        let dir = tmpdir("ack");
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default()).expect("open");
            wal.append(b"durable").expect("append");
            wal.commit().expect("commit");
            wal.append(b"buffered only").expect("append");
            // Dropped without commit: buffered record never hit disk.
        }
        let (_, rec) = Wal::open(&dir, WalOptions::default()).expect("reopen");
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"durable");
    }

    #[test]
    fn segments_rotate_and_recovery_spans_them() {
        let dir = tmpdir("rot");
        {
            let (mut wal, _) = Wal::open(
                &dir,
                WalOptions {
                    segment_bytes: 64,
                    plan: None,
                },
            )
            .expect("open");
            for i in 0..20u64 {
                wal.append(format!("payload number {i}").as_bytes())
                    .expect("append");
                wal.commit().expect("commit");
            }
            assert!(wal.segment_index() > 2, "expected several rotations");
        }
        let (_, rec) = Wal::open(&dir, WalOptions::default()).expect("reopen");
        assert!(rec.segments_scanned > 2);
        assert_eq!(rec.records.len(), 20);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_recovery_is_idempotent() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default()).expect("open");
            for i in 0..5u64 {
                wal.append(format!("rec-{i}").as_bytes()).expect("append");
            }
            wal.commit().expect("commit");
        }
        // Tear the tail: chop 3 bytes off the final segment.
        let seg = dir.join(segment_name(0));
        let len = std::fs::metadata(&seg).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&seg).expect("open seg");
        f.set_len(len - 3).expect("truncate");
        drop(f);

        let (_, rec) = Wal::open(&dir, WalOptions::default()).expect("recover");
        assert_eq!(rec.records.len(), 4);
        assert!(rec.truncated_bytes > 0);
        assert!(rec.tail_defect.is_some());

        // Idempotent: a second recovery finds a clean log.
        let (mut wal, rec2) = Wal::open(&dir, WalOptions::default()).expect("recover 2");
        assert_eq!(rec2.records.len(), 4);
        assert_eq!(rec2.truncated_bytes, 0);
        assert!(rec2.tail_defect.is_none());

        // And the log keeps working: the torn seq is reassigned.
        let seq = wal.append(b"rec-4 again").expect("append");
        assert_eq!(seq, 4);
        wal.commit().expect("commit");
        let (_, rec3) = Wal::open(&dir, WalOptions::default()).expect("recover 3");
        assert_eq!(rec3.records.len(), 5);
        assert_eq!(rec3.records[4].payload, b"rec-4 again");
    }

    #[test]
    fn damage_in_a_non_final_segment_is_typed_corruption() {
        let dir = tmpdir("corrupt");
        {
            let (mut wal, _) = Wal::open(
                &dir,
                WalOptions {
                    segment_bytes: 32,
                    plan: None,
                },
            )
            .expect("open");
            for i in 0..6u64 {
                wal.append(format!("record body {i}").as_bytes())
                    .expect("append");
                wal.commit().expect("commit");
            }
            assert!(wal.segment_index() >= 2);
        }
        // Flip a payload bit in the FIRST segment (acknowledged data).
        let seg = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&seg).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&seg, &bytes).expect("write");

        match Wal::open(&dir, WalOptions::default()) {
            Err(StoreError::Corrupt { path, defect, .. }) => {
                assert_eq!(path, seg);
                assert_eq!(defect, FrameDefect::ChecksumMismatch);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn fsync_failure_leaves_records_unacked_and_retry_commits_them() {
        use splatt_faults::{IoFaultPlan, IoFaultRates};
        let dir = tmpdir("fsync");
        // Plan: first fsync op fails; later rolls (different ops) may
        // pass. Find a seed where op0's fsync fails and op1's doesn't.
        let seed = (0..200u64)
            .find(|&s| {
                let p = IoFaultPlan::new(
                    s,
                    IoFaultRates {
                        failed_fsync: 0.5,
                        ..Default::default()
                    },
                );
                // ops: 0 create-segment, 1 fsync-dir, 2 wal write, 3 wal fsync, 4 retry fsync
                !p.fsync_fails(1, "probe")
                    && p.fsync_fails(3, "probe")
                    && !p.fsync_fails(4, "probe")
            })
            .expect("seed exists");
        let plan = Arc::new(IoFaultPlan::new(
            seed,
            IoFaultRates {
                failed_fsync: 0.5,
                ..Default::default()
            },
        ));
        let (mut wal, _) = Wal::open(
            &dir,
            WalOptions {
                segment_bytes: 1 << 20,
                plan: Some(plan),
            },
        )
        .expect("open");
        wal.append(b"needs durability").expect("append");
        let err = wal.commit().expect_err("fsync fails");
        assert!(err.is_fsync_failure(), "{err}");
        assert_eq!(wal.acked_seq(), None, "must not ack on failed fsync");
        // Retry: records are not rewritten, just fsynced.
        let acked = wal.commit().expect("retry succeeds");
        assert_eq!(acked, Some(0));
        drop(wal);
        let (_, rec) = Wal::open(&dir, WalOptions::default()).expect("recover");
        assert_eq!(rec.records.len(), 1, "no duplicate frames from retry");
    }
}
