//! Checksummed record framing shared by every on-disk artifact.
//!
//! A **frame** is the unit of crash-safe storage: a fixed header
//! followed by an opaque payload, with a CRC32 that covers the
//! generation, length, and payload bytes. Readers can therefore tell
//! *exactly* where valid data ends — a torn tail, a bit flip, or a
//! short read all surface as a typed [`FrameDefect`] at a byte offset,
//! never as silently wrong data.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     frame magic  b"SFR1"
//! 4       8     generation   u64 — monotonic stamp (WAL seq / artifact gen)
//! 12      4     length       u32 — payload byte count
//! 16      4     crc32        over generation ‖ length ‖ payload
//! 20      len   payload
//! ```
//!
//! Single-frame **artifact files** (checkpoints, models, manifests)
//! additionally start with the 8-byte [`ARTIFACT_MAGIC`] so format
//! sniffers (e.g. `load_model_path`) can recognize a framed file
//! without attempting a parse.

use crate::crc::crc32;

/// Per-frame magic, first 4 bytes of every frame header.
pub const FRAME_MAGIC: [u8; 4] = *b"SFR1";

/// File-level magic prefixing single-frame artifact files.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"SPLTFRM1";

/// Header bytes before the payload: magic + generation + length + crc.
pub const FRAME_HEADER_LEN: usize = 4 + 8 + 4 + 4;

/// Upper bound on a single frame's payload. Anything larger is treated
/// as corruption — this is what stops a torn length field from driving
/// a multi-gigabyte allocation during recovery.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 28; // 256 MiB

/// Why a frame failed to parse, and therefore where valid data ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDefect {
    /// Fewer than [`FRAME_HEADER_LEN`] bytes remained.
    TruncatedHeader,
    /// The header promised more payload bytes than remained.
    TruncatedPayload,
    /// The first 4 bytes were not [`FRAME_MAGIC`].
    BadMagic,
    /// The stored CRC did not match the recomputed one.
    ChecksumMismatch,
    /// The length field exceeded [`MAX_PAYLOAD_LEN`].
    OversizedLength,
}

impl FrameDefect {
    /// Stable label for reports and error messages.
    pub fn label(self) -> &'static str {
        match self {
            FrameDefect::TruncatedHeader => "truncated-header",
            FrameDefect::TruncatedPayload => "truncated-payload",
            FrameDefect::BadMagic => "bad-magic",
            FrameDefect::ChecksumMismatch => "checksum-mismatch",
            FrameDefect::OversizedLength => "oversized-length",
        }
    }
}

impl std::fmt::Display for FrameDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A decoded frame: the generation stamp and the payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub generation: u64,
    pub payload: Vec<u8>,
}

/// Serialize one frame (header + payload) into `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, generation: u64, payload: &[u8]) {
    assert!(
        payload.len() as u64 <= MAX_PAYLOAD_LEN as u64,
        "frame payload of {} bytes exceeds MAX_PAYLOAD_LEN",
        payload.len()
    );
    let len = payload.len() as u32;
    let mut crc_input = Vec::with_capacity(12 + payload.len());
    crc_input.extend_from_slice(&generation.to_le_bytes());
    crc_input.extend_from_slice(&len.to_le_bytes());
    crc_input.extend_from_slice(payload);
    let crc = crc32(&crc_input);

    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serialize one frame as a fresh byte vector.
pub fn encode_frame(generation: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    encode_frame_into(&mut out, generation, payload);
    out
}

/// Total encoded size of a frame carrying `payload_len` bytes.
pub fn frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len
}

/// Parse a single frame starting at `bytes[offset..]`.
///
/// Returns the frame and the offset just past it, or the defect that
/// stopped the parse (the offset of the defect is `offset` itself —
/// a frame is atomic: any damage invalidates it from its first byte).
pub fn parse_frame_at(bytes: &[u8], offset: usize) -> Result<(Frame, usize), FrameDefect> {
    let rest = &bytes[offset.min(bytes.len())..];
    if rest.len() < FRAME_HEADER_LEN {
        return Err(FrameDefect::TruncatedHeader);
    }
    if rest[0..4] != FRAME_MAGIC {
        return Err(FrameDefect::BadMagic);
    }
    let generation = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(rest[12..16].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(rest[16..20].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD_LEN {
        return Err(FrameDefect::OversizedLength);
    }
    let len = len as usize;
    if rest.len() < FRAME_HEADER_LEN + len {
        return Err(FrameDefect::TruncatedPayload);
    }
    let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
    let mut crc_input = Vec::with_capacity(12 + len);
    crc_input.extend_from_slice(&rest[4..16]);
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != crc {
        return Err(FrameDefect::ChecksumMismatch);
    }
    Ok((
        Frame {
            generation,
            payload: payload.to_vec(),
        },
        offset + FRAME_HEADER_LEN + len,
    ))
}

/// Parse consecutive frames from `bytes`, stopping at the first defect.
///
/// Returns every frame that parsed cleanly plus, if the buffer did not
/// end exactly on a frame boundary, the byte offset and kind of the
/// defect that stopped the scan. This is the primitive WAL recovery is
/// built on: everything before the returned offset is good, everything
/// from it on is the (possibly torn) tail.
pub fn parse_frames(bytes: &[u8]) -> (Vec<Frame>, Option<(usize, FrameDefect)>) {
    let mut frames = Vec::new();
    let mut offset = 0;
    while offset < bytes.len() {
        match parse_frame_at(bytes, offset) {
            Ok((frame, next)) => {
                frames.push(frame);
                offset = next;
            }
            Err(defect) => return (frames, Some((offset, defect))),
        }
    }
    (frames, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_frame() {
        let encoded = encode_frame(7, b"hello durable world");
        let (frame, next) = parse_frame_at(&encoded, 0).expect("parses");
        assert_eq!(frame.generation, 7);
        assert_eq!(frame.payload, b"hello durable world");
        assert_eq!(next, encoded.len());
    }

    #[test]
    fn round_trip_empty_payload() {
        let encoded = encode_frame(0, b"");
        let (frame, next) = parse_frame_at(&encoded, 0).expect("parses");
        assert!(frame.payload.is_empty());
        assert_eq!(next, FRAME_HEADER_LEN);
    }

    #[test]
    fn multiple_frames_scan_cleanly() {
        let mut buf = Vec::new();
        for g in 0..5u64 {
            encode_frame_into(&mut buf, g, format!("record-{g}").as_bytes());
        }
        let (frames, defect) = parse_frames(&buf);
        assert!(defect.is_none());
        assert_eq!(frames.len(), 5);
        for (g, f) in frames.iter().enumerate() {
            assert_eq!(f.generation, g as u64);
            assert_eq!(f.payload, format!("record-{g}").into_bytes());
        }
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_defect() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 1, b"first");
        let first_end = buf.len();
        encode_frame_into(&mut buf, 2, b"second record");

        for cut in 0..buf.len() {
            let (frames, defect) = parse_frames(&buf[..cut]);
            if cut < first_end {
                assert!(frames.is_empty(), "cut {cut}");
                if cut > 0 {
                    assert!(defect.is_some(), "cut {cut}");
                }
            } else {
                assert_eq!(frames.len(), 1, "cut {cut}");
                assert_eq!(frames[0].generation, 1);
                if cut == first_end {
                    assert!(defect.is_none(), "cut {cut}");
                } else {
                    let (off, _) = defect.expect("torn tail");
                    assert_eq!(off, first_end, "cut {cut}");
                }
            }
        }
        // untruncated: both frames, no defect
        let (frames, defect) = parse_frames(&buf);
        assert_eq!(frames.len(), 2);
        assert!(defect.is_none());
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let buf = encode_frame(99, b"checksum me");
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut damaged = buf.clone();
                damaged[byte] ^= 1 << bit;
                // Any typed defect is acceptable; parsing is not.
                if let Ok((frame, _)) = parse_frame_at(&damaged, 0) {
                    panic!(
                        "flip at {byte}.{bit} parsed as gen={} payload={:?}",
                        frame.generation, frame.payload
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = encode_frame(1, b"x");
        // Overwrite the length field with something absurd.
        let huge = (MAX_PAYLOAD_LEN + 1).to_le_bytes();
        buf[12..16].copy_from_slice(&huge);
        assert_eq!(parse_frame_at(&buf, 0), Err(FrameDefect::OversizedLength));
    }

    #[test]
    fn garbage_prefix_is_bad_magic() {
        let buf = vec![0u8; 64];
        let (frames, defect) = parse_frames(&buf);
        assert!(frames.is_empty());
        assert_eq!(defect, Some((0, FrameDefect::BadMagic)));
    }
}
