//! Crash-safe persistence for splatt-rs.
//!
//! Every byte the stack persists — checkpoints, exported models, the
//! ingest WAL, the store manifest — goes through this crate, which
//! provides three guarantees a bare `File::create` cannot:
//!
//! 1. **Detection** — every on-disk record is CRC32-framed
//!    ([`frame`]): length-prefixed, generation-stamped, checksummed.
//!    Torn tails, bit flips, and short reads surface as typed
//!    [`FrameDefect`]s at a byte offset; corrupt data is never
//!    silently returned.
//! 2. **Atomic publish** — [`publish_artifact`] implements
//!    `write temp → fsync file → rename → fsync dir`, so a reader of
//!    an artifact path sees the old version or the new one, never a
//!    hybrid, no matter where a crash lands.
//! 3. **Durable append** — [`Wal`] is an append-only log of nnz delta
//!    batches ([`delta`]) with group-commit fsync (acknowledgement =
//!    `commit()` returning), segment rotation, and recovery that
//!    truncates at most the unacknowledged torn tail — damage to
//!    acknowledged records is refused as [`StoreError::Corrupt`],
//!    never dropped.
//!
//! The whole crate is std-only and deterministic under the
//! [`splatt_faults::IoFaultPlan`] disk-fault injector: every create,
//! write, fsync, and rename draws an op index, which is how the
//! recovery storm test replays a workload crashed at every single op
//! boundary and pins that nothing acknowledged is ever lost.
//!
//! Durability counters ([`counters`]) feed the probe report's `store`
//! row (schema v8) without adding a crate edge — the CLI copies the
//! snapshot into plain probe rows.

mod atomic;
mod counters;
mod crc;
mod delta;
mod error;
mod frame;
mod manifest;
mod wal;

pub use atomic::{is_framed, publish_artifact, publish_bytes, read_artifact, unwrap_artifact};
pub use counters::{reset as reset_counters, snapshot as counters_snapshot, StoreCounters};
pub use crc::{crc32, Crc32};
pub use delta::{decode_delta, encode_delta, DeltaDecodeError, DeltaEntry};
pub use error::StoreError;
pub use frame::{
    encode_frame, encode_frame_into, frame_len, parse_frame_at, parse_frames, Frame, FrameDefect,
    ARTIFACT_MAGIC, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_PAYLOAD_LEN,
};
pub use manifest::{Manifest, MANIFEST_HEADER, MANIFEST_NAME};
pub use wal::{Wal, WalOptions, WalRecord, WalRecovery};
