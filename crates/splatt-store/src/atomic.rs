//! Atomic artifact publish: `write temp → fsync file → rename → fsync dir`.
//!
//! The protocol guarantees that at every instruction boundary a reader
//! of the destination path observes either the *old* artifact (or its
//! absence) or the complete *new* one — never a hybrid, never a
//! half-written file. The rename is the commit point: POSIX renames
//! within a directory are atomic, and the directory fsync makes the
//! commit itself durable. A crash before the rename leaves at most a
//! stale `.<name>.tmp` alongside an untouched destination; a retry
//! simply overwrites it.
//!
//! Every step draws an op from the optional [`IoFaultPlan`], which is
//! how the recovery storm kills the publish at each boundary and how
//! torn writes / bit flips are injected into the temp file (where the
//! CRC framing of [`publish_artifact`] must catch them).

use crate::counters;
use crate::error::StoreError;
use crate::frame::{self, Frame, FrameDefect, ARTIFACT_MAGIC};
use splatt_faults::{IoFault, IoFaultPlan};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::Path;

/// Draw an op for a non-writing step (create, rename); only a
/// scheduled crash can stop it.
fn step(plan: Option<&IoFaultPlan>, site: &str) -> Result<(), StoreError> {
    if let Some(p) = plan {
        p.next_op(site)?;
    }
    Ok(())
}

/// Write `bytes` to `file`, subject to injected bit flips and torn
/// writes. A torn write puts a strict prefix on disk and then reports
/// the process dead.
pub(crate) fn write_faulted(
    file: &mut File,
    bytes: &[u8],
    plan: Option<&IoFaultPlan>,
    site: &str,
) -> Result<(), StoreError> {
    let Some(p) = plan else {
        file.write_all(bytes)?;
        return Ok(());
    };
    let op = p.next_op(site)?;
    let mut buf = bytes.to_vec();
    p.flip_bit(op, site, &mut buf);
    if let Some(prefix) = p.torn_write_len(op, site, buf.len()) {
        file.write_all(&buf[..prefix])?;
        let _ = file.flush();
        return Err(StoreError::Fault(IoFault::Crash {
            op,
            site: format!("{site} (torn after {prefix}/{} bytes)", buf.len()),
        }));
    }
    file.write_all(&buf)?;
    Ok(())
}

/// `fsync` the file, subject to injected failure. On injected failure
/// the data must not be acknowledged; a retry draws a fresh op.
pub(crate) fn fsync_faulted(
    file: &File,
    plan: Option<&IoFaultPlan>,
    site: &str,
) -> Result<(), StoreError> {
    if let Some(p) = plan {
        let op = p.next_op(site)?;
        if p.fsync_fails(op, site) {
            return Err(StoreError::Fault(IoFault::FsyncFailed {
                op,
                site: site.to_string(),
            }));
        }
    }
    file.sync_all()?;
    counters::inc_fsyncs();
    Ok(())
}

/// `fsync` a directory so a just-committed rename/create survives power
/// loss.
pub(crate) fn fsync_dir(
    dir: &Path,
    plan: Option<&IoFaultPlan>,
    site: &str,
) -> Result<(), StoreError> {
    let handle = File::open(dir)?;
    fsync_faulted(&handle, plan, site)
}

/// Read `path` fully, subject to injected short reads (the returned
/// buffer is a prefix of the file's bytes).
pub(crate) fn read_faulted(
    path: &Path,
    plan: Option<&IoFaultPlan>,
    site: &str,
) -> Result<Vec<u8>, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if let Some(p) = plan {
        let op = p.next_op(site)?;
        if let Some(short) = p.short_read_len(op, site, bytes.len()) {
            bytes.truncate(short);
        }
    }
    Ok(bytes)
}

/// Atomically replace `path` with `bytes`.
///
/// On success the new content is durable. On any error — injected or
/// real — the destination still holds exactly what it held before.
pub fn publish_bytes(
    path: &Path,
    bytes: &[u8],
    plan: Option<&IoFaultPlan>,
) -> Result<(), StoreError> {
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("publish path has no file name: {}", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => Path::new(".").to_path_buf(),
    };
    let tmp = dir.join(format!(".{file_name}.tmp"));

    step(plan, "publish create-temp")?;
    let mut file = File::create(&tmp)?;
    write_faulted(&mut file, bytes, plan, "publish write")?;
    fsync_faulted(&file, plan, "publish fsync-file")?;
    drop(file);

    step(plan, "publish rename")?;
    fs::rename(&tmp, path)?;
    fsync_dir(&dir, plan, "publish fsync-dir")?;
    counters::inc_atomic_publishes();
    Ok(())
}

/// Atomically publish `payload` as a CRC-framed artifact file:
/// [`ARTIFACT_MAGIC`] followed by a single generation-stamped frame.
pub fn publish_artifact(
    path: &Path,
    generation: u64,
    payload: &[u8],
    plan: Option<&IoFaultPlan>,
) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(ARTIFACT_MAGIC.len() + frame::frame_len(payload.len()));
    bytes.extend_from_slice(&ARTIFACT_MAGIC);
    frame::encode_frame_into(&mut bytes, generation, payload);
    publish_bytes(path, &bytes, plan)
}

/// Whether `bytes` begin with the framed-artifact file magic.
pub fn is_framed(bytes: &[u8]) -> bool {
    bytes.len() >= ARTIFACT_MAGIC.len() && bytes[..ARTIFACT_MAGIC.len()] == ARTIFACT_MAGIC
}

/// Unwrap an in-memory framed artifact: verify the file magic, the
/// frame CRC, and that nothing trails the frame.
pub fn unwrap_artifact(bytes: &[u8], path: &Path) -> Result<Frame, StoreError> {
    if !is_framed(bytes) {
        counters::inc_checksum_failures();
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: 0,
            defect: FrameDefect::BadMagic,
        });
    }
    let body = &bytes[ARTIFACT_MAGIC.len()..];
    match frame::parse_frame_at(body, 0) {
        Ok((frame, end)) if end == body.len() => Ok(frame),
        Ok((_, end)) => {
            counters::inc_checksum_failures();
            Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: (ARTIFACT_MAGIC.len() + end) as u64,
                defect: FrameDefect::BadMagic,
            })
        }
        Err(defect) => {
            counters::inc_checksum_failures();
            Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: ARTIFACT_MAGIC.len() as u64,
                defect,
            })
        }
    }
}

/// Read and unwrap a framed artifact file.
pub fn read_artifact(path: &Path, plan: Option<&IoFaultPlan>) -> Result<Frame, StoreError> {
    let bytes = read_faulted(path, plan, "artifact read")?;
    unwrap_artifact(&bytes, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_faults::IoFaultRates;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "splatt-store-atomic-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn publish_then_read_round_trips() {
        let dir = tmpdir("rt");
        let path = dir.join("model.bin");
        publish_artifact(&path, 41, b"payload bytes", None).expect("publish");
        let frame = read_artifact(&path, None).expect("read");
        assert_eq!(frame.generation, 41);
        assert_eq!(frame.payload, b"payload bytes");
        // republish overwrites atomically
        publish_artifact(&path, 42, b"newer", None).expect("republish");
        let frame = read_artifact(&path, None).expect("read 2");
        assert_eq!(frame.generation, 42);
        assert_eq!(frame.payload, b"newer");
    }

    #[test]
    fn crash_at_every_op_never_exposes_a_hybrid() {
        // Count ops in a clean faulted run first.
        let dir = tmpdir("storm");
        let path = dir.join("artifact.bin");
        publish_artifact(&path, 1, b"old artifact", None).expect("seed old");
        let quiet = IoFaultPlan::quiet(7);
        publish_artifact(&path, 2, b"new artifact", Some(&quiet)).expect("clean run");
        let total_ops = quiet.ops_seen();
        assert!(total_ops >= 4, "expected several ops, saw {total_ops}");

        for k in 0..total_ops {
            let dir = tmpdir("storm-k");
            let path = dir.join("artifact.bin");
            publish_artifact(&path, 1, b"old artifact", None).expect("seed old");
            let plan = IoFaultPlan::quiet(7).with_crash_at_op(k);
            let err = publish_artifact(&path, 2, b"new artifact", Some(&plan))
                .expect_err("crash scheduled");
            assert!(err.is_crash(), "op {k}: {err}");
            // A reader must still see exactly old or exactly new.
            let frame = read_artifact(&path, None).expect("destination stays valid");
            match frame.generation {
                1 => assert_eq!(frame.payload, b"old artifact", "op {k}"),
                2 => assert_eq!(frame.payload, b"new artifact", "op {k}"),
                g => panic!("op {k}: unexpected generation {g}"),
            }
        }
    }

    #[test]
    fn torn_or_flipped_temp_never_reaches_the_destination_valid() {
        // With aggressive write faults, either the publish succeeds
        // (no fault fired on the write op) and the artifact verifies,
        // or it fails and the old artifact is untouched.
        for seed in 0..40u64 {
            let dir = tmpdir("wf");
            let path = dir.join("a.bin");
            publish_artifact(&path, 1, b"old", None).expect("seed");
            let plan = IoFaultPlan::new(
                seed,
                IoFaultRates {
                    torn_write: 0.5,
                    bit_flip: 0.5,
                    ..Default::default()
                },
            );
            match publish_artifact(&path, 2, b"replacement", Some(&plan)) {
                Ok(()) => {
                    // A bit flip may have corrupted the temp file; the
                    // CRC must catch it at read time — the one thing
                    // that must never happen is a silently wrong read.
                    match read_artifact(&path, None) {
                        Ok(frame) => {
                            assert_eq!(frame.generation, 2, "seed {seed}");
                            assert_eq!(frame.payload, b"replacement", "seed {seed}");
                        }
                        Err(StoreError::Corrupt { .. }) => {}
                        Err(other) => panic!("seed {seed}: {other}"),
                    }
                }
                Err(e) => {
                    assert!(e.is_crash() || e.is_fsync_failure(), "seed {seed}: {e}");
                    let frame = read_artifact(&path, None).expect("old intact");
                    assert_eq!(frame.generation, 1, "seed {seed}");
                    assert_eq!(frame.payload, b"old", "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn fsync_failure_is_not_acked_and_retry_succeeds() {
        let dir = tmpdir("fsync");
        let path = dir.join("a.bin");
        let plan = IoFaultPlan::new(
            0,
            IoFaultRates {
                failed_fsync: 1.0,
                ..Default::default()
            },
        );
        let err = publish_artifact(&path, 1, b"x", Some(&plan)).expect_err("fsync fails");
        assert!(err.is_fsync_failure(), "{err}");
        // Retry without faults succeeds and the artifact verifies.
        publish_artifact(&path, 1, b"x", None).expect("retry");
        assert_eq!(read_artifact(&path, None).expect("read").payload, b"x");
    }

    #[test]
    fn unframed_bytes_are_rejected_typed() {
        let dir = tmpdir("unframed");
        let path = dir.join("plain.txt");
        std::fs::write(&path, b"not a framed artifact").expect("write");
        match read_artifact(&path, None) {
            Err(StoreError::Corrupt { defect, .. }) => {
                assert_eq!(defect, FrameDefect::BadMagic);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn trailing_junk_after_the_frame_is_rejected() {
        let dir = tmpdir("trail");
        let path = dir.join("a.bin");
        publish_artifact(&path, 1, b"ok", None).expect("publish");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"JUNK");
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(
            read_artifact(&path, None),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
