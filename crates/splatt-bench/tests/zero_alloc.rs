//! Zero-allocation steady state.
//!
//! After one warm-up call per mode (which grows the per-task scratch
//! arenas), repeated MTTKRPs under the paper's Reference and
//! Chapel-optimize presets must perform **zero** hot-loop allocations:
//! no row copies, no slice descriptors, no replica or kernel-scratch
//! growth. The probe's process-global allocation counters are the
//! witness, which is why this file holds exactly one test — a second
//! test running concurrently in the same process would pollute the
//! deltas.

use splatt_bench::baseline::{bench_team, workload_tensor, BenchWorkload};
use splatt_core::mttkrp::{mttkrp, MttkrpConfig, MttkrpWorkspace};
use splatt_core::{CsfAlloc, CsfSet, Implementation};
use splatt_dense::Matrix;
use splatt_tensor::SortVariant;

#[test]
fn steady_state_mttkrp_performs_no_hot_loop_allocations() {
    let w = BenchWorkload {
        dims: vec![40, 30, 50],
        nnz: 8_000,
        alpha: 1.6,
        seed: 0x5EED,
        ntasks: 2,
        reps: 0,
        warmup: 0,
    };
    let tensor = workload_tensor(&w);
    let team = bench_team(w.ntasks);
    let set = CsfSet::build(&tensor, CsfAlloc::One, &team, SortVariant::AllOpts);
    let rank = 16;
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, rank, 0xA110C + m as u64))
        .collect();

    splatt_probe::alloc::enable();
    for imp in [Implementation::Reference, Implementation::PortedOptimized] {
        let (access, _, _) = imp.knobs();
        for (sync, priv_threshold) in [("privatized", 1e12), ("locks", 0.0)] {
            let cfg = MttkrpConfig {
                access,
                priv_threshold,
                ..Default::default()
            };
            let mut ws = MttkrpWorkspace::new(&cfg, w.ntasks);
            let mut out = Matrix::zeros(tensor.dims()[0], rank);
            // Warm-up: one call per mode grows every per-task arena and
            // replica buffer to its final size.
            for mode in 0..tensor.order() {
                let mut m_out = Matrix::zeros(tensor.dims()[mode], rank);
                mttkrp(&set, &factors, mode, &mut m_out, &mut ws, &team, &cfg);
            }
            let before = splatt_probe::alloc::snapshot();
            for _ in 0..3 {
                for mode in 0..tensor.order() {
                    let mut m_out = Matrix::zeros(tensor.dims()[mode], rank);
                    mttkrp(&set, &factors, mode, &mut m_out, &mut ws, &team, &cfg);
                }
                mttkrp(&set, &factors, 0, &mut out, &mut ws, &team, &cfg);
            }
            let delta = splatt_probe::alloc::snapshot().since(&before);
            assert_eq!(
                delta.hot_loop_allocs(),
                0,
                "{} / {sync}: hot-loop allocations in steady state: {delta:?}",
                imp.label()
            );
            assert_eq!(
                delta.hot_loop_bytes(),
                0,
                "{} / {sync}: hot-loop bytes allocated in steady state: {delta:?}",
                imp.label()
            );
        }
    }
    splatt_probe::alloc::disable();
}
