//! Smoke over the committed MTTKRP bench baseline.
//!
//! Four guarantees, in increasing strictness:
//! 1. `BENCH_mttkrp.json` at the repo root parses and carries the pinned
//!    schema — a PR that changes the layout must bump `BENCH_SCHEMA` and
//!    regenerate the file.
//! 2. The committed baseline passes the dispatch regression gate: the
//!    benchmark-driven dispatcher must never be steered onto a cell that
//!    measured slower than its own generic column (< 1.0x speedup).
//! 3. The rank-specialized dispatch is **bit-identical** to the generic
//!    dynamic-width path on deterministic kernels (root and privatized),
//!    so committing the specialization cannot move any oracle.
//! 4. In release builds, the specialized kernels actually pay for
//!    themselves: the best R=16 cell must beat the generic path by at
//!    least 1.15x (the bar is measured on the same pinned workload the
//!    committed baseline uses).

use splatt_bench::baseline::{
    bench_team, dispatch_gate_violations, run_cells, workload_tensor, BenchWorkload, BASELINE_FILE,
    BENCH_RANKS, BENCH_SCHEMA,
};
use splatt_core::mttkrp::{mttkrp, MatrixAccess, MttkrpConfig, MttkrpWorkspace};
use splatt_core::{CsfAlloc, CsfSet};
use splatt_dense::Matrix;
use splatt_probe::json;
use std::path::PathBuf;

fn committed_baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(BASELINE_FILE)
}

#[test]
fn committed_baseline_is_schema_stable() {
    let path = committed_baseline_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    let doc = json::parse(&text).expect("committed baseline is valid JSON");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some(BENCH_SCHEMA));

    let wl = doc.get("workload").unwrap();
    for key in ["dims", "nnz", "alpha", "seed", "ntasks", "reps", "warmup"] {
        assert!(wl.get(key).is_some(), "workload is missing '{key}'");
    }

    let cells = doc.get("cells").unwrap().as_array().unwrap();
    // 2 formats x (1 root sync + 2 syncs x 2 scatter kernels) = 10 rows
    // per rank
    assert_eq!(cells.len(), 2 * 5 * BENCH_RANKS.len());
    for cell in cells {
        let format = cell.get("format").unwrap().as_str().unwrap();
        assert!(["csf", "alto"].contains(&format));
        let kernel = cell.get("kernel").unwrap().as_str().unwrap();
        assert!(["root", "internal", "leaf"].contains(&kernel));
        let sync = cell.get("sync").unwrap().as_str().unwrap();
        assert!(["none", "privatized", "locks"].contains(&sync));
        let rank = cell.get("rank").unwrap().as_u64().unwrap() as usize;
        assert!(BENCH_RANKS.contains(&rank), "unexpected rank {rank}");
        assert!(cell.get("generic_ns").unwrap().as_u64().unwrap() > 0);
        assert!(cell.get("specialized_ns").unwrap().as_u64().unwrap() > 0);
        assert!(cell.get("speedup").unwrap().as_f64().unwrap() > 0.0);
    }
}

/// The committed baseline must both feed the dispatcher and pass the
/// regression gate: no `(kernel, sync, rank)` decision may land on a
/// specialized cell that measured below 1.0x against its own generic
/// column. The leaf-R=32 regression of the v1 baseline (0.59x / 0.66x)
/// is retired outright now — the kernel drivers route leaf-32 to the
/// generic path and `decide` never offers it — so the gate is a pure
/// regression tripwire for *new* losing cells.
#[test]
fn committed_baseline_passes_dispatch_gate() {
    let path = committed_baseline_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    let table = splatt_core::DispatchTable::parse_str(&text)
        .expect("committed baseline must parse as a dispatch table");
    let violations = dispatch_gate_violations(&table);
    assert!(
        violations.is_empty(),
        "dispatch gate violations in committed baseline:\n  {}",
        violations.join("\n  ")
    );
}

/// Specialized dispatch must not move a single bit on the deterministic
/// kernel paths (root, and scatter kernels under privatization — the
/// task-ordered reduction makes those exact).
#[test]
fn specialized_dispatch_is_bit_identical_on_bench_workload() {
    let w = BenchWorkload {
        dims: vec![30, 24, 40],
        nnz: 5_000,
        alpha: 1.6,
        seed: 0xB17,
        ntasks: 2,
        reps: 1,
        warmup: 0,
    };
    let tensor = workload_tensor(&w);
    let team = bench_team(w.ntasks);
    let set = CsfSet::build(
        &tensor,
        CsfAlloc::One,
        &team,
        splatt_tensor::SortVariant::AllOpts,
    );
    for rank in BENCH_RANKS {
        let factors: Vec<Matrix> = tensor
            .dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| Matrix::random(d, rank, 0xFACE + m as u64))
            .collect();
        for mode in 0..tensor.order() {
            let run = |specialize: bool| {
                let cfg = MttkrpConfig {
                    access: MatrixAccess::PointerZip,
                    priv_threshold: 1e12, // force the deterministic path
                    specialize,
                    ..Default::default()
                };
                let mut ws = MttkrpWorkspace::new(&cfg, w.ntasks);
                let mut out = Matrix::zeros(tensor.dims()[mode], rank);
                mttkrp(&set, &factors, mode, &mut out, &mut ws, &team, &cfg);
                out
            };
            let generic = run(false);
            let specialized = run(true);
            assert_eq!(
                generic.as_slice(),
                specialized.as_slice(),
                "rank {rank} mode {mode}: specialized dispatch changed bits"
            );
        }
    }
}

/// Regenerating the baseline must never select a sub-1.0x cell either:
/// a fresh `run_cells` sweep on the pinned workload, fed through the
/// same dispatcher, has zero gate violations — and the retired leaf-32
/// specialization is never selected no matter what it measures.
/// Meaningless without optimization (debug-build noise would dominate),
/// so debug builds skip it; CI runs it with `cargo test --release`.
#[cfg_attr(
    debug_assertions,
    ignore = "regenerated-cell gate is only meaningful in release builds"
)]
#[test]
fn regenerated_cells_selected_by_dispatch_are_all_winners() {
    let w = BenchWorkload::default();
    // Three attempts absorb scheduler noise, matching the r16 floor test.
    let mut last: Vec<String> = Vec::new();
    for attempt in 0..3 {
        let cells = run_cells(&w);
        let json = splatt_bench::baseline::to_json(&w, 0, &cells);
        let table = splatt_core::DispatchTable::parse_str(&json)
            .expect("regenerated cells must parse as a dispatch table");
        for cell in table.cells() {
            let d = table.decide(cell.kernel.as_str(), cell.sync.as_str(), cell.rank);
            assert!(
                !(d.specialize && cell.kernel == "leaf" && cell.rank == 32),
                "retired leaf-32 specialization was selected"
            );
        }
        last = dispatch_gate_violations(&table);
        eprintln!("attempt {attempt}: {} gate violations", last.len());
        if last.is_empty() {
            return;
        }
    }
    panic!(
        "regenerated baseline kept selecting sub-1.0x cells:\n  {}",
        last.join("\n  ")
    );
}

/// The perf floor the PR commits to: on the pinned baseline workload the
/// best R=16 cell runs at least 1.15x faster specialized than generic.
/// Meaningless without optimization, so debug builds skip it; CI runs it
/// with `cargo test --release -- --ignored`.
#[cfg_attr(
    debug_assertions,
    ignore = "perf floor is only meaningful in release builds"
)]
#[test]
fn specialized_r16_beats_generic_in_release() {
    let w = BenchWorkload::default();
    let mut best = 0.0f64;
    // Three attempts absorb scheduler noise on small CI boxes; the floor
    // itself is well under the steady-state speedup (~1.3x).
    for attempt in 0..3 {
        let cells = run_cells(&w);
        for c in cells.iter().filter(|c| c.rank == 16) {
            best = best.max(c.speedup());
        }
        eprintln!("attempt {attempt}: best R=16 speedup so far {best:.2}x");
        if best >= 1.15 {
            return;
        }
    }
    panic!("specialized R=16 kernels only reached {best:.2}x over generic (need >= 1.15x)");
}
