//! One function per table/figure of the paper's evaluation section.
//!
//! Each returns a [`Table`] ready to print and dump as CSV. The
//! paper-vs-measured comparison for every experiment is recorded in the
//! workspace's `EXPERIMENTS.md`.

use crate::datasets;
use crate::harness::{fmt_secs, run_cpals, sort_seconds, team_for, RunSpec};
use crate::report::Table;
use splatt_core::mttkrp::{uses_locks, MttkrpConfig};
use splatt_core::{cp_als_with_team, CpalsOptions, CsfAlloc, CsfSet, Implementation, MatrixAccess};
use splatt_dense::{mat_ata, solve_normals, Matrix};
use splatt_locks::LockStrategy;
use splatt_par::{TaskTeam, TeamConfig};
use splatt_tensor::{synth, SortVariant, SparseTensor, TensorStats};

fn progress(msg: &str) {
    eprintln!("[repro] {msg}");
}

/// Table I: properties of the data sets — the paper's full-scale numbers
/// next to the synthetic bench-scale instances actually used here.
pub fn table1() -> Table {
    let mut t = Table::new(
        "table1",
        "Table I: data set properties (paper scale vs. generated bench instance)",
        &[
            "name",
            "paper dims",
            "paper nnz",
            "paper density",
            "bench dims",
            "bench nnz",
            "bench density",
        ],
    );
    for shape in &synth::ALL_SHAPES {
        progress(&format!("table1: generating {}", shape.name));
        let scale = match shape.name {
            "YELP" => datasets::YELP_SCALE,
            "NELL-2" => datasets::NELL2_SCALE,
            _ => datasets::OTHERS_SCALE,
        } * datasets::scale_multiplier();
        let inst = shape.generate(scale, 0xE3);
        let stats = TensorStats::compute(&inst);
        let paper_density =
            shape.nnz as f64 / shape.dims.iter().map(|&d| d as f64).product::<f64>();
        t.push(vec![
            shape.name.to_string(),
            format!("{}x{}x{}", shape.dims[0], shape.dims[1], shape.dims[2]),
            shape.nnz.to_string(),
            format!("{paper_density:.2e}"),
            stats
                .dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
            stats.nnz.to_string(),
            format!("{:.2e}", stats.density),
        ]);
    }
    t
}

fn per_routine_row(
    dataset: &str,
    tasks: usize,
    code: &str,
    s: crate::harness::RoutineSeconds,
) -> Vec<String> {
    vec![
        dataset.to_string(),
        tasks.to_string(),
        code.to_string(),
        fmt_secs(s.mttkrp),
        fmt_secs(s.sort),
        fmt_secs(s.ata),
        fmt_secs(s.norm),
        fmt_secs(s.fit),
        fmt_secs(s.inverse),
    ]
}

/// Table III: per-routine runtimes of the reference vs. the *initial*
/// port, at 1 task and at the maximum task count.
pub fn table3() -> Table {
    let mut t = Table::new(
        "table3",
        "Table III: initial per-routine runtimes (seconds, 20 CP-ALS iterations)",
        &[
            "dataset", "tasks", "code", "MTTKRP", "Sort", "Mat A^TA", "Mat norm", "CPD fit",
            "Inverse",
        ],
    );
    let max_tasks = *datasets::task_counts().last().unwrap();
    for (name, tensor) in [("YELP", datasets::yelp()), ("NELL-2", datasets::nell2())] {
        for tasks in [1, max_tasks] {
            for imp in [Implementation::Reference, Implementation::PortedInitial] {
                progress(&format!("table3: {name} tasks={tasks} {}", imp.label()));
                let (secs, _fit) = run_cpals(&tensor, RunSpec::of(imp, tasks));
                t.push(per_routine_row(name, tasks, imp.label(), secs));
            }
        }
    }
    t
}

/// Figure 1: sorting runtime on NELL-2 across tasks for the four sort
/// optimization variants.
pub fn fig1() -> Table {
    let mut t = Table::new(
        "fig1",
        "Figure 1: Chapel sorting runtime, NELL-2 (seconds)",
        &["tasks", "Initial", "Array-opt", "Slices-opt", "All-opts"],
    );
    let tensor = datasets::nell2();
    let reps = if datasets::fast_mode() { 1 } else { 3 };
    for tasks in datasets::task_counts() {
        progress(&format!("fig1: tasks={tasks}"));
        let mut row = vec![tasks.to_string()];
        for variant in SortVariant::ALL {
            // min of several reps: sorting is short enough to be noisy
            let best = (0..reps)
                .map(|_| sort_seconds(&tensor, variant, tasks))
                .fold(f64::INFINITY, f64::min);
            row.push(fmt_secs(best));
        }
        t.push(row);
    }
    t
}

/// MTTKRP seconds across tasks for a set of access strategies
/// (Figures 2 and 3: Initial / 2D Index / Pointer).
fn fig_access(id: &str, title: &str, tensor: &SparseTensor) -> Table {
    let accesses = [
        ("Initial", MatrixAccess::RowCopy),
        ("2D Index", MatrixAccess::Index2D),
        ("Pointer", MatrixAccess::PointerChecked),
    ];
    let mut t = Table::new(id, title, &["tasks", "Initial", "2D Index", "Pointer"]);
    for tasks in datasets::task_counts() {
        let mut row = vec![tasks.to_string()];
        for (label, access) in accesses {
            progress(&format!("{id}: tasks={tasks} access={label}"));
            let spec = RunSpec {
                access,
                locks: LockStrategy::Spin,
                sort_variant: SortVariant::AllOpts,
                ntasks: tasks,
            };
            let (secs, _) = run_cpals(tensor, spec);
            row.push(fmt_secs(secs.mttkrp));
        }
        t.push(row);
    }
    t
}

/// Figure 2: MTTKRP matrix-access variants, YELP.
pub fn fig2() -> Table {
    fig_access(
        "fig2",
        "Figure 2: Chapel MTTKRP runtime, matrix access optimizations, YELP (seconds)",
        &datasets::yelp(),
    )
}

/// Figure 3: MTTKRP matrix-access variants, NELL-2.
pub fn fig3() -> Table {
    fig_access(
        "fig3",
        "Figure 3: Chapel MTTKRP runtime, matrix access optimizations, NELL-2 (seconds)",
        &datasets::nell2(),
    )
}

/// Figure 4: MTTKRP lock strategies on YELP (Sync / Atomic / FIFO-sync).
pub fn fig4() -> Table {
    let mut t = Table::new(
        "fig4",
        "Figure 4: Chapel MTTKRP runtime, sync vs atomic locks, YELP (seconds)",
        &["tasks", "Sync", "Atomic", "FIFO-sync", "locked"],
    );
    let tensor = datasets::yelp();
    for tasks in datasets::task_counts() {
        let mut row = vec![tasks.to_string()];
        for locks in LockStrategy::ALL {
            progress(&format!("fig4: tasks={tasks} locks={}", locks.label()));
            let spec = RunSpec {
                access: MatrixAccess::PointerChecked,
                locks,
                sort_variant: SortVariant::AllOpts,
                ntasks: tasks,
            };
            let (secs, _) = run_cpals(&tensor, spec);
            row.push(fmt_secs(secs.mttkrp));
        }
        // does this task count actually take the lock path?
        let team = team_for(tasks);
        let set = CsfSet::build(&tensor, CsfAlloc::Two, &team, SortVariant::AllOpts);
        let cfg = MttkrpConfig::default();
        let locked = (0..tensor.order()).any(|m| uses_locks(&set, m, tasks, &cfg));
        row.push(if locked { "yes" } else { "no" }.to_string());
        t.push(row);
    }
    t
}

/// Figures 5–8: per-routine runtimes, reference vs. optimized port, at
/// one (dataset, task-count) point each.
fn fig_routines(id: &str, title: &str, tensor: &SparseTensor, tasks: usize) -> Table {
    let mut t = Table::new(
        id,
        title,
        &["routine", "C", "Chapel-optimize", "C/Chapel ratio"],
    );
    progress(&format!("{id}: reference"));
    let (c, _) = run_cpals(tensor, RunSpec::of(Implementation::Reference, tasks));
    progress(&format!("{id}: optimized port"));
    let (p, _) = run_cpals(tensor, RunSpec::of(Implementation::PortedOptimized, tasks));
    let rows: [(&str, f64, f64); 6] = [
        ("MTTKRP", c.mttkrp, p.mttkrp),
        ("Inverse", c.inverse, p.inverse),
        ("Mat A^TA", c.ata, p.ata),
        ("Mat norm", c.norm, p.norm),
        ("CPD fit", c.fit, p.fit),
        ("Sort", c.sort, p.sort),
    ];
    for (name, cv, pv) in rows {
        let ratio = if pv > 0.0 { cv / pv } else { f64::NAN };
        t.push(vec![
            name.to_string(),
            fmt_secs(cv),
            fmt_secs(pv),
            format!("{ratio:.2}"),
        ]);
    }
    t
}

/// Figure 5: per-routine runtimes, YELP, 1 task.
pub fn fig5() -> Table {
    fig_routines(
        "fig5",
        "Figure 5: CP-ALS routine runtimes, YELP, 1 task (seconds)",
        &datasets::yelp(),
        1,
    )
}

/// Figure 6: per-routine runtimes, NELL-2, 1 task.
pub fn fig6() -> Table {
    fig_routines(
        "fig6",
        "Figure 6: CP-ALS routine runtimes, NELL-2, 1 task (seconds)",
        &datasets::nell2(),
        1,
    )
}

/// Figure 7: per-routine runtimes, YELP, max tasks.
pub fn fig7() -> Table {
    let tasks = *datasets::task_counts().last().unwrap();
    fig_routines(
        "fig7",
        &format!("Figure 7: CP-ALS routine runtimes, YELP, {tasks} tasks (seconds)"),
        &datasets::yelp(),
        tasks,
    )
}

/// Figure 8: per-routine runtimes, NELL-2, max tasks.
pub fn fig8() -> Table {
    let tasks = *datasets::task_counts().last().unwrap();
    fig_routines(
        "fig8",
        &format!("Figure 8: CP-ALS routine runtimes, NELL-2, {tasks} tasks (seconds)"),
        &datasets::nell2(),
        tasks,
    )
}

/// Figures 9/10: MTTKRP runtime across tasks for the three
/// implementations.
fn fig_impls(id: &str, title: &str, tensor: &SparseTensor) -> Table {
    let mut t = Table::new(
        id,
        title,
        &["tasks", "C", "Chapel-initial", "Chapel-optimize"],
    );
    for tasks in datasets::task_counts() {
        let mut row = vec![tasks.to_string()];
        for imp in [
            Implementation::Reference,
            Implementation::PortedInitial,
            Implementation::PortedOptimized,
        ] {
            progress(&format!("{id}: tasks={tasks} {}", imp.label()));
            let (secs, _) = run_cpals(tensor, RunSpec::of(imp, tasks));
            row.push(fmt_secs(secs.mttkrp));
        }
        t.push(row);
    }
    t
}

/// Figure 9: MTTKRP runtime vs tasks, YELP, all implementations.
pub fn fig9() -> Table {
    fig_impls(
        "fig9",
        "Figure 9: MTTKRP runtime, YELP (seconds)",
        &datasets::yelp(),
    )
}

/// Figure 10: MTTKRP runtime vs tasks, NELL-2, all implementations.
pub fn fig10() -> Table {
    fig_impls(
        "fig10",
        "Figure 10: MTTKRP runtime, NELL-2 (seconds)",
        &datasets::nell2(),
    )
}

/// Ablation A (Section V-E analogue): how idle task-team workers degrade
/// a concurrently running dense routine, as a function of their
/// spin-before-park interval — the Qthreads/OpenBLAS conflict with
/// `QT_SPINCOUNT` as the knob.
pub fn ablation_a() -> Table {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut t = Table::new(
        "ablationA",
        "Ablation A: dense-solve latency under a concurrently idling task team (ms/solve)",
        &["background team", "Inverse ms", "Mat A^TA ms"],
    );

    let rows_cfg: [(&str, Option<TeamConfig>); 4] = [
        ("none", None),
        (
            "spin=300000 (Qthreads default)",
            Some(TeamConfig::default()),
        ),
        (
            "spin=300 (QT_SPINCOUNT=300)",
            Some(TeamConfig::short_spin()),
        ),
        ("spin=0 (fifo)", Some(TeamConfig::fifo())),
    ];

    // A factor-matrix-shaped workload for the foreground dense routines.
    let a = Matrix::random(120_000, 35, 3);
    const REPS: usize = 5;

    for (label, cfg) in rows_cfg {
        progress(&format!("ablationA: background={label}"));
        let stop = Arc::new(AtomicBool::new(false));
        let bg = cfg.map(|cfg| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let team = TaskTeam::with_config(4, cfg);
                while !stop.load(Ordering::Relaxed) {
                    // a short burst of team work, then a gap in which the
                    // workers spin (or park) while the foreground runs
                    team.coforall(|_| {
                        std::hint::black_box((0..500).sum::<u64>());
                    });
                    std::thread::sleep(std::time::Duration::from_micros(500));
                }
            })
        });

        // measure the foreground routines
        let mut inverse_ms = 0.0;
        let mut ata_ms = 0.0;
        for _ in 0..REPS {
            let start = std::time::Instant::now();
            let g = mat_ata(&a);
            ata_ms += start.elapsed().as_secs_f64() * 1e3;

            let mut m = Matrix::random(2_000, 35, 5);
            let start = std::time::Instant::now();
            solve_normals(&g, &mut m);
            inverse_ms += start.elapsed().as_secs_f64() * 1e3;
        }
        stop.store(true, Ordering::Relaxed);
        if let Some(h) = bg {
            h.join().ok();
        }
        t.push(vec![
            label.to_string(),
            format!("{:.2}", inverse_ms / REPS as f64),
            format!("{:.2}", ata_ms / REPS as f64),
        ]);
    }
    t
}

/// Ablation B: the privatization threshold. Sweeps SPLATT's
/// `DEFAULT_PRIV_THRESH` around its 0.02 default on the YELP instance and
/// reports MTTKRP time and which modes took the lock path.
pub fn ablation_b() -> Table {
    let mut t = Table::new(
        "ablationB",
        "Ablation B: privatization threshold sweep, YELP, 8 tasks",
        &["threshold", "locked modes", "MTTKRP s"],
    );
    let tensor = datasets::yelp();
    let tasks = 8.min(*datasets::task_counts().last().unwrap());
    let team = team_for(tasks);
    let set = CsfSet::build(&tensor, CsfAlloc::Two, &team, SortVariant::AllOpts);
    for threshold in [0.0, 0.005, 0.02, 0.1, 1e9] {
        progress(&format!("ablationB: threshold={threshold}"));
        let opts = CpalsOptions {
            rank: datasets::BENCH_RANK,
            max_iters: datasets::bench_iters(),
            tolerance: 0.0,
            ntasks: tasks,
            priv_threshold: threshold,
            ..Default::default()
        };
        let out = cp_als_with_team(&tensor, &opts, &team);
        let cfg = MttkrpConfig {
            priv_threshold: threshold,
            ..Default::default()
        };
        let locked: Vec<String> = (0..tensor.order())
            .filter(|&m| uses_locks(&set, m, tasks, &cfg))
            .map(|m| m.to_string())
            .collect();
        t.push(vec![
            format!("{threshold}"),
            if locked.is_empty() {
                "-".to_string()
            } else {
                locked.join("+")
            },
            fmt_secs(out.timers.seconds(splatt_par::Routine::Mttkrp)),
        ]);
    }
    t
}

/// Ablation C: CSF allocation policy — the memory / synchronization
/// trade SPLATT exposes (one vs. two vs. all-mode representations).
pub fn ablation_c() -> Table {
    let mut t = Table::new(
        "ablationC",
        "Ablation C: CSF allocation policy, YELP, 8 tasks",
        &["alloc", "csf MB", "locked modes", "MTTKRP s"],
    );
    let tensor = datasets::yelp();
    let tasks = 8.min(*datasets::task_counts().last().unwrap());
    let team = team_for(tasks);
    for alloc in [CsfAlloc::One, CsfAlloc::Two, CsfAlloc::All] {
        progress(&format!("ablationC: alloc={alloc:?}"));
        let set = CsfSet::build(&tensor, alloc, &team, SortVariant::AllOpts);
        let bytes: usize = set.csfs().iter().map(|c| c.storage_bytes()).sum();
        let cfg = MttkrpConfig::default();
        let locked: Vec<String> = (0..tensor.order())
            .filter(|&m| uses_locks(&set, m, tasks, &cfg))
            .map(|m| m.to_string())
            .collect();
        let opts = CpalsOptions {
            rank: datasets::BENCH_RANK,
            max_iters: datasets::bench_iters(),
            tolerance: 0.0,
            ntasks: tasks,
            csf_alloc: alloc,
            ..Default::default()
        };
        let out = cp_als_with_team(&tensor, &opts, &team);
        t.push(vec![
            format!("{alloc:?}"),
            format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
            if locked.is_empty() {
                "-".to_string()
            } else {
                locked.join("+")
            },
            fmt_secs(out.timers.seconds(splatt_par::Routine::Mttkrp)),
        ]);
    }
    t
}

/// Ablation D: the three scatter regimes for non-root MTTKRP — hashed
/// locks, privatized replicas, and mode tiling (the paper's future-work
/// feature, implemented here) — on the lock-prone YELP instance.
pub fn ablation_d() -> Table {
    let mut t = Table::new(
        "ablationD",
        "Ablation D: scatter regime for non-root MTTKRP, YELP, 8 tasks",
        &["regime", "MTTKRP s", "Sort s (incl. tile build)"],
    );
    let tensor = datasets::yelp();
    let tasks = 8.min(*datasets::task_counts().last().unwrap());
    let base = CpalsOptions {
        rank: datasets::BENCH_RANK,
        max_iters: datasets::bench_iters(),
        tolerance: 0.0,
        ntasks: tasks,
        ..Default::default()
    };
    let regimes: [(&str, CpalsOptions); 3] = [
        (
            "locks",
            CpalsOptions {
                priv_threshold: 0.0,
                ..base.clone()
            },
        ),
        (
            "privatized",
            CpalsOptions {
                priv_threshold: 1e12,
                ..base.clone()
            },
        ),
        (
            "tiled",
            CpalsOptions {
                priv_threshold: 0.0,
                tiling: true,
                ..base
            },
        ),
    ];
    for (label, opts) in regimes {
        progress(&format!("ablationD: regime={label}"));
        let team = team_for(tasks);
        let out = cp_als_with_team(&tensor, &opts, &team);
        t.push(vec![
            label.to_string(),
            fmt_secs(out.timers.seconds(splatt_par::Routine::Mttkrp)),
            fmt_secs(out.timers.seconds(splatt_par::Routine::Sort)),
        ]);
    }
    t
}

/// Experiment E: simulated multi-locale decomposition (the paper's second
/// future-work item — SPLATT's medium-grained algorithm). Reports the
/// interconnect volume per grid shape at a fixed locale count, the
/// comparison the medium-grained paper leads with (balanced grids beat
/// one-dimensional decompositions).
pub fn experiment_e() -> Table {
    use splatt_dist::{dist_cp_als, DistCpalsOptions, ProcessGrid, TensorDistribution};
    let mut t = Table::new(
        "expE",
        "Experiment E: medium-grained distribution, NELL-2, 8 locales (communication per grid shape)",
        &["grid", "allreduce MB", "allgather MB", "total MB", "max block nnz", "fit"],
    );
    let mut tensor = datasets::nell2();
    tensor.coalesce(); // duplicates would distort the reported fits
    let opts = DistCpalsOptions {
        rank: datasets::BENCH_RANK,
        max_iters: if datasets::fast_mode() { 2 } else { 5 },
        tolerance: 0.0,
        seed: 0xD157,
        ..Default::default()
    };
    for grid in [vec![8, 1, 1], vec![1, 8, 1], vec![4, 2, 1], vec![2, 2, 2]] {
        progress(&format!("expE: grid={grid:?}"));
        let dist = TensorDistribution::new(&tensor, ProcessGrid::new(grid.clone()));
        let out = dist_cp_als(&dist, &opts);
        let mb = |b: u64| format!("{:.1}", b as f64 / (1024.0 * 1024.0));
        t.push(vec![
            grid.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
            mb(out.comm.allreduce_bytes()),
            mb(out.comm.allgather_bytes()),
            mb(out.comm.total_bytes()),
            dist.max_block_nnz().to_string(),
            format!("{:.4}", out.fit),
        ]);
    }
    t
}

/// Experiment F: the three tensor-completion solvers (SPLATT's completion
/// study compares ALS, SGD, and CCD++). Netflix-shaped ratings data with
/// a 20% holdout; equal sweep budgets.
pub fn experiment_f() -> Table {
    use splatt_core::{
        rmse_observed, tensor_complete, tensor_complete_ccd, tensor_complete_sgd, CcdOptions,
        CompletionOptions, SgdOptions,
    };
    let mut t = Table::new(
        "expF",
        "Experiment F: completion solvers, NETFLIX shape, rank 16 (train/test RMSE, seconds)",
        &["solver", "sweeps", "train RMSE", "test RMSE", "seconds"],
    );
    let full = synth::NETFLIX.generate(1.0 / 1000.0, 0xF00D);
    let (train, test) = full.split_holdout(0.2, 0xF00D);
    let rank = 16;
    let sweeps = if datasets::fast_mode() { 5 } else { 15 };
    let tasks = 4.min(*datasets::task_counts().last().unwrap());

    let mut push = |name: &str, out: splatt_core::CompletionOutput, secs: f64| {
        t.push(vec![
            name.to_string(),
            out.iterations.to_string(),
            format!("{:.4}", out.rmse),
            format!("{:.4}", rmse_observed(&out.model, &test)),
            fmt_secs(secs),
        ]);
    };

    progress("expF: ALS");
    let start = std::time::Instant::now();
    let als = tensor_complete(
        &train,
        &CompletionOptions {
            rank,
            max_iters: sweeps,
            tolerance: 0.0,
            regularization: 0.02,
            ntasks: tasks,
            ..Default::default()
        },
    );
    push("ALS", als, start.elapsed().as_secs_f64());

    progress("expF: SGD");
    let start = std::time::Instant::now();
    let sgd = tensor_complete_sgd(
        &train,
        &SgdOptions {
            rank,
            max_epochs: sweeps * 4, // SGD sweeps are much cheaper
            tolerance: 0.0,
            step: 0.1,
            decay: 0.05,
            regularization: 0.02,
            ntasks: tasks,
            ..Default::default()
        },
    );
    push("SGD", sgd, start.elapsed().as_secs_f64());

    progress("expF: CCD++");
    let start = std::time::Instant::now();
    let ccd = tensor_complete_ccd(
        &train,
        &CcdOptions {
            rank,
            max_sweeps: sweeps,
            tolerance: 0.0,
            regularization: 0.02,
            ntasks: tasks,
            ..Default::default()
        },
    );
    push("CCD++", ccd, start.elapsed().as_secs_f64());

    t
}

/// Profile: one fully-probed CP-ALS run on the YELP stand-in, emitted in
/// the Table III per-routine layout via [`crate::report::profile_table`].
/// The full report (threads, locks, alloc, span tree) prints alongside.
pub fn profile() -> Table {
    let tensor = datasets::yelp();
    let tasks = 4.min(*datasets::task_counts().last().unwrap());
    progress(&format!("profile: YELP, {tasks} tasks, probes on"));
    let opts = CpalsOptions {
        rank: datasets::BENCH_RANK,
        max_iters: datasets::bench_iters(),
        tolerance: 0.0,
        ntasks: tasks,
        profile: true,
        ..Default::default()
    };
    let team = team_for(tasks);
    let out = cp_als_with_team(&tensor, &opts, &team);
    let report = out.profile.expect("profiling was enabled");
    println!("\n{}", report.render());
    crate::report::profile_table(&report)
}

/// Faults: the fault-tolerance study. A seeded [`splatt_faults::FaultPlan`]
/// injects each fault kind (and then all of them at once) into the early
/// iterations of a CP-ALS run; the recovery machinery — absorbed delays,
/// bounded retries, escalating ridge regularization, iteration rollback —
/// must bring every run back to the fault-free fit. Reports the injected
/// event count, the recovery actions taken, and the fit delta against the
/// clean run.
pub fn faults_experiment() -> Table {
    use splatt_core::try_cp_als;
    use splatt_faults::{FaultPlan, FaultRates};

    let mut t = Table::new(
        "faults",
        "Faults: seeded fault injection vs. fault-free CP-ALS (recovery, fit delta)",
        &["plan", "events", "recoveries", "iters", "fit", "delta fit"],
    );
    let tensor = synth::power_law(&[60, 45, 50], 20_000, 1.8, 0xFA);
    let opts = CpalsOptions {
        rank: 8,
        max_iters: if datasets::fast_mode() { 8 } else { 20 },
        tolerance: 0.0,
        ntasks: 2,
        seed: 0xFA17,
        ..Default::default()
    };

    progress("faults: fault-free baseline");
    let clean = try_cp_als(&tensor, &opts, None).expect("fault-free run cannot fail");
    t.push(vec![
        "(none)".to_string(),
        "0".to_string(),
        "-".to_string(),
        clean.iterations.to_string(),
        format!("{:.6}", clean.fit),
        "0".to_string(),
    ]);

    let plans: [(&str, FaultRates); 5] = [
        (
            "straggler",
            FaultRates {
                straggler: 0.5,
                ..Default::default()
            },
        ),
        (
            "dropped collective",
            FaultRates {
                dropped: 0.4,
                ..Default::default()
            },
        ),
        (
            "NaN poison",
            FaultRates {
                nan: 0.3,
                ..Default::default()
            },
        ),
        (
            "non-SPD Gram",
            FaultRates {
                nonspd: 0.4,
                ..Default::default()
            },
        ),
        (
            "all kinds",
            FaultRates {
                straggler: 0.3,
                dropped: 0.25,
                nan: 0.2,
                nonspd: 0.25,
                ..Default::default()
            },
        ),
    ];
    for (name, rates) in plans {
        progress(&format!("faults: plan '{name}'"));
        // faults stop after the horizon so every run converges cleanly
        let plan = FaultPlan::new(0xFA17, rates).with_horizon(3);
        let out = try_cp_als(&tensor, &opts, Some(&plan))
            .unwrap_or_else(|e| panic!("plan '{name}' did not recover: {e}"));
        let events = plan.events();
        let mut actions: Vec<&'static str> = events.iter().map(|e| e.action.label()).collect();
        actions.sort_unstable();
        actions.dedup();
        t.push(vec![
            name.to_string(),
            events.len().to_string(),
            actions.join("+"),
            out.iterations.to_string(),
            format!("{:.6}", out.fit),
            format!("{:.1e}", (out.fit - clean.fit).abs()),
        ]);
    }
    t
}

/// Every experiment id the repro binary accepts, in run order.
pub const ALL_EXPERIMENTS: [&str; 20] = [
    "table1",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablationA",
    "ablationB",
    "ablationC",
    "ablationD",
    "expE",
    "expF",
    "profile",
    "faults",
];

/// Run one experiment by id.
pub fn run(id: &str) -> Option<Table> {
    Some(match id {
        "table1" => table1(),
        "table3" => table3(),
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "ablationA" => ablation_a(),
        "ablationB" => ablation_b(),
        "ablationC" => ablation_c(),
        "ablationD" => ablation_d(),
        "expE" => experiment_e(),
        "expF" => experiment_f(),
        "profile" => profile(),
        "faults" => faults_experiment(),
        _ => return None,
    })
}
