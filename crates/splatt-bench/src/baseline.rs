//! The committed MTTKRP performance baseline (`repro bench`).
//!
//! The paper is a performance study; its repo therefore carries a
//! *committed* baseline so every PR can see the perf trajectory, not just
//! the correctness one. `repro bench` runs a pinned synthetic workload —
//! fixed dims, nonzero count, distribution, and seed — through every
//! kernel/sync cell at the specialized ranks, timing the generic
//! (dynamic-width) and rank-specialized dispatch paths side by side, and
//! writes the medians to `BENCH_mttkrp.json` at the repo root in a
//! schema-stable layout.
//!
//! Timings in the committed file are machine-specific; what the schema
//! pins is the *shape*: workload identity, one row per
//! `(format, kernel, sync, rank)` cell, median-of-N nanoseconds per
//! dispatch path, and the specialized-over-generic speedup. Since v2 the
//! baseline times the flat-slab CSF **and** the ALTO linearized stream on
//! the same workload — the table is what `TensorFormat::Auto` dispatches
//! from (see `splatt_core::dispatch`).

use splatt_core::alto::mttkrp_alto;
use splatt_core::mttkrp::{mttkrp, MatrixAccess, MttkrpConfig, MttkrpWorkspace};
use splatt_core::{CsfAlloc, CsfSet, KernelKind};
use splatt_dense::Matrix;
use splatt_par::{TaskTeam, TeamConfig};
use splatt_tensor::{synth, AltoTensor, SortVariant, SparseTensor};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag of `BENCH_mttkrp.json`. Bump on any layout change. This is
/// the same tag the dispatcher pins — the committed file feeds both the
/// perf-trajectory record and `TensorFormat::Auto` decisions.
pub const BENCH_SCHEMA: &str = splatt_core::dispatch::DISPATCH_BASELINE_SCHEMA;

/// File name of the committed baseline at the repo root.
pub const BASELINE_FILE: &str = "BENCH_mttkrp.json";

/// Ranks measured per cell — the specialized widths. Other ranks take the
/// generic path by construction, so measuring them adds no information.
pub const BENCH_RANKS: [usize; 3] = [8, 16, 32];

/// The pinned workload the baseline runs. Everything that shapes the
/// timing is part of the workload identity and lands in the JSON.
#[derive(Debug, Clone)]
pub struct BenchWorkload {
    /// Tensor dimensions (small enough that factor rows stay cache-hot:
    /// the baseline isolates kernel arithmetic, not memory latency).
    pub dims: Vec<usize>,
    /// Nonzeros requested from the power-law generator.
    pub nnz: usize,
    /// Power-law skew of the generator.
    pub alpha: f64,
    /// Generator seed.
    pub seed: u64,
    /// Task-team width.
    pub ntasks: usize,
    /// Timed repetitions per cell (the median is reported).
    pub reps: usize,
    /// Untimed warm-up calls per cell (first call grows workspace
    /// scratch; warming keeps allocation out of the timed window).
    pub warmup: usize,
}

impl Default for BenchWorkload {
    fn default() -> Self {
        // Cap the team at the physical parallelism: oversubscribed
        // spinning turns every cell into a scheduler-timeslice
        // measurement (the paper's Section V-E interference effect).
        let ntasks = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(1);
        if crate::datasets::fast_mode() {
            BenchWorkload {
                dims: vec![64, 48, 80],
                nnz: 20_000,
                alpha: 1.8,
                seed: 0xBA5E,
                ntasks,
                reps: 3,
                warmup: 1,
            }
        } else {
            BenchWorkload {
                dims: vec![64, 48, 80],
                nnz: 120_000,
                alpha: 1.8,
                seed: 0xBA5E,
                ntasks,
                reps: 7,
                warmup: 2,
            }
        }
    }
}

/// The task team the baseline measures on: `fifo` (park-immediately)
/// workers, so idle tasks never spin against the measured kernel on
/// small machines. The committed numbers isolate kernel arithmetic,
/// not idle-wait policy.
pub fn bench_team(ntasks: usize) -> TaskTeam {
    TaskTeam::with_config(ntasks, TeamConfig::fifo())
}

/// One `(format, kernel, sync, rank)` baseline cell: median time of
/// each dispatch path and their ratio.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Tensor format: `csf` or `alto`.
    pub format: &'static str,
    /// Kernel family: `root`, `internal`, or `leaf`.
    pub kernel: &'static str,
    /// Synchronization: `none` (root), `privatized`, or `locks`.
    pub sync: &'static str,
    /// Decomposition rank of this cell.
    pub rank: usize,
    /// Median nanoseconds per MTTKRP, generic dynamic-width dispatch.
    pub generic_ns: u64,
    /// Median nanoseconds per MTTKRP, rank-specialized dispatch.
    pub specialized_ns: u64,
}

impl BenchCell {
    /// Generic-over-specialized time ratio (> 1 means the specialized
    /// path is faster).
    pub fn speedup(&self) -> f64 {
        self.generic_ns as f64 / self.specialized_ns.max(1) as f64
    }
}

/// Median nanoseconds of `reps` timed `mttkrp` calls after `warmup`
/// untimed ones. The same workspace is reused throughout, so the timed
/// window exercises the zero-allocation steady state.
#[allow(clippy::too_many_arguments)]
pub fn median_mttkrp_ns(
    set: &CsfSet,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
    ws: &mut MttkrpWorkspace,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
    warmup: usize,
    reps: usize,
) -> u64 {
    for _ in 0..warmup {
        mttkrp(set, factors, mode, out, ws, team, cfg);
    }
    let mut samples: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            mttkrp(set, factors, mode, out, ws, team, cfg);
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median nanoseconds of `reps` timed `mttkrp_alto` calls after
/// `warmup` untimed ones — the ALTO counterpart of
/// [`median_mttkrp_ns`], reusing the workspace the same way.
#[allow(clippy::too_many_arguments)]
pub fn median_mttkrp_alto_ns(
    alto: &AltoTensor,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
    ws: &mut MttkrpWorkspace,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
    warmup: usize,
    reps: usize,
) -> u64 {
    for _ in 0..warmup {
        mttkrp_alto(alto, factors, mode, out, ws, team, cfg);
    }
    let mut samples: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            mttkrp_alto(alto, factors, mode, out, ws, team, cfg);
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn kernel_label(kind: KernelKind) -> &'static str {
    match kind {
        KernelKind::Root => "root",
        KernelKind::Internal(_) => "internal",
        KernelKind::Leaf => "leaf",
    }
}

fn alto_kernel_label(level: usize, order: usize) -> &'static str {
    if level == 0 {
        "root"
    } else if level == order - 1 {
        "leaf"
    } else {
        "internal"
    }
}

/// The pinned tensor of a workload.
pub fn workload_tensor(w: &BenchWorkload) -> SparseTensor {
    synth::power_law(&w.dims, w.nnz, w.alpha, w.seed)
}

/// Run every baseline cell of `w` on both tensor formats: each kernel
/// family the representation produces, each sync strategy that kernel
/// admits, each specialized rank — timing generic vs specialized
/// dispatch. CSF rows come first, then ALTO rows, each in mode order.
pub fn run_cells(w: &BenchWorkload) -> Vec<BenchCell> {
    let tensor = workload_tensor(w);
    let team = bench_team(w.ntasks);
    // CsfAlloc::One exercises all three kernel families on an order-3
    // tensor: level 0 is root, level 1 internal, level 2 leaf. The ALTO
    // linearization orders its levels by the same dim-sorted
    // permutation, so each mode lands in the same kernel family under
    // both formats and every `(kernel, sync, rank)` point is measured
    // once per format — exactly the pairs the dispatcher compares.
    let set = CsfSet::build(&tensor, CsfAlloc::One, &team, SortVariant::AllOpts);
    let alto = AltoTensor::build(&tensor, &team, SortVariant::AllOpts);

    let mut cells = Vec::new();
    for format in ["csf", "alto"] {
        for mode in 0..tensor.order() {
            let kernel = match format {
                "csf" => kernel_label(set.for_mode(mode).1),
                _ => alto_kernel_label(alto.level_of_mode(mode), tensor.order()),
            };
            // root runs unsynchronized; scatter kernels are measured
            // under both privatization and the lock pool
            let syncs: &[(&'static str, f64)] = if kernel == "root" {
                &[("none", splatt_core::mttkrp::DEFAULT_PRIV_THRESHOLD)]
            } else {
                &[("privatized", 1e12), ("locks", 0.0)]
            };
            for &(sync, priv_threshold) in syncs {
                for rank in BENCH_RANKS {
                    let factors: Vec<Matrix> = tensor
                        .dims()
                        .iter()
                        .enumerate()
                        .map(|(m, &d)| Matrix::random(d, rank, w.seed + m as u64))
                        .collect();
                    let mut out = Matrix::zeros(tensor.dims()[mode], rank);
                    let mut time_path = |specialize: bool| {
                        let cfg = MttkrpConfig {
                            access: MatrixAccess::PointerZip,
                            priv_threshold,
                            specialize,
                            ..Default::default()
                        };
                        let mut ws = MttkrpWorkspace::new(&cfg, w.ntasks);
                        if format == "csf" {
                            median_mttkrp_ns(
                                &set, &factors, mode, &mut out, &mut ws, &team, &cfg, w.warmup,
                                w.reps,
                            )
                        } else {
                            median_mttkrp_alto_ns(
                                &alto, &factors, mode, &mut out, &mut ws, &team, &cfg, w.warmup,
                                w.reps,
                            )
                        }
                    };
                    // Note on leaf-32: the specialization is retired in
                    // the kernel drivers, so `specialize: true` there
                    // times the generic path too — the cell stays in
                    // the grid (speedup ~1.0, never selected) to keep
                    // the baseline schema and coverage stable.
                    let generic_ns = time_path(false);
                    let specialized_ns = time_path(true);
                    cells.push(BenchCell {
                        format,
                        kernel,
                        sync,
                        rank,
                        generic_ns,
                        specialized_ns,
                    });
                }
            }
        }
    }
    cells
}

/// Serialize a baseline to the schema-stable JSON document.
pub fn to_json(w: &BenchWorkload, nnz_actual: usize, cells: &[BenchCell]) -> String {
    let mut out = String::with_capacity(2048);
    let _ = write!(out, "{{\n  \"schema\": \"{BENCH_SCHEMA}\",");
    let dims: Vec<String> = w.dims.iter().map(|d| d.to_string()).collect();
    let _ = write!(
        out,
        "\n  \"workload\": {{\"dims\": [{}], \"nnz\": {}, \"distribution\": \"power_law\", \
         \"alpha\": {:.3}, \"seed\": {}, \"ntasks\": {}, \"reps\": {}, \"warmup\": {}, \
         \"access\": \"C-ref\", \"ranks\": [{}]}},",
        dims.join(", "),
        nnz_actual,
        w.alpha,
        w.seed,
        w.ntasks,
        w.reps,
        w.warmup,
        BENCH_RANKS
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("\n  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"format\": \"{}\", \"kernel\": \"{}\", \"sync\": \"{}\", \"rank\": {}, \
             \"generic_ns\": {}, \"specialized_ns\": {}, \"speedup\": {:.3}}}",
            c.format,
            c.kernel,
            c.sync,
            c.rank,
            c.generic_ns,
            c.specialized_ns,
            c.speedup()
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Run the pinned workload and return the baseline JSON document.
pub fn run_baseline() -> String {
    let w = BenchWorkload::default();
    let nnz = workload_tensor(&w).nnz();
    let cells = run_cells(&w);
    to_json(&w, nnz, &cells)
}

/// The CI regression gate over a baseline document: every cell the
/// dispatcher would actually select with rank specialization must carry
/// a measured speedup of at least 1.0x over its own generic column.
///
/// `DispatchTable::decide` refuses losing specialized cells by
/// construction, so a violation means the committed file was hand-edited
/// or the decide rule regressed — either way CI must fail. Returns one
/// description per offending cell (empty = gate passes).
pub fn dispatch_gate_violations(table: &splatt_core::DispatchTable) -> Vec<String> {
    let mut seen = std::collections::BTreeSet::new();
    let mut violations = Vec::new();
    for c in table.cells() {
        if !seen.insert((c.kernel.clone(), c.sync.clone(), c.rank)) {
            continue;
        }
        let d = table.decide(&c.kernel, &c.sync, c.rank);
        if !d.specialize {
            continue;
        }
        let selected = table.cells().iter().find(|x| {
            x.format == d.format && x.kernel == c.kernel && x.sync == c.sync && x.rank == c.rank
        });
        if let Some(sel) = selected {
            if sel.speedup() < 1.0 {
                violations.push(format!(
                    "{}/{}/{}/r{}: dispatch selected a specialized cell at {:.3}x (< 1.0x)",
                    d.format.label(),
                    sel.kernel,
                    sel.sync,
                    sel.rank,
                    sel.speedup()
                ));
            }
        }
    }
    violations
}

/// Human-readable cell table (printed by `repro bench`).
pub fn render_cells(cells: &[BenchCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<10} {:<12} {:>5} {:>14} {:>14} {:>8}",
        "format", "kernel", "sync", "rank", "generic", "specialized", "speedup"
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{:<6} {:<10} {:<12} {:>5} {:>12}ns {:>12}ns {:>7.2}x",
            c.format,
            c.kernel,
            c.sync,
            c.rank,
            c.generic_ns,
            c.specialized_ns,
            c.speedup()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_probe::json;

    fn tiny() -> BenchWorkload {
        BenchWorkload {
            dims: vec![12, 9, 15],
            nnz: 600,
            alpha: 1.5,
            seed: 7,
            ntasks: 2,
            reps: 1,
            warmup: 0,
        }
    }

    #[test]
    fn cells_cover_both_formats_all_kernels_syncs_and_ranks() {
        let cells = run_cells(&tiny());
        // per format: 1 root sync + 2 syncs for each of the two scatter
        // kernels = 5 sync rows, each at |BENCH_RANKS| ranks
        assert_eq!(cells.len(), 2 * 5 * BENCH_RANKS.len());
        for format in ["csf", "alto"] {
            for kernel in ["root", "internal", "leaf"] {
                for rank in BENCH_RANKS {
                    assert!(
                        cells
                            .iter()
                            .any(|c| c.format == format && c.kernel == kernel && c.rank == rank),
                        "missing cell {format}/{kernel}/{rank}"
                    );
                }
            }
        }
        assert!(cells
            .iter()
            .all(|c| c.generic_ns > 0 && c.specialized_ns > 0));
    }

    #[test]
    fn formats_measure_identical_kernel_sync_rank_points() {
        // the dispatcher compares per (kernel, sync, rank) point across
        // formats — both formats must produce exactly the same point set
        let cells = run_cells(&tiny());
        let points = |format: &str| {
            let mut v: Vec<_> = cells
                .iter()
                .filter(|c| c.format == format)
                .map(|c| (c.kernel, c.sync, c.rank))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(points("csf"), points("alto"));
    }

    #[test]
    fn json_feeds_the_dispatcher() {
        let w = tiny();
        let cells = run_cells(&w);
        let table = splatt_core::DispatchTable::parse_str(&to_json(&w, 600, &cells))
            .expect("baseline JSON must parse as a dispatch table");
        assert_eq!(table.cells().len(), cells.len());
    }

    #[test]
    fn json_is_parseable_and_schema_stable() {
        let w = tiny();
        let cells = run_cells(&w);
        let doc = json::parse(&to_json(&w, 600, &cells)).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(BENCH_SCHEMA));
        let wl = doc.get("workload").unwrap();
        assert_eq!(wl.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(wl.get("distribution").unwrap().as_str(), Some("power_law"));
        let rows = doc.get("cells").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), cells.len());
        for row in rows {
            assert!(["csf", "alto"].contains(&row.get("format").unwrap().as_str().unwrap()));
            assert!(row.get("generic_ns").unwrap().as_u64().is_some());
            assert!(row.get("specialized_ns").unwrap().as_u64().is_some());
            assert!(row.get("speedup").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn render_lists_every_cell() {
        let cells = run_cells(&tiny());
        let text = render_cells(&cells);
        assert_eq!(text.lines().count(), cells.len() + 1);
        assert!(text.contains("speedup"));
    }
}
