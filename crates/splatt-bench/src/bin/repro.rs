//! `repro` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p splatt-bench --bin repro -- all
//! cargo run --release -p splatt-bench --bin repro -- table3 fig9 fig10
//! cargo run --release -p splatt-bench --bin repro -- bench     # baseline
//! cargo run --release -p splatt-bench --bin repro -- list
//! ```
//!
//! `bench` runs the pinned MTTKRP baseline workload and writes
//! `BENCH_mttkrp.json` (override the path with a second argument).
//!
//! `SPLATT_BENCH_FAST=1` runs a reduced protocol (5 iterations, ≤8 tasks).

use splatt_bench::experiments::{run, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!("usage: repro <experiment...|all|list|bench [out.json]>");
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
    std::process::exit(2);
}

fn run_bench_baseline(args: &[String]) {
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| splatt_bench::baseline::BASELINE_FILE.to_string());
    let w = splatt_bench::baseline::BenchWorkload::default();
    let nnz = splatt_bench::baseline::workload_tensor(&w).nnz();
    eprintln!(
        "[repro] bench baseline: dims {:?}, {} nnz, {} tasks, median of {}",
        w.dims, nnz, w.ntasks, w.reps
    );
    let start = std::time::Instant::now();
    let cells = splatt_bench::baseline::run_cells(&w);
    print!("{}", splatt_bench::baseline::render_cells(&cells));
    let json = splatt_bench::baseline::to_json(&w, nnz, &cells);
    // the dispatch regression gate: the baseline we are about to write
    // must never steer the dispatcher onto a measured-slower cell
    let table = splatt_core::DispatchTable::parse_str(&json).unwrap_or_else(|e| {
        eprintln!("[repro] generated baseline does not feed the dispatcher: {e}");
        std::process::exit(1);
    });
    let violations = splatt_bench::baseline::dispatch_gate_violations(&table);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("[repro] dispatch gate violation: {v}");
        }
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("[repro] cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[repro] wrote {out_path} ({} cells, dispatch gate clean) in {:.1}s",
        cells.len(),
        start.elapsed().as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "list" {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    if args[0] == "bench" {
        run_bench_baseline(&args[1..]);
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    if splatt_bench::datasets::fast_mode() {
        eprintln!("[repro] SPLATT_BENCH_FAST=1: 5 iterations, tasks capped at 8");
    }

    let start = std::time::Instant::now();
    for id in &ids {
        match run(id) {
            Some(table) => table.emit(),
            None => {
                eprintln!("unknown experiment '{id}'");
                usage();
            }
        }
    }
    eprintln!(
        "[repro] {} experiment(s) in {:.1}s",
        ids.len(),
        start.elapsed().as_secs_f64()
    );
}
