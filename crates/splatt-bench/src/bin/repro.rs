//! `repro` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p splatt-bench --bin repro -- all
//! cargo run --release -p splatt-bench --bin repro -- table3 fig9 fig10
//! cargo run --release -p splatt-bench --bin repro -- list
//! ```
//!
//! `SPLATT_BENCH_FAST=1` runs a reduced protocol (5 iterations, ≤8 tasks).

use splatt_bench::experiments::{run, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!("usage: repro <experiment...|all|list>");
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "list" {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    if splatt_bench::datasets::fast_mode() {
        eprintln!("[repro] SPLATT_BENCH_FAST=1: 5 iterations, tasks capped at 8");
    }

    let start = std::time::Instant::now();
    for id in &ids {
        match run(id) {
            Some(table) => table.emit(),
            None => {
                eprintln!("unknown experiment '{id}'");
                usage();
            }
        }
    }
    eprintln!(
        "[repro] {} experiment(s) in {:.1}s",
        ids.len(),
        start.elapsed().as_secs_f64()
    );
}
