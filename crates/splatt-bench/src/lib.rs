//! Benchmark harness for splatt-rs.
//!
//! The `repro` binary regenerates every table and figure in the evaluation
//! section of *"Parallel Sparse Tensor Decomposition in Chapel"*
//! (Rolinger et al.): Table I (data sets), Table III (initial per-routine
//! runtimes), Figures 1–10, plus two ablations that probe design choices
//! the paper discusses but does not plot (Qthreads/OpenMP interference and
//! the privatization threshold).
//!
//! ```sh
//! cargo run --release -p splatt-bench --bin repro -- all      # everything
//! cargo run --release -p splatt-bench --bin repro -- fig9     # one figure
//! ```
//!
//! Output goes to stdout as aligned tables and to `results/<exp>.csv`.
//!
//! Environment knobs:
//! * `SPLATT_BENCH_FAST=1` — 5 CP-ALS iterations instead of the paper's
//!   20, and task counts capped at 8 (for smoke runs).
//! * `SPLATT_BENCH_SCALE=<f64>` — multiply the default data set scales.
//!
//! The paper's testbed is a 36-core Broadwell; CI boxes are typically far
//! smaller, so data sets are scaled-down instances of the paper's shapes
//! (the scaling preserves the `dim * ntasks / nnz` ratios that drive every
//! qualitative behaviour — see `DESIGN.md`). Task counts above the
//! physical core count run oversubscribed; relative shapes, not absolute
//! speedups, are the reproduction target.

pub mod baseline;
pub mod datasets;
pub mod experiments;
pub mod harness;
pub mod microbench;
pub mod report;
