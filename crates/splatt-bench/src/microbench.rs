//! Minimal Criterion-compatible micro-benchmark runner.
//!
//! The bench files under `benches/` were written against the small slice
//! of Criterion's API they actually use — `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros. This module provides
//! that slice with no external dependencies: each benchmark is
//! auto-calibrated to a minimum per-sample runtime, a fixed number of
//! samples is collected, and min/mean/max per-iteration times are printed
//! in Criterion's familiar `time: [low mid high]` shape.
//!
//! It is intentionally *not* a statistics engine — no outlier analysis,
//! no baselines. The repo's paper-grade measurements live in the `repro`
//! binary; these benches exist to compare kernel variants quickly and to
//! check (as the observability work requires) that disabled probes do not
//! measurably slow the hot loops.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` should treat its per-sample inputs. Only the
/// variants the benches use are distinguished; all sizes run one routine
/// invocation per setup call, which matches Criterion's `LargeInput`
/// semantics closely enough for our ms-scale kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark identifier: `group/function` or `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` — e.g. `BenchmarkId::new("locks", "Atomic")`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id — e.g. `BenchmarkId::from_parameter(8)`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One benchmark's collected samples: total duration and iteration count
/// per sample.
#[derive(Debug, Default, Clone)]
pub struct Samples {
    samples: Vec<(Duration, u64)>,
}

impl Samples {
    fn record(&mut self, elapsed: Duration, iters: u64) {
        self.samples.push((elapsed, iters));
    }

    /// Per-iteration nanoseconds of every sample.
    pub fn per_iter_nanos(&self) -> Vec<f64> {
        self.samples
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
            .collect()
    }

    /// (min, mean, max) per-iteration nanoseconds, or `None` when empty.
    pub fn stats(&self) -> Option<(f64, f64, f64)> {
        let per = self.per_iter_nanos();
        if per.is_empty() {
            return None;
        }
        let min = per.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per.iter().copied().fold(0.0, f64::max);
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        Some((min, mean, max))
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Passed to every benchmark closure; collects timed samples.
pub struct Bencher<'a> {
    samples: &'a mut Samples,
    sample_count: usize,
    min_sample_time: Duration,
    time_budget: Duration,
}

impl Bencher<'_> {
    /// Time `f` repeatedly. The iteration count per sample is calibrated
    /// so a sample takes at least the configured minimum; the calibration
    /// run is kept as the first sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let spent_start = Instant::now();
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_sample_time || iters >= 1 << 20 {
                self.samples.record(elapsed, iters);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 1..self.sample_count {
            if spent_start.elapsed() > self.time_budget {
                break;
            }
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.record(start.elapsed(), iters);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let spent_start = Instant::now();
        for i in 0..self.sample_count {
            if i > 0 && spent_start.elapsed() > self.time_budget {
                break;
            }
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.record(start.elapsed(), 1);
        }
    }
}

/// Top-level runner handed to each `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
    min_sample_time: Duration,
    time_budget: Duration,
    benchmarks_run: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            min_sample_time: Duration::from_millis(1),
            time_budget: Duration::from_secs(3),
            benchmarks_run: 0,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(None, id.into(), sample_size, f);
        self
    }

    fn run_one(
        &mut self,
        group: Option<&str>,
        id: BenchmarkId,
        sample_size: usize,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> Samples {
        let mut samples = Samples::default();
        {
            let mut b = Bencher {
                samples: &mut samples,
                sample_count: sample_size.max(1),
                min_sample_time: self.min_sample_time,
                time_budget: self.time_budget,
            };
            f(&mut b);
        }
        let full_name = match group {
            Some(g) => format!("{g}/{}", id.id),
            None => id.id.clone(),
        };
        match samples.stats() {
            Some((min, mean, max)) => println!(
                "{full_name:<44} time: [{} {} {}]",
                fmt_nanos(min),
                fmt_nanos(mean),
                fmt_nanos(max)
            ),
            None => println!("{full_name:<44} time: [no samples]"),
        }
        self.benchmarks_run += 1;
        samples
    }

    /// Print a closing line; called by `criterion_main!`.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks run", self.benchmarks_run);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Override the per-benchmark measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.time_budget = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(self.c.default_sample_size);
        self.c
            .run_one(Some(&self.name.clone()), id.into(), sample_size, f);
        self
    }

    /// Close the group (printing happens per-benchmark; this exists for
    /// API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function, Criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::microbench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define the bench binary's `main`, Criterion-style:
/// `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_calibrates_and_samples() {
        let mut c = Criterion {
            default_sample_size: 4,
            min_sample_time: Duration::from_micros(50),
            time_budget: Duration::from_secs(1),
            benchmarks_run: 0,
        };
        let mut calls = 0u64;
        let samples = c.run_one(None, BenchmarkId::from_parameter("spin"), 4, |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        assert!(calls > 0);
        let (min, mean, max) = samples.stats().expect("samples collected");
        assert!(min <= mean && mean <= max);
        assert!(min > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let samples = c.run_one(None, BenchmarkId::new("batched", 1), 3, |b| {
            b.iter_batched(
                || vec![1.0f64; 64],
                |v| v.iter().sum::<f64>(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(samples.per_iter_nanos().len(), 3);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("locks", "Atomic").id, "locks/Atomic");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn nanos_formatting_picks_units() {
        assert!(fmt_nanos(12.0).ends_with("ns"));
        assert!(fmt_nanos(12_000.0).ends_with("µs"));
        assert!(fmt_nanos(12_000_000.0).ends_with("ms"));
        assert!(fmt_nanos(2e9).ends_with(" s"));
    }
}
