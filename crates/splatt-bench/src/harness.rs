//! Timing wrappers shared by every experiment.

use crate::datasets::{bench_iters, BENCH_RANK};
use splatt_core::MatrixAccess;
use splatt_core::{cp_als_with_team, CpalsOptions, Implementation};
use splatt_locks::LockStrategy;
use splatt_par::{Routine, TaskTeam, TeamConfig};
use splatt_tensor::{SortVariant, SparseTensor};

/// Per-routine seconds for one CP-ALS run — one row of the paper's
/// Table III / Figures 5–8.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoutineSeconds {
    pub mttkrp: f64,
    pub sort: f64,
    pub ata: f64,
    pub norm: f64,
    pub fit: f64,
    pub inverse: f64,
    pub total: f64,
}

impl RoutineSeconds {
    fn from_timers(t: &splatt_par::TimerRegistry) -> Self {
        RoutineSeconds {
            mttkrp: t.seconds(Routine::Mttkrp),
            sort: t.seconds(Routine::Sort),
            ata: t.seconds(Routine::AtA),
            norm: t.seconds(Routine::MatNorm),
            fit: t.seconds(Routine::Fit),
            inverse: t.seconds(Routine::Inverse),
            total: t.seconds(Routine::CpdTotal),
        }
    }
}

/// Build a task team the way the paper ultimately configures Qthreads:
/// `QT_SPINCOUNT=300` (Section V-E). Also the sane choice for
/// oversubscribed CI hosts.
pub fn team_for(ntasks: usize) -> TaskTeam {
    TaskTeam::with_config(ntasks, TeamConfig::short_spin())
}

/// Fully-specified CP-ALS run configuration for one measurement.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    pub access: MatrixAccess,
    pub locks: LockStrategy,
    pub sort_variant: SortVariant,
    pub ntasks: usize,
}

impl RunSpec {
    /// The knobs bundled by an [`Implementation`] preset.
    pub fn of(imp: Implementation, ntasks: usize) -> Self {
        let (access, locks, sort_variant) = imp.knobs();
        RunSpec {
            access,
            locks,
            sort_variant,
            ntasks,
        }
    }
}

/// Run the paper's protocol (rank 35, 20 iterations, tolerance 0) under
/// `spec` and return the per-routine seconds and final fit.
pub fn run_cpals(tensor: &SparseTensor, spec: RunSpec) -> (RoutineSeconds, f64) {
    let opts = CpalsOptions {
        rank: BENCH_RANK,
        max_iters: bench_iters(),
        tolerance: 0.0,
        ntasks: spec.ntasks,
        access: spec.access,
        locks: spec.locks,
        sort_variant: spec.sort_variant,
        ..Default::default()
    };
    let team = team_for(spec.ntasks);
    let out = cp_als_with_team(tensor, &opts, &team);
    (RoutineSeconds::from_timers(&out.timers), out.fit)
}

/// Time just the pre-processing sort under a variant: the sorts SPLATT
/// performs for its (default, two-representation) CSF build.
pub fn sort_seconds(tensor: &SparseTensor, variant: SortVariant, ntasks: usize) -> f64 {
    let team = team_for(ntasks);
    let timers = splatt_par::TimerRegistry::new();
    let _set = splatt_core::CsfSet::build_timed(
        tensor,
        splatt_core::CsfAlloc::Two,
        &team,
        variant,
        &timers,
    );
    timers.seconds(Routine::Sort)
}

/// Format seconds with 4 significant-ish digits, like the paper's tables.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_tensor::synth;

    #[test]
    fn run_cpals_produces_positive_times() {
        let t = synth::random_uniform(&[30, 20, 40], 2_000, 3);
        // tiny protocol for the test: fast mode not assumed, so this runs
        // the full iteration count — keep the tensor tiny.
        let (secs, fit) = run_cpals(&t, RunSpec::of(Implementation::Reference, 2));
        assert!(secs.mttkrp > 0.0);
        assert!(secs.sort > 0.0);
        assert!(secs.total > 0.0);
        assert!(fit.is_finite());
    }

    #[test]
    fn sort_seconds_positive_and_variant_sensitive() {
        let t = synth::power_law(&[100, 60, 140], 30_000, 1.8, 4);
        let opt = sort_seconds(&t, SortVariant::AllOpts, 2);
        let initial = sort_seconds(&t, SortVariant::Initial, 2);
        assert!(opt > 0.0 && initial > 0.0);
        // not asserting an ordering at this size — just that both run
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(123.456), "123.5");
        assert_eq!(fmt_secs(12.345), "12.35");
        assert_eq!(fmt_secs(0.12345), "0.1235");
    }
}
