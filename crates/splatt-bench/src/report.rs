//! Aligned-table printing and CSV output for the repro experiments.

use std::io::Write;
use std::path::PathBuf;

/// A titled table: headers plus string rows, printed aligned to stdout
/// and serializable as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, used as the CSV file stem (e.g. `fig9`).
    pub id: String,
    /// Human title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the headers.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render aligned to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:>w$}  ", w = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w + 2))
                .collect::<String>()
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Write as `results/<id>.csv`.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()?;
        Ok(path)
    }

    /// Print and write CSV, reporting the CSV path.
    pub fn emit(&self) {
        self.print();
        match self.write_csv() {
            Ok(path) => println!("[csv] {}", path.display()),
            Err(e) => eprintln!("[csv] write failed: {e}"),
        }
    }
}

/// Lay a [`splatt_probe::ProfileReport`] out as the paper's Table III:
/// one row per routine with absolute seconds and share of CPD total,
/// ready for [`Table::emit`] alongside the other experiment tables.
pub fn profile_table(report: &splatt_probe::ProfileReport) -> Table {
    let title = format!(
        "Per-routine runtime, Table III layout (tasks={}, rank={}, iterations={}, locks={})",
        report.ntasks, report.rank, report.iterations, report.lock_strategy
    );
    let mut t = Table::new("profile", &title, &["routine", "seconds", "share"]);
    let total = report.cpd_seconds();
    for row in &report.routines {
        let share = if total > 0.0 {
            100.0 * row.seconds / total
        } else {
            0.0
        };
        t.push(vec![
            row.routine.clone(),
            format!("{:.4}", row.seconds),
            format!("{share:.1}%"),
        ]);
    }
    t
}

/// Directory experiment CSVs land in (`./results` under the workspace, or
/// the current directory's `results/` when run elsewhere).
pub fn results_dir() -> PathBuf {
    // prefer the workspace root when invoked via cargo
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(ws) = p.parent().and_then(|p| p.parent()) {
            return ws.join("results");
        }
    }
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_must_match_headers() {
        let mut t = Table::new("t", "title", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn bad_arity_panics() {
        let mut t = Table::new("t", "title", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn profile_table_lays_out_routine_rows() {
        let report = splatt_probe::ProfileReport {
            ntasks: 2,
            rank: 35,
            iterations: 20,
            lock_strategy: "Atomic".into(),
            routines: vec![
                splatt_probe::RoutineRow {
                    routine: "MTTKRP".into(),
                    seconds: 1.5,
                },
                splatt_probe::RoutineRow {
                    routine: "CPD total".into(),
                    seconds: 3.0,
                },
            ],
            ..Default::default()
        };
        let t = profile_table(&report);
        assert_eq!(t.headers, vec!["routine", "seconds", "share"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0], vec!["MTTKRP", "1.5000", "50.0%"]);
        assert!(t.title.contains("rank=35"));
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("unit_test_table", "x", &["h1", "h2"]);
        t.push(vec!["v1".into(), "v2".into()]);
        let path = t.write_csv().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "h1,h2\nv1,v2\n");
        std::fs::remove_file(path).ok();
    }
}
