//! Bench-scale instances of the paper's data sets.

use splatt_tensor::{synth, SparseTensor};

/// Default scale for the YELP stand-in (100 k nonzeros at 1/80).
pub const YELP_SCALE: f64 = 1.0 / 80.0;

/// Default scale for the NELL-2 stand-in (770 k nonzeros at 1/100).
pub const NELL2_SCALE: f64 = 1.0 / 100.0;

/// Scale used for the three data sets that only appear in Table I.
pub const OTHERS_SCALE: f64 = 1.0 / 500.0;

/// `SPLATT_BENCH_SCALE` multiplier applied to all defaults.
pub fn scale_multiplier() -> f64 {
    std::env::var("SPLATT_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// `true` when `SPLATT_BENCH_FAST=1` (smoke-run mode).
pub fn fast_mode() -> bool {
    std::env::var("SPLATT_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// CP-ALS iterations per run: the paper's 20, or 5 in fast mode.
pub fn bench_iters() -> usize {
    if fast_mode() {
        5
    } else {
        20
    }
}

/// The paper's decomposition rank.
pub const BENCH_RANK: usize = 35;

/// The paper's threads/tasks axis (1..32), capped at 8 in fast mode.
pub fn task_counts() -> Vec<usize> {
    let all = vec![1, 2, 4, 8, 16, 32];
    let cap = if fast_mode() { 8 } else { 32 };
    all.into_iter().filter(|&t| t <= cap).collect()
}

/// The YELP stand-in at bench scale. Sparse modes: the MTTKRP takes the
/// lock path beyond 2–3 tasks, as in the paper.
pub fn yelp() -> SparseTensor {
    synth::YELP.generate(YELP_SCALE * scale_multiplier(), 0xE1)
}

/// The NELL-2 stand-in at bench scale. Dense-ish modes: privatization
/// wins at every task count, as in the paper.
pub fn nell2() -> SparseTensor {
    synth::NELL2.generate(NELL2_SCALE * scale_multiplier(), 0xE2)
}

/// Look a data set up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<SparseTensor> {
    match name.to_ascii_lowercase().as_str() {
        "yelp" => Some(yelp()),
        "nell-2" | "nell2" => Some(nell2()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yelp_instance_triggers_locks_beyond_two_tasks() {
        let t = yelp();
        let mut d = t.dims().to_vec();
        d.sort_unstable();
        let mid = d[1];
        // the paper's decision boundary must survive scaling
        assert!(splatt_core::mttkrp::use_privatization(
            mid,
            2,
            t.nnz(),
            0.02
        ));
        assert!(!splatt_core::mttkrp::use_privatization(
            mid,
            8,
            t.nnz(),
            0.02
        ));
    }

    #[test]
    fn nell2_instance_stays_privatized_at_32_tasks() {
        let t = nell2();
        let mut d = t.dims().to_vec();
        d.sort_unstable();
        let mid = d[1];
        assert!(splatt_core::mttkrp::use_privatization(
            mid,
            32,
            t.nnz(),
            0.02
        ));
    }

    #[test]
    fn by_name_resolves() {
        assert!(by_name("YELP").is_some());
        assert!(by_name("nell-2").is_some());
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn task_counts_are_powers_of_two_up_to_32() {
        // (cannot assert fast mode off: environment-dependent)
        let counts = task_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.iter().all(|&t| t.is_power_of_two()));
    }
}
