//! Criterion end-to-end benchmark: one CP-ALS solve per implementation
//! preset (the Table III / Figure 9 comparison in micro form), plus CSF
//! construction.

use splatt_bench::microbench::{BenchmarkId, Criterion};
use splatt_bench::{criterion_group, criterion_main};
use splatt_core::{cp_als, CpalsOptions, CsfAlloc, CsfSet, Implementation};
use splatt_par::{TaskTeam, TeamConfig};
use splatt_tensor::{synth, SortVariant};

fn bench_cpals_implementations(c: &mut Criterion) {
    let tensor = synth::YELP.generate(1.0 / 800.0, 5);
    let mut group = c.benchmark_group("cpals_impl");
    group.sample_size(10);
    for imp in [
        Implementation::Reference,
        Implementation::PortedInitial,
        Implementation::PortedOptimized,
    ] {
        let opts = CpalsOptions {
            rank: 16,
            max_iters: 3,
            tolerance: 0.0,
            ntasks: 2,
            ..Default::default()
        }
        .with_implementation(imp);
        group.bench_function(BenchmarkId::from_parameter(imp.label()), |b| {
            b.iter(|| cp_als(&tensor, &opts))
        });
    }
    group.finish();
}

fn bench_csf_build(c: &mut Criterion) {
    let tensor = synth::NELL2.generate(1.0 / 800.0, 6);
    let team = TaskTeam::with_config(2, TeamConfig::short_spin());
    let mut group = c.benchmark_group("csf_build");
    group.sample_size(10);
    for alloc in [CsfAlloc::One, CsfAlloc::Two, CsfAlloc::All] {
        group.bench_function(BenchmarkId::from_parameter(format!("{alloc:?}")), |b| {
            b.iter(|| CsfSet::build(&tensor, alloc, &team, SortVariant::AllOpts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cpals_implementations, bench_csf_build);
criterion_main!(benches);
