//! Criterion benchmark for tensor completion sweeps, including the
//! rank scaling (each sweep is `O(nnz * R^2)` plus `O(rows * R^3)`
//! Cholesky solves).

use splatt_bench::microbench::{BenchmarkId, Criterion};
use splatt_bench::{criterion_group, criterion_main};
use splatt_core::{tensor_complete, CompletionOptions};
use splatt_tensor::synth;

fn bench_completion_rank(c: &mut Criterion) {
    let tensor = synth::NETFLIX.generate(1.0 / 2000.0, 4);
    let mut group = c.benchmark_group("completion_rank");
    group.sample_size(10);
    for rank in [4usize, 8, 16] {
        let opts = CompletionOptions {
            rank,
            max_iters: 3,
            tolerance: 0.0,
            ntasks: 2,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::from_parameter(rank), |b| {
            b.iter(|| tensor_complete(&tensor, &opts))
        });
    }
    group.finish();
}

fn bench_completion_tasks(c: &mut Criterion) {
    let tensor = synth::NETFLIX.generate(1.0 / 2000.0, 5);
    let mut group = c.benchmark_group("completion_tasks");
    group.sample_size(10);
    for ntasks in [1usize, 2, 4] {
        let opts = CompletionOptions {
            rank: 8,
            max_iters: 3,
            tolerance: 0.0,
            ntasks,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::from_parameter(ntasks), |b| {
            b.iter(|| tensor_complete(&tensor, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_completion_rank, bench_completion_tasks);
criterion_main!(benches);
