//! Criterion micro-benchmarks for the dense substrate: the Gram-matrix
//! product (SYRK), Cholesky solve (the paper's "Inverse" routine), the
//! eigen fallback, and column normalization.

use splatt_bench::microbench::{self as criterion, BenchmarkId, Criterion};
use splatt_bench::{criterion_group, criterion_main};
use splatt_dense::{
    cholesky_factor, cholesky_solve, jacobi_eigen, mat_ata, normalize_columns, solve_normals,
    MatNorm, Matrix,
};

const RANK: usize = 35;

fn bench_mat_ata(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_ata");
    group.sample_size(10);
    for rows in [1_000usize, 10_000, 100_000] {
        let a = Matrix::random(rows, RANK, 1);
        group.bench_function(BenchmarkId::from_parameter(rows), |b| {
            b.iter(|| mat_ata(&a))
        });
    }
    group.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let a = Matrix::random(10_000, RANK, 2);
    let mut v = mat_ata(&a);
    for i in 0..RANK {
        v[(i, i)] += 1.0;
    }
    let m = Matrix::random(10_000, RANK, 3);

    let mut group = c.benchmark_group("dense_inverse");
    group.sample_size(10);
    group.bench_function("cholesky_factor", |b| {
        b.iter(|| cholesky_factor(&v).unwrap())
    });
    let l = cholesky_factor(&v).unwrap();
    group.bench_function("cholesky_solve_10k_rhs", |b| {
        b.iter_batched(
            || m.clone(),
            |mut rhs| cholesky_solve(&l, &mut rhs),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("solve_normals_10k", |b| {
        b.iter_batched(
            || m.clone(),
            |mut rhs| solve_normals(&v, &mut rhs),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("jacobi_eigen_35", |b| b.iter(|| jacobi_eigen(&v)));
    group.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let a = Matrix::random(100_000, RANK, 4);
    let mut group = c.benchmark_group("dense_normalize");
    group.sample_size(10);
    for (label, which) in [("two", MatNorm::Two), ("max", MatNorm::Max)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || (a.clone(), vec![0.0; RANK]),
                |(mut m, mut l)| normalize_columns(&mut m, &mut l, which),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mat_ata, bench_inverse, bench_normalize);
criterion_main!(benches);
