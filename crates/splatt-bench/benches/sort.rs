//! Criterion micro-benchmarks for the pre-processing sort (Figure 1's
//! variants) and its two phases.

use splatt_bench::microbench::{self as criterion, BenchmarkId, Criterion};
use splatt_bench::{criterion_group, criterion_main};
use splatt_par::{TaskTeam, TeamConfig};
use splatt_tensor::{sort, synth, SortVariant};

fn bench_sort_variants(c: &mut Criterion) {
    let tensor = synth::NELL2.generate(1.0 / 800.0, 7);
    let team = TaskTeam::with_config(2, TeamConfig::short_spin());

    let mut group = c.benchmark_group("sort_variants");
    group.sample_size(10);
    for variant in SortVariant::ALL {
        group.bench_function(BenchmarkId::from_parameter(variant.label()), |b| {
            b.iter_batched(
                || tensor.clone(),
                |mut t| sort::sort_for_mode(&mut t, 0, &team, variant),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_sort_modes(c: &mut Criterion) {
    // skew differs per mode: per-mode sort cost shows the bucket shape
    let tensor = synth::YELP.generate(1.0 / 800.0, 9);
    let team = TaskTeam::with_config(2, TeamConfig::short_spin());

    let mut group = c.benchmark_group("sort_by_mode");
    group.sample_size(10);
    for mode in 0..3 {
        group.bench_function(BenchmarkId::from_parameter(mode), |b| {
            b.iter_batched(
                || tensor.clone(),
                |mut t| sort::sort_for_mode(&mut t, mode, &team, SortVariant::AllOpts),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort_variants, bench_sort_modes);
criterion_main!(benches);
