//! Criterion micro-benchmarks for the MTTKRP kernels: access strategies,
//! kernel kinds (root/internal/leaf), and synchronization modes.

use splatt_bench::microbench::{BenchmarkId, Criterion};
use splatt_bench::{criterion_group, criterion_main};
use splatt_core::mttkrp::{mttkrp, MttkrpConfig, MttkrpWorkspace};
use splatt_core::{CsfAlloc, CsfSet, MatrixAccess};
use splatt_dense::Matrix;
use splatt_locks::LockStrategy;
use splatt_par::{TaskTeam, TeamConfig};
use splatt_tensor::{synth, SortVariant};

const RANK: usize = 35;

fn bench_access_strategies(c: &mut Criterion) {
    let tensor = synth::YELP.generate(1.0 / 400.0, 1);
    let team = TaskTeam::with_config(2, TeamConfig::short_spin());
    let set = CsfSet::build(&tensor, CsfAlloc::Two, &team, SortVariant::AllOpts);
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, RANK, m as u64))
        .collect();

    let mut group = c.benchmark_group("mttkrp_access");
    group.sample_size(10);
    for access in [
        MatrixAccess::RowCopy,
        MatrixAccess::Index2D,
        MatrixAccess::PointerChecked,
        MatrixAccess::PointerZip,
    ] {
        let cfg = MttkrpConfig {
            access,
            ..Default::default()
        };
        let mut ws = MttkrpWorkspace::new(&cfg, 2);
        let mut out = Matrix::zeros(tensor.dims()[0], RANK);
        group.bench_function(BenchmarkId::from_parameter(access.label()), |b| {
            b.iter(|| {
                mttkrp(&set, &factors, 0, &mut out, &mut ws, &team, &cfg);
            })
        });
    }
    group.finish();
}

fn bench_kernel_kinds(c: &mut Criterion) {
    // One-representation CSF: mode at root / internal / leaf exercises the
    // three kernels on the same tensor.
    let tensor = synth::NELL2.generate(1.0 / 1000.0, 2);
    let team = TaskTeam::with_config(2, TeamConfig::short_spin());
    let set = CsfSet::build(&tensor, CsfAlloc::One, &team, SortVariant::AllOpts);
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, RANK, m as u64))
        .collect();
    let root_mode = set.csfs()[0].dim_perm()[0];
    let internal_mode = set.csfs()[0].dim_perm()[1];
    let leaf_mode = set.csfs()[0].dim_perm()[2];

    let mut group = c.benchmark_group("mttkrp_kernel");
    group.sample_size(10);
    for (label, mode) in [
        ("root", root_mode),
        ("internal", internal_mode),
        ("leaf", leaf_mode),
    ] {
        let cfg = MttkrpConfig::default();
        let mut ws = MttkrpWorkspace::new(&cfg, 2);
        let mut out = Matrix::zeros(tensor.dims()[mode], RANK);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                mttkrp(&set, &factors, mode, &mut out, &mut ws, &team, &cfg);
            })
        });
    }
    group.finish();
}

fn bench_sync_modes(c: &mut Criterion) {
    let tensor = synth::YELP.generate(1.0 / 400.0, 3);
    let team = TaskTeam::with_config(4, TeamConfig::short_spin());
    let set = CsfSet::build(&tensor, CsfAlloc::One, &team, SortVariant::AllOpts);
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, RANK, m as u64))
        .collect();
    let internal_mode = set.csfs()[0].dim_perm()[1];

    let mut group = c.benchmark_group("mttkrp_sync");
    group.sample_size(10);
    // privatized
    {
        let cfg = MttkrpConfig {
            priv_threshold: 1e12,
            ..Default::default()
        };
        let mut ws = MttkrpWorkspace::new(&cfg, 4);
        let mut out = Matrix::zeros(tensor.dims()[internal_mode], RANK);
        group.bench_function("privatized", |b| {
            b.iter(|| {
                mttkrp(
                    &set,
                    &factors,
                    internal_mode,
                    &mut out,
                    &mut ws,
                    &team,
                    &cfg,
                )
            })
        });
    }
    // each lock strategy, forced
    for locks in LockStrategy::ALL {
        let cfg = MttkrpConfig {
            locks,
            priv_threshold: 0.0,
            ..Default::default()
        };
        let mut ws = MttkrpWorkspace::new(&cfg, 4);
        let mut out = Matrix::zeros(tensor.dims()[internal_mode], RANK);
        group.bench_function(BenchmarkId::new("locks", locks.label()), |b| {
            b.iter(|| {
                mttkrp(
                    &set,
                    &factors,
                    internal_mode,
                    &mut out,
                    &mut ws,
                    &team,
                    &cfg,
                )
            })
        });
    }
    group.finish();
}

fn bench_probe_overhead(c: &mut Criterion) {
    // Acceptance gate for the observability layer: with no probe attached
    // the instrumented MTTKRP must stay within noise of its pre-probe
    // cost, and the "probed" row shows what enabling everything costs.
    use splatt_probe::MttkrpProbe;
    use std::sync::Arc;

    let tensor = synth::YELP.generate(1.0 / 400.0, 4);
    let team = TaskTeam::with_config(2, TeamConfig::short_spin());
    let set = CsfSet::build(&tensor, CsfAlloc::One, &team, SortVariant::AllOpts);
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, RANK, m as u64))
        .collect();
    let internal_mode = set.csfs()[0].dim_perm()[1];
    let cfg = MttkrpConfig {
        priv_threshold: 0.0,
        ..Default::default()
    };

    let mut group = c.benchmark_group("mttkrp_probe");
    group.sample_size(10);
    {
        let mut ws = MttkrpWorkspace::new(&cfg, 2);
        let mut out = Matrix::zeros(tensor.dims()[internal_mode], RANK);
        group.bench_function("disabled", |b| {
            b.iter(|| {
                mttkrp(
                    &set,
                    &factors,
                    internal_mode,
                    &mut out,
                    &mut ws,
                    &team,
                    &cfg,
                )
            })
        });
    }
    {
        let mut ws = MttkrpWorkspace::new(&cfg, 2);
        ws.set_probe(Some(Arc::new(MttkrpProbe::new(2))));
        let mut out = Matrix::zeros(tensor.dims()[internal_mode], RANK);
        group.bench_function("probed", |b| {
            b.iter(|| {
                mttkrp(
                    &set,
                    &factors,
                    internal_mode,
                    &mut out,
                    &mut ws,
                    &team,
                    &cfg,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_access_strategies,
    bench_kernel_kinds,
    bench_sync_modes,
    bench_probe_overhead
);
criterion_main!(benches);
