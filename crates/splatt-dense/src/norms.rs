//! Column normalization of factor matrices (SPLATT's `mat_normalize`).
//!
//! CP-ALS normalizes the columns of each factor matrix after updating it,
//! storing the norms in the weight vector `lambda` (lines 6/9/12 of
//! Algorithm 1). SPLATT uses the 2-norm on the first ALS iteration and the
//! max-norm (clamped below at 1 so `lambda` never grows without bound) on
//! subsequent iterations; both are reproduced here and the paper's
//! "Mat norm" timer covers exactly this routine.

use crate::Matrix;
use splatt_rt::par;

/// Which column norm to use, matching SPLATT's `MAT_NORM_2` / `MAT_NORM_MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatNorm {
    /// Euclidean column norm. Used on the first ALS iteration.
    Two,
    /// Maximum-absolute-value column norm, clamped below at 1.0.
    /// Used on subsequent iterations so `lambda` absorbs only growth.
    Max,
}

/// Number of rows above which column-norm accumulation runs in parallel.
const NORM_PAR_THRESHOLD: usize = 8192;

/// Normalize the columns of `a` in place, writing the per-column norms into
/// `lambda`.
///
/// Columns whose norm is zero (for [`MatNorm::Two`]) are left untouched and
/// get `lambda = 0`; for [`MatNorm::Max`] the norm is clamped to at least 1
/// (SPLATT behaviour), so division is always safe.
///
/// # Panics
/// Panics if `lambda.len() != a.cols()`.
pub fn normalize_columns(a: &mut Matrix, lambda: &mut [f64], which: MatNorm) {
    let cols = a.cols();
    assert_eq!(
        lambda.len(),
        cols,
        "normalize_columns: lambda length {} != cols {}",
        lambda.len(),
        cols
    );
    lambda.fill(0.0);

    // accumulate column norms
    let accumulate = |rows: &[f64]| -> Vec<f64> {
        let mut local = vec![0.0; cols];
        match which {
            MatNorm::Two => {
                for row in rows.chunks_exact(cols) {
                    for (acc, &v) in local.iter_mut().zip(row) {
                        *acc += v * v;
                    }
                }
            }
            MatNorm::Max => {
                for row in rows.chunks_exact(cols) {
                    for (acc, &v) in local.iter_mut().zip(row) {
                        *acc = acc.max(v.abs());
                    }
                }
            }
        }
        local
    };

    let combined: Vec<f64> = if a.rows() >= NORM_PAR_THRESHOLD {
        let nchunks = par::current_num_threads().max(1);
        let rows_per = a.rows().div_ceil(nchunks).max(1);
        let chunk_len = rows_per * cols;
        let data = a.as_slice();
        let n_chunks = data.len().div_ceil(chunk_len);
        par::par_map_reduce(
            n_chunks,
            || vec![0.0; cols],
            |c| {
                let lo = c * chunk_len;
                let hi = (lo + chunk_len).min(data.len());
                accumulate(&data[lo..hi])
            },
            |mut acc, local| {
                for (a, l) in acc.iter_mut().zip(local) {
                    match which {
                        MatNorm::Two => *a += l,
                        MatNorm::Max => *a = a.max(l),
                    }
                }
                acc
            },
        )
    } else {
        accumulate(a.as_slice())
    };

    match which {
        MatNorm::Two => {
            for (l, sumsq) in lambda.iter_mut().zip(combined) {
                *l = sumsq.sqrt();
            }
        }
        MatNorm::Max => {
            for (l, m) in lambda.iter_mut().zip(combined) {
                *l = m.max(1.0);
            }
        }
    }

    // scale columns
    let inv: Vec<f64> = lambda
        .iter()
        .map(|&l| if l > 0.0 { 1.0 / l } else { 0.0 })
        .collect();
    for row in a.as_mut_slice().chunks_exact_mut(cols) {
        for (v, &s) in row.iter_mut().zip(&inv) {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_norm2(a: &Matrix, j: usize) -> f64 {
        (0..a.rows())
            .map(|i| a[(i, j)] * a[(i, j)])
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn two_norm_produces_unit_columns() {
        let mut a = Matrix::random(20, 4, 1);
        let mut lambda = vec![0.0; 4];
        normalize_columns(&mut a, &mut lambda, MatNorm::Two);
        for (j, &l) in lambda.iter().enumerate() {
            assert!((col_norm2(&a, j) - 1.0).abs() < 1e-12);
            assert!(l > 0.0);
        }
    }

    #[test]
    fn two_norm_lambda_matches_original_norms() {
        let orig = Matrix::random(10, 3, 2);
        let mut a = orig.clone();
        let mut lambda = vec![0.0; 3];
        normalize_columns(&mut a, &mut lambda, MatNorm::Two);
        for (j, &l) in lambda.iter().enumerate() {
            assert!((l - col_norm2(&orig, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn normalization_preserves_product() {
        // a = normalized * diag(lambda) must reconstruct the original
        let orig = Matrix::random(8, 3, 5);
        let mut a = orig.clone();
        let mut lambda = vec![0.0; 3];
        normalize_columns(&mut a, &mut lambda, MatNorm::Two);
        for i in 0..8 {
            for j in 0..3 {
                assert!((a[(i, j)] * lambda[j] - orig[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn max_norm_clamps_at_one() {
        // all entries < 1 => lambda = 1, matrix unchanged
        let orig = Matrix::filled(4, 2, 0.25);
        let mut a = orig.clone();
        let mut lambda = vec![0.0; 2];
        normalize_columns(&mut a, &mut lambda, MatNorm::Max);
        assert_eq!(lambda, vec![1.0, 1.0]);
        assert!(a.approx_eq(&orig, 0.0));
    }

    #[test]
    fn max_norm_divides_by_column_max() {
        let mut a = Matrix::from_vec(2, 2, vec![2.0, -8.0, 4.0, 1.0]);
        let mut lambda = vec![0.0; 2];
        normalize_columns(&mut a, &mut lambda, MatNorm::Max);
        assert_eq!(lambda, vec![4.0, 8.0]);
        assert!(a.approx_eq(&Matrix::from_vec(2, 2, vec![0.5, -1.0, 1.0, 0.125]), 1e-15));
    }

    #[test]
    fn zero_column_is_safe_under_two_norm() {
        let mut a = Matrix::zeros(5, 2);
        a[(0, 1)] = 3.0;
        let mut lambda = vec![0.0; 2];
        normalize_columns(&mut a, &mut lambda, MatNorm::Two);
        assert_eq!(lambda[0], 0.0);
        assert_eq!(lambda[1], 3.0);
        assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parallel_path_matches_sequential() {
        let orig = Matrix::random(NORM_PAR_THRESHOLD + 100, 5, 77);
        let mut a_par = orig.clone();
        let mut l_par = vec![0.0; 5];
        normalize_columns(&mut a_par, &mut l_par, MatNorm::Two);
        // recompute sequentially on a small clone via the naive definition
        for (j, &l) in l_par.iter().enumerate() {
            let expect = col_norm2(&orig, j);
            assert!((l - expect).abs() < 1e-9 * expect.max(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "lambda length")]
    fn lambda_length_mismatch_panics() {
        let mut a = Matrix::zeros(2, 3);
        let mut lambda = vec![0.0; 2];
        normalize_columns(&mut a, &mut lambda, MatNorm::Two);
    }
}
