//! Flat row-major dense matrix.
//!
//! SPLATT stores factor matrices as a single `val` array of length
//! `I * J` in row-major order and hands kernels raw row pointers
//! (`vals + i * J`). [`Matrix`] keeps the same layout so the MTTKRP access
//! strategies studied in the paper (row copies vs. 2D indexing vs. pointer
//! arithmetic) are meaningful distinctions over identical memory.

use splatt_rt::rng::{RngExt, SeedableRng, StdRng};
use std::fmt;

/// A dense row-major `f64` matrix.
///
/// The backing storage is a single `Vec<f64>` of length `rows * cols`;
/// element `(i, j)` lives at `data[i * cols + j]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build a matrix from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Uniform random entries in `[0, 1)`, seeded for reproducibility.
    ///
    /// This is how SPLATT initializes factor matrices (`mat_rand`).
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.random::<f64>()).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The backing row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Row `i` as a mutable slice of length `cols`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let start = i * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copy of row `i` as an owned vector.
    ///
    /// This is the "array slicing" analogue used by the `RowCopy` MTTKRP
    /// access strategy: every row access materializes a fresh allocation,
    /// mimicking the descriptor/domain setup cost of a Chapel array view.
    pub fn row_copy(&self, i: usize) -> Vec<f64> {
        self.row(i).to_vec()
    }

    /// Set every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Frobenius norm (`sqrt(sum of squares)`).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of element-wise products with `other` (`<A, B>_F`).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn dot(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "dot: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Maximum absolute element-wise difference with `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `true` when all elements differ from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }

    /// Add `other` element-wise into `self`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Scale all elements by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m[(1, 0)], 7.0);
    }

    #[test]
    fn row_copy_is_independent() {
        let mut m = Matrix::filled(2, 2, 1.0);
        let copy = m.row_copy(0);
        m.row_mut(0)[0] = 9.0;
        assert_eq!(copy, vec![1.0, 1.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::random(5, 3, 42);
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn transpose_moves_elements() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t[(j, i)], m[(i, j)]);
            }
        }
    }

    #[test]
    fn random_is_reproducible() {
        let a = Matrix::random(4, 4, 7);
        let b = Matrix::random(4, 4, 7);
        assert_eq!(a, b);
        let c = Matrix::random(4, 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_entries_in_unit_interval() {
        let m = Matrix::random(10, 10, 1);
        assert!(m.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn frobenius_norm_of_unit_rows() {
        let m = Matrix::filled(2, 2, 1.0);
        assert!((m.frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dot_matches_manual_sum() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::filled(2, 2, 2.0);
        // elements of a: 0 1 1 2, doubled and summed = 8
        assert_eq!(a.dot(&b), 8.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        a.scale(0.5);
        assert!(a.approx_eq(&Matrix::filled(2, 2, 1.5), 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn dot_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = a.dot(&b);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_length_panics() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn empty_matrix_is_well_behaved() {
        let m = Matrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.frobenius_norm(), 0.0);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 0));
    }
}
