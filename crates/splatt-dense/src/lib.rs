//! Dense linear algebra substrate for the splatt-rs workspace.
//!
//! SPLATT (and the Chapel port studied by Rolinger et al.) leans on three
//! LAPACK/BLAS routines — `syrk` (Gram matrices A^T A), `potrf` (Cholesky
//! factorization) and `potrs` (triangular solves) — plus a handful of dense
//! helpers: Hadamard products of Gram matrices, column normalization, and a
//! pseudo-inverse fallback when the normal-equation matrix is singular.
//!
//! The paper pins OpenBLAS to a single thread to avoid interference between
//! the Qthreads tasking layer and OpenMP (Section V-E), so a native,
//! dependency-free implementation of these kernels is both sufficient for
//! reproducing the evaluation and removes the thread-conflict failure mode
//! entirely (we study that conflict separately as an ablation in
//! `splatt-bench`).
//!
//! Everything here operates on [`Matrix`], a flat row-major `f64` matrix —
//! the same layout SPLATT uses for its factor matrices, and the layout whose
//! row-pointer access pattern the Chapel-port paper spends Section V-D.1
//! optimizing.

mod cholesky;
mod eigen;
mod matrix;
mod norms;
mod ops;
mod solve;

pub use cholesky::{cholesky_factor, cholesky_solve, CholeskyError};
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use matrix::Matrix;
pub use norms::{normalize_columns, MatNorm};
pub use ops::{gemm, hadamard, hadamard_assign, mat_ata, syrk_upper};
pub use solve::{solve_normals, solve_normals_ridge, NormalsMethod, RidgeOutcome};

/// Absolute tolerance used by the test suites in this crate when comparing
/// floating point results of algebraically-equivalent computations.
pub const TEST_TOL: f64 = 1e-9;
