//! Normal-equation solve for CP-ALS (SPLATT's `mat_solve_normals`).
//!
//! Given the Hadamard product of Gram matrices `V` (`R x R`, symmetric PSD)
//! and the MTTKRP output `M` (`I x R`), computes `M <- M V^+` — the paper's
//! "Inverse" routine (Moore-Penrose inverse `V^+` in Algorithm 1).
//!
//! Like SPLATT, the fast path is a Cholesky factorization with triangular
//! solves; if `V` is numerically singular we fall back to an explicit
//! pseudo-inverse from the symmetric eigendecomposition (SPLATT uses LAPACK
//! SVD for the same purpose).

use crate::cholesky::{cholesky_factor, cholesky_solve};
use crate::eigen::jacobi_eigen;
use crate::ops::gemm;
use crate::Matrix;

/// Which method ended up being used to apply `V^+`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalsMethod {
    /// `V` was positive definite: Cholesky factor + triangular solves.
    Cholesky,
    /// `V` was singular/indefinite: eigendecomposition pseudo-inverse.
    PseudoInverse,
}

/// Relative eigenvalue cutoff for the pseudo-inverse fallback.
const PINV_RCOND: f64 = 1e-12;

/// Solve the CP-ALS normal equations in place: `m <- m * v^+`.
///
/// `v` is consumed conceptually (only its upper triangle is read). Returns
/// which method was used so callers (and tests) can observe fallbacks.
///
/// # Panics
/// Panics if `v` is not square or `m.cols() != v.rows()`.
pub fn solve_normals(v: &Matrix, m: &mut Matrix) -> NormalsMethod {
    let r = v.rows();
    assert_eq!(r, v.cols(), "solve_normals: V must be square");
    assert_eq!(
        m.cols(),
        r,
        "solve_normals: M has {} columns but V is {}x{}",
        m.cols(),
        r,
        r
    );
    match cholesky_factor(v) {
        Ok(l) => {
            cholesky_solve(&l, m);
            NormalsMethod::Cholesky
        }
        Err(_) => {
            let pinv = jacobi_eigen(v).pseudo_inverse(PINV_RCOND);
            let solved = gemm(m, &pinv);
            *m = solved;
            NormalsMethod::PseudoInverse
        }
    }
}

/// Outcome of [`solve_normals_ridge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RidgeOutcome {
    /// `V` was positive definite: no regularization was needed.
    Cholesky,
    /// Cholesky failed on `V` but succeeded on `V + ridge * I` after
    /// `attempts` escalations; `ridge` is the absolute value applied.
    Regularized { ridge: f64, attempts: u32 },
    /// Every escalation up to the attempt budget failed (e.g. `V`
    /// contains non-finite entries). `m` is left untouched.
    Failed { last_ridge: f64, attempts: u32 },
}

/// Solve `m <- m * (V + mu I)^{-1}` with an *escalating* Tikhonov ridge:
/// graceful numerical degradation for CP-ALS when the Hadamard Gramian is
/// singular or indefinite (rank-deficient factors, injected perturbation).
///
/// The first attempt uses `mu = 0`. On a non-positive pivot, `mu` starts
/// at `base * scale` — `scale` being the mean Gram diagonal, so the ridge
/// is relative to the problem's magnitude — and multiplies by `growth`
/// each failed factorization, up to `max_attempts` escalations. A tiny
/// ridge biases the least-squares update negligibly while restoring
/// positive definiteness; ALS self-corrects the bias in later iterations.
///
/// # Panics
/// Panics if `v` is not square or `m.cols() != v.rows()`.
pub fn solve_normals_ridge(
    v: &Matrix,
    m: &mut Matrix,
    base: f64,
    growth: f64,
    max_attempts: u32,
) -> RidgeOutcome {
    let r = v.rows();
    assert_eq!(r, v.cols(), "solve_normals_ridge: V must be square");
    assert_eq!(
        m.cols(),
        r,
        "solve_normals_ridge: M has {} columns but V is {}x{}",
        m.cols(),
        r,
        r
    );
    if let Ok(l) = cholesky_factor(v) {
        cholesky_solve(&l, m);
        return RidgeOutcome::Cholesky;
    }
    // relative ridge scale: mean diagonal magnitude, guarded for
    // zero/non-finite diagonals
    let trace: f64 = (0..r).map(|i| v[(i, i)].abs()).sum();
    let scale = if trace.is_finite() && trace > 0.0 {
        trace / r as f64
    } else {
        1.0
    };
    let mut ridge = base.max(f64::MIN_POSITIVE) * scale;
    let growth = if growth > 1.0 { growth } else { 10.0 };
    for attempt in 1..=max_attempts {
        let mut vr = v.clone();
        for i in 0..r {
            vr[(i, i)] = v[(i, i)] + ridge;
        }
        if let Ok(l) = cholesky_factor(&vr) {
            cholesky_solve(&l, m);
            return RidgeOutcome::Regularized {
                ridge,
                attempts: attempt,
            };
        }
        ridge *= growth;
    }
    RidgeOutcome::Failed {
        last_ridge: ridge / growth,
        attempts: max_attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::mat_ata;

    fn spd(n: usize, seed: u64) -> Matrix {
        let a = Matrix::random(n + 4, n, seed);
        let mut g = mat_ata(&a);
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    }

    #[test]
    fn spd_takes_cholesky_path() {
        let v = spd(5, 1);
        let mut m = Matrix::random(6, 5, 2);
        assert_eq!(solve_normals(&v, &mut m), NormalsMethod::Cholesky);
    }

    #[test]
    fn solution_satisfies_equations() {
        let v = spd(4, 3);
        let x_true = Matrix::random(5, 4, 4);
        let mut m = gemm(&x_true, &v);
        solve_normals(&v, &mut m);
        assert!(m.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn singular_takes_pinv_path_and_is_consistent() {
        // rank-deficient V: one zero row/col
        let mut v = spd(4, 5);
        for k in 0..4 {
            v[(3, k)] = 0.0;
            v[(k, 3)] = 0.0;
        }
        let mut m = Matrix::random(6, 4, 6);
        let m_orig = m.clone();
        let method = solve_normals(&v, &mut m);
        assert_eq!(method, NormalsMethod::PseudoInverse);
        // check least-squares consistency: (m v) v+ == m v v+ v v+ ... at
        // minimum, m*v must equal m_orig*v+*v which projects onto range(V).
        let mv = gemm(&m, &v);
        let proj = gemm(&m_orig, &gemm(&jacobi_eigen(&v).pseudo_inverse(1e-12), &v));
        assert!(mv.approx_eq(&proj, 1e-8));
    }

    #[test]
    fn identity_v_is_noop() {
        let v = Matrix::identity(3);
        let orig = Matrix::random(4, 3, 7);
        let mut m = orig.clone();
        solve_normals(&v, &mut m);
        assert!(m.approx_eq(&orig, 1e-12));
    }

    #[test]
    fn ridge_spd_input_is_plain_cholesky() {
        let v = spd(4, 10);
        let x_true = Matrix::random(5, 4, 11);
        let mut m = gemm(&x_true, &v);
        let out = solve_normals_ridge(&v, &mut m, 1e-8, 100.0, 10);
        assert_eq!(out, RidgeOutcome::Cholesky);
        assert!(m.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn ridge_recovers_singular_matrix() {
        // rank-1 (all-ones) matrix: exactly singular, pivot 0 at column 1
        let v = Matrix::from_fn(4, 4, |_, _| 1.0);
        let mut m = Matrix::random(6, 4, 13);
        match solve_normals_ridge(&v, &mut m, 1e-8, 100.0, 12) {
            RidgeOutcome::Regularized { ridge, attempts } => {
                assert!(ridge > 0.0);
                assert!(attempts >= 1);
            }
            other => panic!("expected regularized solve, got {other:?}"),
        }
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn ridge_escalates_through_indefinite_matrix() {
        // strongly indefinite: needs a ridge larger than the negative
        // eigenvalue, i.e. several escalations from the tiny base
        let mut v = spd(3, 14);
        v[(0, 0)] = -10.0 * (v[(0, 0)] + v[(1, 1)] + v[(2, 2)]);
        let mut m = Matrix::random(2, 3, 15);
        match solve_normals_ridge(&v, &mut m, 1e-8, 100.0, 12) {
            RidgeOutcome::Regularized { attempts, .. } => assert!(attempts > 1),
            other => panic!("expected escalated ridge, got {other:?}"),
        }
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn ridge_gives_up_on_nan_matrix_without_touching_m() {
        let mut v = spd(3, 16);
        v[(1, 1)] = f64::NAN;
        let orig = Matrix::random(2, 3, 17);
        let mut m = orig.clone();
        match solve_normals_ridge(&v, &mut m, 1e-8, 100.0, 5) {
            RidgeOutcome::Failed { attempts, .. } => assert_eq!(attempts, 5),
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(m.approx_eq(&orig, 0.0), "rhs modified on failed solve");
    }

    #[test]
    fn zero_matrix_v_maps_to_zero() {
        let v = Matrix::zeros(3, 3);
        let mut m = Matrix::random(2, 3, 8);
        let method = solve_normals(&v, &mut m);
        assert_eq!(method, NormalsMethod::PseudoInverse);
        assert!(m.approx_eq(&Matrix::zeros(2, 3), 1e-12));
    }
}
