//! Normal-equation solve for CP-ALS (SPLATT's `mat_solve_normals`).
//!
//! Given the Hadamard product of Gram matrices `V` (`R x R`, symmetric PSD)
//! and the MTTKRP output `M` (`I x R`), computes `M <- M V^+` — the paper's
//! "Inverse" routine (Moore-Penrose inverse `V^+` in Algorithm 1).
//!
//! Like SPLATT, the fast path is a Cholesky factorization with triangular
//! solves; if `V` is numerically singular we fall back to an explicit
//! pseudo-inverse from the symmetric eigendecomposition (SPLATT uses LAPACK
//! SVD for the same purpose).

use crate::cholesky::{cholesky_factor, cholesky_solve};
use crate::eigen::jacobi_eigen;
use crate::ops::gemm;
use crate::Matrix;

/// Which method ended up being used to apply `V^+`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalsMethod {
    /// `V` was positive definite: Cholesky factor + triangular solves.
    Cholesky,
    /// `V` was singular/indefinite: eigendecomposition pseudo-inverse.
    PseudoInverse,
}

/// Relative eigenvalue cutoff for the pseudo-inverse fallback.
const PINV_RCOND: f64 = 1e-12;

/// Solve the CP-ALS normal equations in place: `m <- m * v^+`.
///
/// `v` is consumed conceptually (only its upper triangle is read). Returns
/// which method was used so callers (and tests) can observe fallbacks.
///
/// # Panics
/// Panics if `v` is not square or `m.cols() != v.rows()`.
pub fn solve_normals(v: &Matrix, m: &mut Matrix) -> NormalsMethod {
    let r = v.rows();
    assert_eq!(r, v.cols(), "solve_normals: V must be square");
    assert_eq!(
        m.cols(),
        r,
        "solve_normals: M has {} columns but V is {}x{}",
        m.cols(),
        r,
        r
    );
    match cholesky_factor(v) {
        Ok(l) => {
            cholesky_solve(&l, m);
            NormalsMethod::Cholesky
        }
        Err(_) => {
            let pinv = jacobi_eigen(v).pseudo_inverse(PINV_RCOND);
            let solved = gemm(m, &pinv);
            *m = solved;
            NormalsMethod::PseudoInverse
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::mat_ata;

    fn spd(n: usize, seed: u64) -> Matrix {
        let a = Matrix::random(n + 4, n, seed);
        let mut g = mat_ata(&a);
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    }

    #[test]
    fn spd_takes_cholesky_path() {
        let v = spd(5, 1);
        let mut m = Matrix::random(6, 5, 2);
        assert_eq!(solve_normals(&v, &mut m), NormalsMethod::Cholesky);
    }

    #[test]
    fn solution_satisfies_equations() {
        let v = spd(4, 3);
        let x_true = Matrix::random(5, 4, 4);
        let mut m = gemm(&x_true, &v);
        solve_normals(&v, &mut m);
        assert!(m.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn singular_takes_pinv_path_and_is_consistent() {
        // rank-deficient V: one zero row/col
        let mut v = spd(4, 5);
        for k in 0..4 {
            v[(3, k)] = 0.0;
            v[(k, 3)] = 0.0;
        }
        let mut m = Matrix::random(6, 4, 6);
        let m_orig = m.clone();
        let method = solve_normals(&v, &mut m);
        assert_eq!(method, NormalsMethod::PseudoInverse);
        // check least-squares consistency: (m v) v+ == m v v+ v v+ ... at
        // minimum, m*v must equal m_orig*v+*v which projects onto range(V).
        let mv = gemm(&m, &v);
        let proj = gemm(&m_orig, &gemm(&jacobi_eigen(&v).pseudo_inverse(1e-12), &v));
        assert!(mv.approx_eq(&proj, 1e-8));
    }

    #[test]
    fn identity_v_is_noop() {
        let v = Matrix::identity(3);
        let orig = Matrix::random(4, 3, 7);
        let mut m = orig.clone();
        solve_normals(&v, &mut m);
        assert!(m.approx_eq(&orig, 1e-12));
    }

    #[test]
    fn zero_matrix_v_maps_to_zero() {
        let v = Matrix::zeros(3, 3);
        let mut m = Matrix::random(2, 3, 8);
        let method = solve_normals(&v, &mut m);
        assert_eq!(method, NormalsMethod::PseudoInverse);
        assert!(m.approx_eq(&Matrix::zeros(2, 3), 1e-12));
    }
}
