//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! When the CP-ALS normal-equation matrix `V` is singular (factors lost
//! column rank), SPLATT falls back from Cholesky to a pseudo-inverse
//! computed with LAPACK SVD. For the symmetric positive semi-definite `V`
//! the SVD coincides with the eigendecomposition, so we implement the
//! classic cyclic Jacobi rotation scheme — simple, dependency-free, and
//! plenty fast for the `R x R` (R ≈ 35) matrices CP-ALS produces.

use crate::Matrix;

/// Result of a symmetric eigendecomposition `A = Q diag(w) Q^T`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, in the order matching the columns of `vectors`.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// Reconstruct `Q diag(w) Q^T`.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        for i in 0..n {
            for j in 0..n {
                scaled[(i, j)] *= self.values[j];
            }
        }
        crate::ops::gemm(&scaled, &self.vectors.transpose())
    }

    /// Moore-Penrose pseudo-inverse `Q diag(w+) Q^T`, where eigenvalues with
    /// magnitude below `rcond * max|w|` are treated as zero.
    pub fn pseudo_inverse(&self, rcond: f64) -> Matrix {
        let n = self.values.len();
        let wmax = self.values.iter().fold(0.0_f64, |m, &w| m.max(w.abs()));
        let cutoff = rcond * wmax;
        let mut scaled = self.vectors.clone();
        for j in 0..n {
            let inv = if self.values[j].abs() > cutoff {
                1.0 / self.values[j]
            } else {
                0.0
            };
            for i in 0..n {
                scaled[(i, j)] *= inv;
            }
        }
        crate::ops::gemm(&scaled, &self.vectors.transpose())
    }
}

/// Maximum number of full Jacobi sweeps before giving up. Convergence for
/// well-scaled `R x R` Gram matrices is typically < 10 sweeps.
const MAX_SWEEPS: usize = 64;

/// Compute the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// Only the upper triangle of `a` is read. Convergence is declared when the
/// off-diagonal Frobenius norm drops below `1e-14 * ||A||_F`.
///
/// # Panics
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &Matrix) -> EigenDecomposition {
    let n = a.rows();
    assert_eq!(n, a.cols(), "jacobi_eigen: matrix must be square");
    // working copy, symmetrized from the upper triangle
    let mut w = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            w[(i, j)] = a[(i, j)];
            w[(j, i)] = a[(i, j)];
        }
    }
    let mut q = Matrix::identity(n);
    let norm = w.frobenius_norm();
    let tol = 1e-14 * norm.max(1.0);

    for _sweep in 0..MAX_SWEEPS {
        let off: f64 = {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += w[(i, j)] * w[(i, j)];
                }
            }
            (2.0 * s).sqrt()
        };
        if off <= tol {
            break;
        }
        for p in 0..n {
            for qi in (p + 1)..n {
                let apq = w[(p, qi)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(qi, qi)];
                // rotation angle
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // apply rotation to rows/cols p and q of w
                for k in 0..n {
                    let wkp = w[(k, p)];
                    let wkq = w[(k, qi)];
                    w[(k, p)] = c * wkp - s * wkq;
                    w[(k, qi)] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[(p, k)];
                    let wqk = w[(qi, k)];
                    w[(p, k)] = c * wpk - s * wqk;
                    w[(qi, k)] = s * wpk + c * wqk;
                }
                // accumulate eigenvectors
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkq = q[(k, qi)];
                    q[(k, p)] = c * qkp - s * qkq;
                    q[(k, qi)] = s * qkp + c * qkq;
                }
            }
        }
    }

    let values = (0..n).map(|i| w[(i, i)]).collect();
    EigenDecomposition { values, vectors: q }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gemm, mat_ata};

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let e = jacobi_eigen(&a);
        let mut vals = e.values.clone();
        vals.sort_by(f64::total_cmp);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = jacobi_eigen(&a);
        let mut vals = e.values.clone();
        vals.sort_by(f64::total_cmp);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_original() {
        let g = mat_ata(&Matrix::random(12, 6, 21));
        let e = jacobi_eigen(&g);
        assert!(e.reconstruct().approx_eq(&g, 1e-9));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let g = mat_ata(&Matrix::random(10, 5, 33));
        let e = jacobi_eigen(&g);
        let qtq = gemm(&e.vectors.transpose(), &e.vectors);
        assert!(qtq.approx_eq(&Matrix::identity(5), 1e-10));
    }

    #[test]
    fn gram_matrix_eigenvalues_nonnegative() {
        let g = mat_ata(&Matrix::random(20, 8, 44));
        let e = jacobi_eigen(&g);
        assert!(e.values.iter().all(|&w| w > -1e-9));
    }

    #[test]
    fn pseudo_inverse_of_invertible_is_inverse() {
        let mut g = mat_ata(&Matrix::random(10, 4, 5));
        for i in 0..4 {
            g[(i, i)] += 1.0; // well-conditioned
        }
        let pinv = jacobi_eigen(&g).pseudo_inverse(1e-12);
        assert!(gemm(&g, &pinv).approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn pseudo_inverse_of_singular_satisfies_penrose() {
        // rank-1: a = v v^T
        let v = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let a = gemm(&v, &v.transpose());
        let pinv = jacobi_eigen(&a).pseudo_inverse(1e-12);
        // Penrose condition 1: A A+ A = A
        let apa = gemm(&gemm(&a, &pinv), &a);
        assert!(apa.approx_eq(&a, 1e-9));
        // Penrose condition 2: A+ A A+ = A+
        let pap = gemm(&gemm(&pinv, &a), &pinv);
        assert!(pap.approx_eq(&pinv, 1e-9));
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_vec(1, 1, vec![4.0]);
        let e = jacobi_eigen(&a);
        assert_eq!(e.values, vec![4.0]);
    }
}
