//! BLAS-like dense kernels: SYRK, GEMM, and Hadamard products.
//!
//! CP-ALS spends its dense time in the Gram-matrix products
//! `A^(n)ᵀ A^(n)` (lines 4/7/10 of Algorithm 1, SPLATT's `mat_aTa`, BLAS
//! `syrk`) and the element-wise (Hadamard) products that combine them.
//! These are tall-skinny updates — `I x R` with `R ≈ 35` — so the natural
//! high-performance formulation accumulates rank-1 outer products of rows,
//! which is exactly what [`syrk_upper`] does, parallelized over row blocks
//! with a reduction (the `omp parallel` + per-thread buffer + reduce pattern
//! of Listing 7 in the paper).

use crate::Matrix;
use splatt_rt::par;

/// Minimum number of matrix rows before [`mat_ata`] bothers spawning
/// parallel tasks; below this the reduction overhead dominates.
const ATA_PAR_THRESHOLD: usize = 4096;

/// Compute the upper triangle of `A^T A` into a fresh `R x R` matrix,
/// sequentially. The strict lower triangle is left zero.
///
/// Mirrors BLAS `dsyrk(uplo='U', trans='T')` as SPLATT calls it.
pub fn syrk_upper(a: &Matrix) -> Matrix {
    let r = a.cols();
    let mut out = Matrix::zeros(r, r);
    syrk_upper_into(a, 0, a.rows(), &mut out);
    out
}

/// Accumulate the upper triangle of `A[lo..hi]^T A[lo..hi]` into `out`.
fn syrk_upper_into(a: &Matrix, lo: usize, hi: usize, out: &mut Matrix) {
    let r = a.cols();
    for i in lo..hi {
        let row = a.row(i);
        for j in 0..r {
            let aij = row[j];
            if aij == 0.0 {
                continue;
            }
            let orow = out.row_mut(j);
            for (k, &ajk) in row.iter().enumerate().skip(j) {
                orow[k] += aij * ajk;
            }
        }
    }
    let _ = r;
}

/// Symmetrize an upper-triangular matrix in place by mirroring the upper
/// triangle into the lower one.
fn mirror_upper(m: &mut Matrix) {
    let n = m.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            m[(j, i)] = m[(i, j)];
        }
    }
}

/// Compute the full symmetric Gram matrix `A^T A` (SPLATT's `mat_aTa`).
///
/// Parallelizes over row blocks with per-thread `R x R` accumulators that
/// are reduced at the end — the same shape as SPLATT's OpenMP
/// implementation.
pub fn mat_ata(a: &Matrix) -> Matrix {
    let r = a.cols();
    let rows = a.rows();
    let mut out = if rows >= ATA_PAR_THRESHOLD {
        let nchunks = par::current_num_threads().max(1);
        let chunk = rows.div_ceil(nchunks);
        par::par_map_reduce(
            nchunks,
            || Matrix::zeros(r, r),
            |c| {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(rows);
                let mut local = Matrix::zeros(r, r);
                if lo < hi {
                    syrk_upper_into(a, lo, hi, &mut local);
                }
                local
            },
            |mut acc, m| {
                acc.add_assign(&m);
                acc
            },
        )
    } else {
        syrk_upper(a)
    };
    mirror_upper(&mut out);
    out
}

/// Element-wise (Hadamard) product `a .* b` into a fresh matrix.
///
/// # Panics
/// Panics if shapes differ.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "hadamard: shape mismatch");
    let mut out = a.clone();
    hadamard_assign(&mut out, b);
    out
}

/// Element-wise product `a .*= b` in place.
///
/// # Panics
/// Panics if shapes differ.
pub fn hadamard_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "hadamard_assign: shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
}

/// General matrix multiply `C = A * B`.
///
/// Straightforward ikj-ordered triple loop; only used on small (`R x R` or
/// `I x R` with small `R`) operands, so no blocking is needed.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm: inner dimensions {} and {} differ",
        a.cols(),
        b.rows()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for (j, &bpj) in brow.iter().enumerate() {
                crow[j] += aip * bpj;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_TOL;

    fn naive_ata(a: &Matrix) -> Matrix {
        gemm(&a.transpose(), a)
    }

    #[test]
    fn syrk_matches_naive_on_small() {
        let a = Matrix::random(7, 3, 11);
        let s = {
            let mut s = syrk_upper(&a);
            super::mirror_upper(&mut s);
            s
        };
        assert!(s.approx_eq(&naive_ata(&a), TEST_TOL));
    }

    #[test]
    fn mat_ata_matches_naive_sequential_path() {
        let a = Matrix::random(100, 5, 3);
        assert!(mat_ata(&a).approx_eq(&naive_ata(&a), TEST_TOL));
    }

    #[test]
    fn mat_ata_matches_naive_parallel_path() {
        let a = Matrix::random(5000, 4, 3);
        assert!(mat_ata(&a).approx_eq(&naive_ata(&a), 1e-7));
    }

    #[test]
    fn mat_ata_is_symmetric() {
        let a = Matrix::random(64, 6, 5);
        let g = mat_ata(&a);
        assert!(g.approx_eq(&g.transpose(), 0.0));
    }

    #[test]
    fn mat_ata_of_identity_is_identity() {
        let g = mat_ata(&Matrix::identity(5));
        assert!(g.approx_eq(&Matrix::identity(5), 0.0));
    }

    #[test]
    fn mat_ata_empty_rows() {
        let a = Matrix::zeros(0, 3);
        let g = mat_ata(&a);
        assert!(g.approx_eq(&Matrix::zeros(3, 3), 0.0));
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::filled(2, 2, 3.0);
        let h = hadamard(&a, &b);
        assert_eq!(h[(0, 0)], 0.0);
        assert_eq!(h[(1, 1)], 6.0);
    }

    #[test]
    fn hadamard_with_ones_is_identity_op() {
        let a = Matrix::random(4, 4, 2);
        let ones = Matrix::filled(4, 4, 1.0);
        assert!(hadamard(&a, &ones).approx_eq(&a, 0.0));
    }

    #[test]
    fn gemm_identity() {
        let a = Matrix::random(4, 4, 9);
        assert!(gemm(&a, &Matrix::identity(4)).approx_eq(&a, 0.0));
        assert!(gemm(&Matrix::identity(4), &a).approx_eq(&a, 0.0));
    }

    #[test]
    fn gemm_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = gemm(&a, &b);
        assert!(c.approx_eq(&Matrix::from_vec(2, 2, vec![19.0, 22.0, 43.0, 50.0]), 0.0));
    }

    #[test]
    fn gemm_rectangular_shapes() {
        let a = Matrix::random(3, 5, 1);
        let b = Matrix::random(5, 2, 2);
        let c = gemm(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        // spot check one entry
        let mut expect = 0.0;
        for p in 0..5 {
            expect += a[(1, p)] * b[(p, 1)];
        }
        assert!((c[(1, 1)] - expect).abs() < TEST_TOL);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn gemm_shape_mismatch_panics() {
        let _ = gemm(&Matrix::zeros(2, 3), &Matrix::zeros(2, 2));
    }
}
