//! Cholesky factorization and solves (`potrf` / `potrs` analogues).
//!
//! CP-ALS solves the normal equations `A_new = M V^{-1}` where
//! `V = (*) hadamard of Gram matrices` is `R x R`, symmetric, and — when the
//! factors have full column rank — positive definite. SPLATT calls LAPACK
//! `dpotrf` to factor `V = L L^T` and `dpotrs` to apply the inverse to every
//! row of the `I x R` MTTKRP output. We implement the same pair natively.

use crate::Matrix;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct CholeskyError {
    /// The pivot column at which factorization broke down.
    pub column: usize,
    /// The offending (non-positive) pivot value.
    pub pivot: f64,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} at column {}",
            self.pivot, self.column
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Factor a symmetric positive-definite matrix `A = L L^T`, returning the
/// lower-triangular factor `L` (upper triangle zeroed).
///
/// Only the upper triangle of `a` is read, matching LAPACK `dpotrf('U')`
/// semantics as used by SPLATT (which stores Gram matrices upper-symmetric).
///
/// # Errors
/// Returns [`CholeskyError`] if a pivot is not strictly positive, i.e. the
/// matrix is singular or indefinite to working precision.
pub fn cholesky_factor(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky_factor: matrix must be square");
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // diagonal entry
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(CholeskyError {
                column: j,
                pivot: d,
            });
        }
        let diag = d.sqrt();
        l[(j, j)] = diag;
        // column below the diagonal
        for i in (j + 1)..n {
            // read the upper triangle of `a`: a[(j, i)] == a[(i, j)]
            let mut s = a[(j.min(i), j.max(i))];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / diag;
        }
    }
    Ok(l)
}

/// Solve `X L L^T = B` for `X` given the Cholesky factor `L`, overwriting
/// `b` with the solution. Each *row* of `b` is an independent right-hand
/// side — this is the orientation CP-ALS needs (`M V^{-1}` with `M` being
/// the `I x R` MTTKRP output), equivalent to LAPACK `dpotrs` on `B^T`.
///
/// # Panics
/// Panics if `l` is not square or `b.cols() != l.rows()`.
pub fn cholesky_solve(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert_eq!(n, l.cols(), "cholesky_solve: factor must be square");
    assert_eq!(
        b.cols(),
        n,
        "cholesky_solve: rhs has {} columns, factor is {}x{}",
        b.cols(),
        n,
        n
    );
    for i in 0..b.rows() {
        let row = b.row_mut(i);
        // forward solve y L^T = b  =>  treat as L y^T = b^T (y_j computed in order)
        for j in 0..n {
            let mut s = row[j];
            for k in 0..j {
                s -= l[(j, k)] * row[k];
            }
            row[j] = s / l[(j, j)];
        }
        // backward solve x L = y
        for j in (0..n).rev() {
            let mut s = row[j];
            for k in (j + 1)..n {
                s -= l[(k, j)] * row[k];
            }
            row[j] = s / l[(j, j)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gemm, mat_ata};

    fn spd(n: usize, seed: u64) -> Matrix {
        // A^T A + n*I is comfortably SPD
        let a = Matrix::random(n + 3, n, seed);
        let mut g = mat_ata(&a);
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        g
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd(6, 42);
        let l = cholesky_factor(&a).unwrap();
        let rec = gemm(&l, &l.transpose());
        assert!(rec.approx_eq(&a, 1e-9), "L L^T != A");
    }

    #[test]
    fn factor_is_lower_triangular() {
        let l = cholesky_factor(&spd(5, 1)).unwrap();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn factor_of_identity_is_identity() {
        let l = cholesky_factor(&Matrix::identity(4)).unwrap();
        assert!(l.approx_eq(&Matrix::identity(4), 0.0));
    }

    #[test]
    fn factor_reads_only_upper_triangle() {
        let mut a = spd(4, 7);
        let l_full = cholesky_factor(&a).unwrap();
        // trash the strict lower triangle; result must be unchanged
        for i in 0..4 {
            for j in 0..i {
                a[(i, j)] = f64::NAN;
            }
        }
        let l_upper = cholesky_factor(&a).unwrap();
        assert!(l_full.approx_eq(&l_upper, 0.0));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        // rank-1 matrix
        let a = Matrix::from_fn(3, 3, |_, _| 1.0);
        let err = cholesky_factor(&a).unwrap_err();
        assert!(err.column > 0);
        assert!(err.pivot.abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = -1.0;
        assert!(cholesky_factor(&a).is_err());
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(5, 3);
        let x_true = Matrix::random(7, 5, 9);
        // b = x_true * A   (rows are RHS in x A = b orientation)
        let b = gemm(&x_true, &a);
        let l = cholesky_factor(&a).unwrap();
        let mut x = b;
        cholesky_solve(&l, &mut x);
        assert!(x.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn solve_with_identity_is_noop() {
        let l = cholesky_factor(&Matrix::identity(3)).unwrap();
        let orig = Matrix::random(4, 3, 5);
        let mut b = orig.clone();
        cholesky_solve(&l, &mut b);
        assert!(b.approx_eq(&orig, 0.0));
    }

    #[test]
    fn solve_zero_rows_is_noop() {
        let l = cholesky_factor(&spd(3, 4)).unwrap();
        let mut b = Matrix::zeros(0, 3);
        cholesky_solve(&l, &mut b); // must not panic
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "rhs has")]
    fn solve_shape_mismatch_panics() {
        let l = cholesky_factor(&Matrix::identity(3)).unwrap();
        let mut b = Matrix::zeros(2, 4);
        cholesky_solve(&l, &mut b);
    }
}
