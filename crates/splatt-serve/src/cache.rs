//! An LRU cache for slice and top-k results.
//!
//! Entry queries are point lookups — cheap and rarely repeated — but
//! slice and top-k reconstructions walk a whole mode, and dashboards ask
//! for the same popular slices over and over. Values are `Arc`-shared so
//! a hit hands back the cached buffer without copying, and keys carry the
//! model *version*, so publishing a new version naturally misses instead
//! of serving stale results.
//!
//! The LRU list is intrusive over a slab (`prev`/`next` indices into one
//! `Vec`), so steady-state hits and inserts touch no allocator once the
//! slab is full: eviction recycles slots in place.

use crate::protocol::ShardSel;
use splatt_rt::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: model identity (name + version) plus the full query shape.
/// Shard-scoped queries carry their [`ShardSel`] so a partial never
/// collides with the full answer (or with another shard's partial).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CacheKey {
    Slice {
        model: String,
        version: u64,
        mode: u8,
        index: u32,
    },
    TopK {
        model: String,
        version: u64,
        mode: u8,
        k: u32,
        fixed: Vec<u32>,
    },
    SliceShard {
        model: String,
        version: u64,
        mode: u8,
        index: u32,
        sel: ShardSel,
    },
    TopKShard {
        model: String,
        version: u64,
        mode: u8,
        k: u32,
        fixed: Vec<u32>,
        sel: ShardSel,
    },
}

/// Cached result payload, shared by reference on hit.
#[derive(Debug, Clone)]
pub enum CacheValue {
    Slice(Arc<Vec<f64>>),
    TopK(Arc<Vec<(u32, f64)>>),
}

const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: CacheValue,
    prev: usize,
    next: usize,
}

struct LruInner {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruInner {
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// Bounded LRU result cache; see the module docs.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<LruInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results; 0 disables caching
    /// (every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(LruInner {
                map: HashMap::with_capacity(capacity),
                slab: Vec::with_capacity(capacity),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look `key` up, promoting it to most-recent on hit.
    pub fn get(&self, key: &CacheKey) -> Option<CacheValue> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).copied() {
            Some(i) => {
                inner.unlink(i);
                inner.push_front(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(inner.slab[i].value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recent entry when
    /// at capacity.
    pub fn insert(&self, key: CacheKey, value: CacheValue) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(&i) = inner.map.get(&key) {
            inner.slab[i].value = value;
            inner.unlink(i);
            inner.push_front(i);
            return;
        }
        let slot = if inner.map.len() >= self.capacity {
            // Recycle the least-recent slot in place.
            let victim = inner.tail;
            inner.unlink(victim);
            let old_key = inner.slab[victim].key.clone();
            inner.map.remove(&old_key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            inner.slab[victim].key = key.clone();
            inner.slab[victim].value = value;
            victim
        } else if let Some(free) = inner.free.pop() {
            inner.slab[free] = Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            };
            free
        } else {
            inner.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            inner.slab.len() - 1
        };
        inner.push_front(slot);
        inner.map.insert(key, slot);
    }

    /// Drop every entry belonging to `model` (any version when
    /// `version == 0`) — called on model eviction.
    pub fn invalidate_model(&self, model: &str, version: u64) {
        let mut inner = self.inner.lock();
        let doomed: Vec<usize> = inner
            .map
            .iter()
            .filter(|(k, _)| {
                let (name, ver) = match k {
                    CacheKey::Slice { model, version, .. } => (model, *version),
                    CacheKey::TopK { model, version, .. } => (model, *version),
                    CacheKey::SliceShard { model, version, .. } => (model, *version),
                    CacheKey::TopKShard { model, version, .. } => (model, *version),
                };
                name == model && (version == 0 || ver == version)
            })
            .map(|(_, &i)| i)
            .collect();
        for i in doomed {
            let key = inner.slab[i].key.clone();
            inner.map.remove(&key);
            inner.unlink(i);
            inner.free.push(i);
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> CacheKey {
        CacheKey::Slice {
            model: "m".into(),
            version: 1,
            mode: 0,
            index: i,
        }
    }

    fn val(v: f64) -> CacheValue {
        CacheValue::Slice(Arc::new(vec![v]))
    }

    fn slice_of(v: &CacheValue) -> f64 {
        match v {
            CacheValue::Slice(s) => s[0],
            CacheValue::TopK(_) => panic!("expected slice"),
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cache = ResultCache::new(2);
        cache.insert(key(1), val(1.0));
        cache.insert(key(2), val(2.0));
        assert_eq!(slice_of(&cache.get(&key(1)).unwrap()), 1.0); // 1 now MRU
        cache.insert(key(3), val(3.0)); // evicts 2
        assert!(cache.get(&key(2)).is_none());
        assert_eq!(slice_of(&cache.get(&key(1)).unwrap()), 1.0);
        assert_eq!(slice_of(&cache.get(&key(3)).unwrap()), 3.0);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_without_evicting() {
        let cache = ResultCache::new(2);
        cache.insert(key(1), val(1.0));
        cache.insert(key(1), val(9.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(slice_of(&cache.get(&key(1)).unwrap()), 9.0);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn version_is_part_of_the_key() {
        let cache = ResultCache::new(4);
        cache.insert(key(1), val(1.0));
        let v2 = CacheKey::Slice {
            model: "m".into(),
            version: 2,
            mode: 0,
            index: 1,
        };
        assert!(cache.get(&v2).is_none());
    }

    #[test]
    fn invalidate_model_frees_slots_for_reuse() {
        let cache = ResultCache::new(4);
        cache.insert(key(1), val(1.0));
        cache.insert(key(2), val(2.0));
        let other = CacheKey::TopK {
            model: "other".into(),
            version: 1,
            mode: 1,
            k: 3,
            fixed: vec![0, 0],
        };
        cache.insert(other.clone(), CacheValue::TopK(Arc::new(vec![(0, 1.0)])));
        cache.invalidate_model("m", 0);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&other).is_some());
        // Freed slots get recycled.
        cache.insert(key(7), val(7.0));
        cache.insert(key(8), val(8.0));
        assert_eq!(cache.len(), 3);
        assert_eq!(slice_of(&cache.get(&key(7)).unwrap()), 7.0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(key(1), val(1.0));
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.is_empty());
    }
}
