//! Sharded, replicated serving with shard-kill failover.
//!
//! This module turns the single-process server into a cluster without
//! changing what clients see:
//!
//! * [`shard`] — the [`ShardRing`] consistent hash over mode-0 indices
//!   and the [`ShardMap`] `[nshards, nreplicas]` placement grid (reusing
//!   `splatt-dist`'s process-grid ownership math).
//! * [`shared`] — [`SharedModel`]: one parse of the canonical
//!   `splatt-model-v1` file shared read-only by every worker, with
//!   per-worker row-range views instead of N heap copies.
//! * [`health`] — the `Live`/`Suspect`/`Dead` ledger with automatic
//!   re-admission.
//! * [`router`] — the scatter-gather front end: replica failover with
//!   capped backoff, per-request deadline budgets threaded through every
//!   retry, typed `Degraded` answers for uncovered hash ranges, and
//!   bit-identical merges against the single-process oracle.
//!
//! [`LoopbackCluster`] wires all of it together on `127.0.0.1` for the
//! CLI (`splatt serve --shards N --replicas M`) and the fault-storm
//! tests: N×M worker servers (each a full [`ServeEngine`] publishing a
//! view of the shared model) behind one router, with
//! [`LoopbackCluster::kill_worker`] as the shard-kill lever.

pub mod health;
pub mod router;
pub mod shard;
pub mod shared;

pub use health::{HealthBoard, HealthState};
pub use router::{serve_router, ClusterConfig, Router, RouterHandle};
pub use shard::{ShardMap, ShardRing, VNODES};
pub use shared::{ShardView, SharedModel};

use crate::engine::{ServeConfig, ServeEngine};
use crate::server::{serve, ServerHandle};
use splatt_faults::NetFaultPlan;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// An in-process serving cluster on loopback TCP; see the module docs.
pub struct LoopbackCluster {
    workers: Vec<Option<ServerHandle>>,
    router: Option<RouterHandle>,
}

impl LoopbackCluster {
    /// Start `nshards * nreplicas` workers and a router over them. Every
    /// worker publishes the *same* `Arc` of `model`'s payload — one heap
    /// copy total. `faults`, when given, is injected at the router's
    /// transport seam.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(
        config: ClusterConfig,
        model: &SharedModel,
        faults: Option<Arc<NetFaultPlan>>,
    ) -> std::io::Result<LoopbackCluster> {
        LoopbackCluster::start_on(config, model, faults, "127.0.0.1:0")
    }

    /// [`LoopbackCluster::start`] with an explicit router bind address
    /// (workers always bind loopback-ephemeral).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start_on(
        config: ClusterConfig,
        model: &SharedModel,
        faults: Option<Arc<NetFaultPlan>>,
        router_addr: &str,
    ) -> std::io::Result<LoopbackCluster> {
        let map = ShardMap::new(config.nshards, config.nreplicas);
        let mut workers = Vec::with_capacity(map.nworkers());
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(map.nworkers());
        for rank in 0..map.nworkers() {
            let engine = ServeEngine::start(ServeConfig {
                ntasks: 2,
                // Kills are exercised constantly in the fault tests; a
                // short drain keeps them prompt while still answering
                // whatever was already queued.
                drain_deadline: Duration::from_millis(250),
                worker: rank as u32,
                shard: map.shard_of_worker(rank) as u32,
                ..Default::default()
            });
            model.publish_on(engine.registry());
            let handle = serve(engine, "127.0.0.1:0")?;
            addrs.push(handle.addr());
            workers.push(Some(handle));
        }
        let mut router = Router::new(config, model.clone(), addrs);
        if let Some(plan) = faults {
            router = router.with_faults(plan);
        }
        let router = serve_router(Arc::new(router), router_addr)?;
        Ok(LoopbackCluster {
            workers,
            router: Some(router),
        })
    }

    /// Trip the router's stop token without blocking (the cluster
    /// analogue of [`ServerHandle::request_shutdown`]; pair with
    /// [`LoopbackCluster::join`]).
    pub fn request_shutdown(&self) {
        if let Some(router) = &self.router {
            router.request_shutdown();
        }
    }

    /// Block until the router stops — via the wire `Shutdown` op or
    /// [`LoopbackCluster::request_shutdown`] — then stop every surviving
    /// worker (each drains its queue under its drain deadline).
    pub fn join(mut self) {
        if let Some(router) = self.router.take() {
            router.join();
        }
        for worker in self.workers.iter_mut() {
            if let Some(handle) = worker.take() {
                handle.shutdown();
            }
        }
    }

    /// The router front-end address clients dial.
    pub fn router_addr(&self) -> SocketAddr {
        self.router.as_ref().expect("router running").addr()
    }

    /// The router itself (counters, health board, placement).
    pub fn router(&self) -> Arc<Router> {
        Arc::clone(self.router.as_ref().expect("router running").router())
    }

    /// Take worker `rank` down. Its listener closes and its engine
    /// stops; from the router's view the worker starts refusing
    /// connections, exactly like a crashed process. Idempotent.
    pub fn kill_worker(&mut self, rank: usize) {
        if let Some(handle) = self.workers[rank].take() {
            handle.shutdown();
        }
    }

    /// Whether worker `rank` is still running.
    pub fn worker_alive(&self, rank: usize) -> bool {
        self.workers[rank].is_some()
    }

    /// Stop the router, then every surviving worker.
    pub fn shutdown(mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for worker in self.workers.iter_mut() {
            if let Some(handle) = worker.take() {
                handle.shutdown();
            }
        }
    }
}
