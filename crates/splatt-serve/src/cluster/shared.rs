//! One parse, many workers: shared read-only model loading.
//!
//! A naive N-worker loopback cluster would parse the `splatt-model-v1`
//! file N times and hold N heap copies of the factor matrices. Factor
//! models dwarf every other serving allocation, so [`SharedModel`]
//! parses the canonical file **once** into an `Arc<KruskalModel>` and
//! publishes per-worker *views* of that single payload — the in-process
//! analogue of mapping one read-only file into every worker. A view is
//! not a copy: it is the shard's owned mode-0 row set (pure
//! [`ShardRing`] math) over the shared factors, which is all a worker
//! needs to answer its shard-scoped queries.

use super::shard::ShardRing;
use crate::registry::ModelRegistry;
use splatt_core::{load_model_path, KruskalModel};
use std::path::Path;
use std::sync::Arc;

/// A named, shared, read-only model payload; see the module docs.
#[derive(Debug, Clone)]
pub struct SharedModel {
    /// Registry name workers publish the payload under.
    pub name: String,
    /// The single shared parse of the model.
    pub payload: Arc<KruskalModel>,
}

/// One worker's view of a [`SharedModel`]: which mode-0 rows it owns.
#[derive(Debug, Clone)]
pub struct ShardView {
    pub shard: u32,
    /// Owned mode-0 indices, ascending.
    pub rows: Vec<u32>,
}

impl SharedModel {
    /// Parse the model file at `path` once (any format
    /// [`load_model_path`] accepts).
    ///
    /// # Errors
    /// Propagates I/O and parse failures.
    pub fn load(name: &str, path: &Path) -> std::io::Result<SharedModel> {
        Ok(SharedModel {
            name: name.to_string(),
            payload: Arc::new(load_model_path(path)?),
        })
    }

    /// Wrap an in-memory model (tests, or a model just trained).
    pub fn from_model(name: &str, model: KruskalModel) -> SharedModel {
        SharedModel {
            name: name.to_string(),
            payload: Arc::new(model),
        }
    }

    /// Mode-0 extent — the dimension the ring partitions.
    pub fn dim0(&self) -> usize {
        self.payload.factors.first().map_or(0, |f| f.rows())
    }

    /// Publish the shared payload on a worker's registry. Every worker
    /// calls this with a clone of the same `Arc`; the factors are never
    /// duplicated.
    pub fn publish_on(&self, registry: &ModelRegistry) -> u64 {
        registry.publish_arc(&self.name, Arc::clone(&self.payload))
    }

    /// The row view `shard` serves under `ring`.
    pub fn view(&self, ring: &ShardRing, shard: u32) -> ShardView {
        ShardView {
            shard,
            rows: ring.owned_rows(shard, self.dim0()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_dense::Matrix;

    fn model() -> KruskalModel {
        KruskalModel {
            lambda: vec![1.0, 2.0],
            factors: vec![Matrix::random(9, 2, 1), Matrix::random(4, 2, 2)],
        }
    }

    #[test]
    fn views_partition_the_shared_payload_without_copies() {
        let shared = SharedModel::from_model("m", model());
        let ring = ShardRing::new(3, 77);
        let reg_a = ModelRegistry::new();
        let reg_b = ModelRegistry::new();
        assert_eq!(shared.publish_on(&reg_a), 1);
        assert_eq!(shared.publish_on(&reg_b), 1);
        let a = reg_a.get("m", 0).unwrap();
        let b = reg_b.get("m", 0).unwrap();
        assert!(
            Arc::ptr_eq(&a.model, &b.model),
            "both registries must serve the same heap payload"
        );
        let mut total = 0;
        for shard in 0..3 {
            total += shared.view(&ring, shard).rows.len();
        }
        assert_eq!(total, shared.dim0(), "views cover every mode-0 row");
    }

    #[test]
    fn round_trips_through_the_model_file() {
        let dir = std::env::temp_dir().join("splatt-serve-shared-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.model");
        let m = model();
        let mut bytes = Vec::new();
        splatt_core::save_model(&m, &mut bytes).unwrap();
        std::fs::write(&path, bytes).unwrap();
        let shared = SharedModel::load("m", &path).unwrap();
        assert_eq!(shared.dim0(), 9);
        assert_eq!(shared.payload.lambda, m.lambda);
        let _ = std::fs::remove_file(&path);
    }
}
