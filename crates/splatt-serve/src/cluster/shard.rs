//! Consistent-hash sharding of mode-0 factor rows, and the worker grid
//! that places replicas.
//!
//! A [`ShardRing`] hashes every shard onto `VNODES` points of a `u64`
//! ring (SplitMix64 over `(seed, shard, vnode)`); a mode-0 index is
//! owned by the first shard point at or after its own hash, wrapping.
//! Ownership is therefore a pure function of `(nshards, seed, index)` —
//! the router and every worker rebuild identical rings from the
//! [`ShardSel`](crate::protocol::ShardSel) carried on the wire, so no
//! ownership table ever crosses the network.
//!
//! A [`ShardMap`] lays `nshards * nreplicas` workers on a
//! `[nshards, nreplicas]` [`ProcessGrid`] — the same row-major grid math
//! the medium-grained decomposition uses to place ranks — so shard `s`'s
//! replica set is exactly the grid's mode-0 layer `s`.

use splatt_dist::ProcessGrid;

/// Virtual points per shard on the hash ring. More points smooth the
/// row balance across shards; 64 keeps worst-case skew low while the
/// ring (nshards * 64 points) stays small enough to rebuild per query.
pub const VNODES: usize = 64;

/// SplitMix64 finalizer: a cheap, well-mixed `u64 -> u64` hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Consistent-hash ring over mode-0 indices; see the module docs.
#[derive(Debug, Clone)]
pub struct ShardRing {
    nshards: usize,
    seed: u64,
    /// `(ring point, shard)`, sorted by point (shard breaks the
    /// astronomically-unlikely point tie deterministically).
    points: Vec<(u64, u32)>,
}

impl ShardRing {
    /// Build the ring for `nshards` shards under `seed`.
    ///
    /// # Panics
    /// Panics when `nshards` is zero.
    pub fn new(nshards: usize, seed: u64) -> Self {
        assert!(nshards > 0, "ring needs at least one shard");
        let mut points = Vec::with_capacity(nshards * VNODES);
        for shard in 0..nshards as u64 {
            let base = splitmix64(seed ^ splitmix64(shard));
            for vnode in 0..VNODES as u64 {
                points.push((splitmix64(base ^ vnode), shard as u32));
            }
        }
        points.sort_unstable();
        ShardRing {
            nshards,
            seed,
            points,
        }
    }

    /// Number of shards on the ring.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// The seed the ring was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard owning mode-0 index `index`.
    pub fn shard_of(&self, index: u32) -> u32 {
        // A different salt than the vnode hash, so index positions do
        // not correlate with shard points.
        let h = splitmix64(self.seed ^ 0xd1b5_4a32_d192_ed03 ^ u64::from(index));
        let at = self.points.partition_point(|&(p, _)| p < h);
        self.points[at % self.points.len()].1
    }

    /// Every mode-0 index in `0..dim` owned by `shard`, ascending.
    pub fn owned_rows(&self, shard: u32, dim: usize) -> Vec<u32> {
        (0..dim as u32)
            .filter(|&i| self.shard_of(i) == shard)
            .collect()
    }
}

/// Placement of `nshards * nreplicas` workers on a `[nshards,
/// nreplicas]` process grid: worker rank `shard * nreplicas + replica`.
#[derive(Debug, Clone)]
pub struct ShardMap {
    grid: ProcessGrid,
}

impl ShardMap {
    /// A map for `nshards` shards each served by `nreplicas` workers.
    ///
    /// # Panics
    /// Panics when either count is zero.
    pub fn new(nshards: usize, nreplicas: usize) -> Self {
        ShardMap {
            grid: ProcessGrid::new(vec![nshards, nreplicas]),
        }
    }

    /// Shard count (grid extent 0).
    pub fn nshards(&self) -> usize {
        self.grid.dims()[0]
    }

    /// Replicas per shard (grid extent 1).
    pub fn nreplicas(&self) -> usize {
        self.grid.dims()[1]
    }

    /// Total worker count.
    pub fn nworkers(&self) -> usize {
        self.grid.nprocs()
    }

    /// The worker ranks replicating `shard`, ascending.
    pub fn replicas(&self, shard: usize) -> Vec<usize> {
        self.grid.ranks_with_coord(0, shard)
    }

    /// The shard worker `rank` serves.
    pub fn shard_of_worker(&self, rank: usize) -> usize {
        self.grid.coords_of(rank)[0]
    }

    /// Worker `rank`'s replica index within its shard.
    pub fn replica_of_worker(&self, rank: usize) -> usize {
        self.grid.coords_of(rank)[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_partitions_every_index() {
        let ring = ShardRing::new(3, 42);
        let dim = 500;
        let mut owned = [0usize; 3];
        for shard in 0..3 {
            let rows = ring.owned_rows(shard, dim);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            for &r in &rows {
                assert_eq!(ring.shard_of(r), shard);
            }
            owned[shard as usize] = rows.len();
        }
        assert_eq!(owned.iter().sum::<usize>(), dim, "partition covers 0..dim");
        // Vnodes keep the split from degenerating: no shard is empty and
        // none holds more than 2/3 of the rows.
        for (shard, &n) in owned.iter().enumerate() {
            assert!(n > 0, "shard {shard} owns nothing");
            assert!(n < dim * 2 / 3, "shard {shard} owns {n}/{dim}");
        }
    }

    #[test]
    fn ring_is_deterministic_in_its_seed() {
        let a = ShardRing::new(4, 7);
        let b = ShardRing::new(4, 7);
        let c = ShardRing::new(4, 8);
        let mut moved = 0;
        for i in 0..300 {
            assert_eq!(a.shard_of(i), b.shard_of(i));
            moved += usize::from(a.shard_of(i) != c.shard_of(i));
        }
        assert!(moved > 0, "a different seed must reshuffle ownership");
    }

    #[test]
    fn growing_the_ring_moves_only_some_rows() {
        // The consistent-hashing property: adding a shard relocates a
        // fraction of the rows, never reshuffles everything.
        let small = ShardRing::new(3, 42);
        let big = ShardRing::new(4, 42);
        let dim = 600u32;
        let moved = (0..dim)
            .filter(|&i| small.shard_of(i) != big.shard_of(i))
            .count();
        assert!(moved > 0, "the new shard must take some rows");
        assert!(
            moved < dim as usize / 2,
            "only a minority may move, got {moved}/{dim}"
        );
        // Rows that moved all landed on the new shard.
        for i in 0..dim {
            if small.shard_of(i) != big.shard_of(i) {
                assert_eq!(big.shard_of(i), 3, "row {i} moved to an old shard");
            }
        }
    }

    #[test]
    fn shard_map_places_replica_sets_on_grid_layers() {
        let map = ShardMap::new(3, 2);
        assert_eq!(map.nworkers(), 6);
        assert_eq!(map.replicas(0), vec![0, 1]);
        assert_eq!(map.replicas(2), vec![4, 5]);
        for rank in 0..6 {
            assert_eq!(map.shard_of_worker(rank), rank / 2);
            assert_eq!(map.replica_of_worker(rank), rank % 2);
            assert!(map.replicas(map.shard_of_worker(rank)).contains(&rank));
        }
    }
}
