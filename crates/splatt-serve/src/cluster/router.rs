//! The scatter-gather router: one front end over N×M shard workers.
//!
//! The router speaks the exact same wire protocol as a single-process
//! server, so clients cannot tell a cluster from one worker — except
//! that answers keep flowing while shards die under them. Per incoming
//! query it:
//!
//! 1. **Routes** by consistent hash over the mode-0 coordinate
//!    ([`ShardRing`]): entry tuples group by `shard_of(coords[0])`,
//!    mode-0 slices go whole to the owner, `mode != 0` slices and
//!    mode-0 top-k scatter shard-scoped sub-queries to every shard.
//! 2. **Fails over**: each shard call sweeps the shard's replica set in
//!    health order (`Live` first, `Suspect` next, `Dead` skipped).
//!    Transport failures mark the replica and move to the next; typed
//!    transient errors (`Overloaded`, `ShuttingDown`) try a sibling
//!    without a health penalty. When the whole sweep fails, the router
//!    backs off with the same capped-exponential [`RetryPolicy`] the
//!    client retry helper uses, clamped to the request's [`Deadline`],
//!    and sweeps again.
//! 3. **Degrades typed**: a shard whose every replica is `Dead` yields
//!    `WireError::Degraded` — the answer is absent, never silently
//!    partial.
//! 4. **Merges bit-identically**: top-k partials merge with the same
//!    `(score desc by total_cmp, index asc)` comparator the
//!    single-process kernel sorts with, and slice blocks stitch at each
//!    owned row's offset — so a cluster answer is bit-for-bit the
//!    single-process oracle's.
//!
//! A background pinger probes every worker (`Health` op) on a short
//! interval, re-admitting `Dead` workers whose probe succeeds and
//! recording per-shard replica lag (max−min probe round-trip). An
//! optional [`NetFaultPlan`] lets tests inject deterministic replica
//! delays and frame corruption at the router's transport seam.

use super::health::HealthBoard;
use super::shard::{ShardMap, ShardRing};
use super::shared::SharedModel;
use crate::client::{classify, Client, Transience};
use crate::protocol::{
    decode_request, decode_response, encode_response, Request, RequestBody, Response, ShardSel,
    WireError, MAX_FRAME,
};
use crate::service::{accept_shed_frame, backstop_frame, net_row_of, peek_deadline, shed_frame};
use crate::stats::ServeStats;
use splatt_faults::NetFaultPlan;
use splatt_guard::{CancelToken, Deadline, RetryPolicy};
use splatt_net::{
    serve_frames, Disposition, FrameService, NetCounters, NetHandle, NetSnapshot, ReactorConfig,
    Reply, RequestCtx, ShedLayer,
};
use splatt_probe::{ProfileReport, ShardRow};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Hash-range shards (ring partitions of mode 0).
    pub nshards: usize,
    /// Workers replicating each shard.
    pub nreplicas: usize,
    /// Ring seed; carried in every [`ShardSel`] so workers re-derive
    /// identical ownership.
    pub seed: u64,
    /// Backoff between failed replica sweeps — the same policy shape
    /// [`Client::call_with_retry`] uses.
    pub retry: RetryPolicy,
    /// Deadline for requests that do not carry their own.
    pub default_deadline: Duration,
    /// Consecutive transport failures before a worker is `Dead`.
    pub dead_after: u32,
    /// Pause between health-probe sweeps.
    pub health_interval: Duration,
    /// Per-dial timeout when connecting to a worker.
    pub connect_timeout: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nshards: 3,
            nreplicas: 2,
            seed: 0x51a77,
            retry: RetryPolicy::default(),
            default_deadline: Duration::from_secs(5),
            dead_after: 2,
            health_interval: Duration::from_millis(25),
            connect_timeout: Duration::from_millis(500),
        }
    }
}

#[derive(Debug, Default)]
struct ShardCounters {
    retries: AtomicU64,
    failovers: AtomicU64,
    degraded: AtomicU64,
    replica_lag_micros: AtomicU64,
}

/// The scatter-gather router; see the module docs.
pub struct Router {
    config: ClusterConfig,
    map: ShardMap,
    ring: ShardRing,
    model: SharedModel,
    workers: Vec<SocketAddr>,
    health: HealthBoard,
    counters: Vec<ShardCounters>,
    stats: ServeStats,
    faults: Option<Arc<NetFaultPlan>>,
    /// Monotonic routed-sub-query counter: the fault plan's site
    /// "iteration" coordinate.
    seq: AtomicUsize,
    stop: CancelToken,
}

impl Router {
    /// Build a router over `workers` (rank order: `shard * nreplicas +
    /// replica`, the [`ShardMap`] layout).
    ///
    /// # Panics
    /// Panics when `workers.len() != nshards * nreplicas`.
    pub fn new(config: ClusterConfig, model: SharedModel, workers: Vec<SocketAddr>) -> Router {
        let map = ShardMap::new(config.nshards, config.nreplicas);
        assert_eq!(
            workers.len(),
            map.nworkers(),
            "worker list does not tile the [nshards, nreplicas] grid"
        );
        let ring = ShardRing::new(config.nshards, config.seed);
        let counters = (0..config.nshards)
            .map(|_| ShardCounters::default())
            .collect();
        let health = HealthBoard::new(workers.len(), config.dead_after);
        Router {
            map,
            ring,
            model,
            workers,
            health,
            counters,
            stats: ServeStats::new(),
            faults: None,
            seq: AtomicUsize::new(0),
            stop: CancelToken::new(),
            config,
        }
    }

    /// Inject a deterministic fault schedule at the transport seam.
    pub fn with_faults(mut self, plan: Arc<NetFaultPlan>) -> Router {
        self.faults = Some(plan);
        self
    }

    /// The router's stop token (shared with its front end and pinger).
    pub fn stop_token(&self) -> &CancelToken {
        &self.stop
    }

    /// Health ledger over the worker set.
    pub fn health(&self) -> &HealthBoard {
        &self.health
    }

    /// Worker addresses by rank.
    pub fn workers(&self) -> &[SocketAddr] {
        &self.workers
    }

    /// The shard/replica placement grid.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Total sub-queries routed so far (the storm-progress numerator the
    /// kill schedule is driven by).
    pub fn routed(&self) -> usize {
        self.seq.load(Ordering::Relaxed)
    }

    /// Answer one protocol request, scatter-gathering across shards.
    pub fn handle(&self, req: &Request) -> Response {
        let deadline = Deadline::after(if req.deadline_ms > 0 {
            Duration::from_millis(u64::from(req.deadline_ms))
        } else {
            self.config.default_deadline
        });
        let started = Instant::now();
        let kind = match &req.body {
            RequestBody::Entry { .. } => Some(crate::stats::QueryKind::Entry),
            RequestBody::Slice { .. } => Some(crate::stats::QueryKind::Slice),
            RequestBody::TopK { .. } => Some(crate::stats::QueryKind::TopK),
            _ => None,
        };
        let resp = match &req.body {
            RequestBody::Stats => Response::Stats(self.profile_report().to_json()),
            RequestBody::List => self.call_shard(
                0,
                &self.sub_request(req, RequestBody::List, &deadline),
                &deadline,
            ),
            RequestBody::Shutdown => Response::Ack,
            RequestBody::Health => Response::Health {
                worker: u32::MAX,
                shard: u32::MAX,
            },
            RequestBody::Entry { order, coords } => self.entry(req, *order, coords, &deadline),
            RequestBody::Slice { mode, index } => self.slice(req, *mode, *index, &deadline),
            RequestBody::TopK { mode, k, fixed } => self.top_k(req, *mode, *k, fixed, &deadline),
            RequestBody::TopKShard { .. } | RequestBody::SliceShard { .. } => Response::Error(
                WireError::BadRequest,
                "shard-scoped ops are router-internal".into(),
            ),
        };
        if let (Some(kind), false) = (kind, matches!(resp, Response::Error(..))) {
            self.stats
                .record_latency(kind, started.elapsed().as_micros() as u64);
        }
        resp
    }

    /// Probe report with the schema v10 `serve` object: router-side
    /// latency histograms plus the per-shard failover counters (the
    /// front end splices its `net` row in before serialising).
    pub fn profile_report(&self) -> ProfileReport {
        let mut row = self.stats.to_row(0, 0, 0, 0);
        row.shards = (0..self.config.nshards)
            .map(|shard| {
                let c = &self.counters[shard];
                ShardRow {
                    shard,
                    retries: c.retries.load(Ordering::Relaxed),
                    failovers: c.failovers.load(Ordering::Relaxed),
                    degraded: c.degraded.load(Ordering::Relaxed),
                    health_transitions: self
                        .map
                        .replicas(shard)
                        .iter()
                        .map(|&w| self.health.transitions_of(w))
                        .sum(),
                    replica_lag_micros: c.replica_lag_micros.load(Ordering::Relaxed),
                }
            })
            .collect();
        ProfileReport {
            ntasks: self.map.nworkers(),
            serve: Some(row),
            ..Default::default()
        }
    }

    fn sub_request(&self, req: &Request, body: RequestBody, deadline: &Deadline) -> Request {
        Request {
            deadline_ms: deadline
                .remaining()
                .as_millis()
                .clamp(1, u128::from(u32::MAX)) as u32,
            model: req.model.clone(),
            version: req.version,
            body,
        }
    }

    fn sel(&self, shard: usize) -> ShardSel {
        ShardSel {
            shard: shard as u32,
            nshards: self.config.nshards as u32,
            seed: self.config.seed,
        }
    }

    /// One transport-level call to worker `rank`, with the fault plan's
    /// delay/corruption hooks applied. A fresh connection per call keeps
    /// a killed worker's cost to one failed dial.
    fn call_worker(
        &self,
        rank: usize,
        req: &Request,
        qidx: usize,
        deadline: &Deadline,
    ) -> std::io::Result<Response> {
        if let Some(faults) = &self.faults {
            if let Some(delay) = faults.delay_before_send(qidx, rank) {
                std::thread::sleep(deadline.clamp(delay));
            }
        }
        let mut client =
            Client::connect_with_timeout(self.workers[rank], self.config.connect_timeout)?;
        client.set_io_timeout(Some(deadline.remaining().max(Duration::from_millis(10))))?;
        let mut frame = client.call_frame(req)?;
        if let Some(faults) = &self.faults {
            faults.corrupt_frame(qidx, rank, &mut frame);
        }
        decode_response(&frame)
    }

    /// Call `shard` with transparent replica failover; see module docs.
    fn call_shard(&self, shard: usize, req: &Request, deadline: &Deadline) -> Response {
        let replicas = self.map.replicas(shard);
        let counters = &self.counters[shard];
        let mut retry = 0u32;
        let mut last: Option<Response> = None;
        loop {
            if deadline.expired() {
                return last.unwrap_or_else(|| {
                    Response::Error(
                        WireError::DeadlineExpired,
                        "routing budget exhausted".into(),
                    )
                });
            }
            let sweep = self.health.sweep_order(&replicas);
            if sweep.is_empty() {
                counters.degraded.fetch_add(1, Ordering::Relaxed);
                return Response::Error(
                    WireError::Degraded,
                    format!("shard {shard} has no live replica"),
                );
            }
            for (hop, &rank) in sweep.iter().enumerate() {
                if hop > 0 {
                    counters.failovers.fetch_add(1, Ordering::Relaxed);
                }
                let qidx = self.seq.fetch_add(1, Ordering::Relaxed);
                match self.call_worker(rank, req, qidx, deadline) {
                    Ok(Response::Error(code, msg)) => {
                        // The worker answered: alive, whatever the code.
                        self.health.record_success(rank);
                        if classify(code) == Transience::Permanent {
                            return Response::Error(code, msg);
                        }
                        last = Some(Response::Error(code, msg));
                    }
                    Ok(resp) => {
                        self.health.record_success(rank);
                        return resp;
                    }
                    Err(e) => {
                        self.health.record_failure(rank);
                        last = Some(Response::Error(
                            WireError::Internal,
                            format!("worker {rank} transport: {e}"),
                        ));
                    }
                }
            }
            if !self.config.retry.allows(retry)
                || !self.config.retry.sleep_before_retry(retry, deadline)
            {
                return last.expect("non-empty sweep recorded an outcome");
            }
            counters.retries.fetch_add(1, Ordering::Relaxed);
            retry += 1;
        }
    }

    /// Scatter sub-bodies to the shards that need them; results come
    /// back indexed by shard (`None` where nothing was sent). Shards are
    /// checked for errors in ascending order, so error precedence is
    /// deterministic.
    fn scatter(
        &self,
        req: &Request,
        bodies: Vec<Option<RequestBody>>,
        deadline: &Deadline,
    ) -> Vec<Option<Response>> {
        let mut results: Vec<Option<Response>> = vec![None; bodies.len()];
        std::thread::scope(|scope| {
            for (shard, (body, slot)) in bodies.into_iter().zip(results.iter_mut()).enumerate() {
                let Some(body) = body else { continue };
                let sub = self.sub_request(req, body, deadline);
                scope.spawn(move || {
                    *slot = Some(self.call_shard(shard, &sub, deadline));
                });
            }
        });
        results
    }

    fn entry(&self, req: &Request, order: u8, coords: &[u32], deadline: &Deadline) -> Response {
        let ord = order as usize;
        if ord == 0 || !coords.len().is_multiple_of(ord) {
            return Response::Error(
                WireError::BadRequest,
                format!("{} coordinates do not tile order {ord}", coords.len()),
            );
        }
        let ntuples = coords.len() / ord;
        let mut tuples_of: Vec<Vec<usize>> = vec![Vec::new(); self.config.nshards];
        for t in 0..ntuples {
            tuples_of[self.ring.shard_of(coords[t * ord]) as usize].push(t);
        }
        let bodies = tuples_of
            .iter()
            .map(|tuples| {
                if tuples.is_empty() {
                    return None;
                }
                let mut sub = Vec::with_capacity(tuples.len() * ord);
                for &t in tuples {
                    sub.extend_from_slice(&coords[t * ord..(t + 1) * ord]);
                }
                Some(RequestBody::Entry { order, coords: sub })
            })
            .collect();
        let results = self.scatter(req, bodies, deadline);
        let mut out = vec![0.0f64; ntuples];
        for (shard, result) in results.into_iter().enumerate() {
            let Some(result) = result else { continue };
            match result {
                Response::Entries(vals) if vals.len() == tuples_of[shard].len() => {
                    for (&t, v) in tuples_of[shard].iter().zip(&vals) {
                        out[t] = *v;
                    }
                }
                Response::Error(code, msg) => return Response::Error(code, msg),
                other => {
                    return Response::Error(
                        WireError::Internal,
                        format!("shard {shard} answered {other:?} to an entry batch"),
                    )
                }
            }
        }
        Response::Entries(out)
    }

    fn slice(&self, req: &Request, mode: u8, index: u32, deadline: &Deadline) -> Response {
        let order = self.model.payload.order();
        if mode as usize >= order {
            return Response::Error(
                WireError::BadRequest,
                format!("mode {mode} out of range for order {order}"),
            );
        }
        if mode == 0 {
            // A mode-0 slice lives wholly on the owner of its index.
            let shard = self.ring.shard_of(index) as usize;
            let sub = self.sub_request(req, RequestBody::Slice { mode, index }, deadline);
            return self.call_shard(shard, &sub, deadline);
        }
        let dim0 = self.model.dim0();
        let block: usize = self
            .model
            .payload
            .factors
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != 0 && m != mode as usize)
            .map(|(_, f)| f.rows())
            .product();
        let bodies = (0..self.config.nshards)
            .map(|shard| {
                Some(RequestBody::SliceShard {
                    mode,
                    index,
                    sel: self.sel(shard),
                })
            })
            .collect();
        let results = self.scatter(req, bodies, deadline);
        let mut full = vec![0.0f64; dim0 * block];
        for (shard, result) in results.into_iter().enumerate() {
            match result.expect("every shard was queried") {
                Response::Slice(partial) => {
                    let rows = self.ring.owned_rows(shard as u32, dim0);
                    if partial.len() != rows.len() * block {
                        return Response::Error(
                            WireError::Internal,
                            format!("shard {shard} returned a mis-sized slice partial"),
                        );
                    }
                    for (j, &row) in rows.iter().enumerate() {
                        full[row as usize * block..][..block]
                            .copy_from_slice(&partial[j * block..][..block]);
                    }
                }
                Response::Error(code, msg) => return Response::Error(code, msg),
                other => {
                    return Response::Error(
                        WireError::Internal,
                        format!("shard {shard} answered {other:?} to a slice partial"),
                    )
                }
            }
        }
        Response::Slice(full)
    }

    fn top_k(
        &self,
        req: &Request,
        mode: u8,
        k: u32,
        fixed: &[u32],
        deadline: &Deadline,
    ) -> Response {
        if mode != 0 {
            // Mode 0 is fixed, so the whole query lives on the owner of
            // its mode-0 coordinate (`fixed` is ordered by mode with
            // `mode` itself skipped — index 0 is always mode 0 here).
            let Some(&anchor) = fixed.first() else {
                return Response::Error(
                    WireError::BadRequest,
                    "top-k with no fixed coordinates".into(),
                );
            };
            let shard = self.ring.shard_of(anchor) as usize;
            let sub = self.sub_request(
                req,
                RequestBody::TopK {
                    mode,
                    k,
                    fixed: fixed.to_vec(),
                },
                deadline,
            );
            return self.call_shard(shard, &sub, deadline);
        }
        let bodies = (0..self.config.nshards)
            .map(|shard| {
                Some(RequestBody::TopKShard {
                    mode,
                    k,
                    fixed: fixed.to_vec(),
                    sel: self.sel(shard),
                })
            })
            .collect();
        let results = self.scatter(req, bodies, deadline);
        let mut merged: Vec<(u32, f64)> = Vec::new();
        for (shard, result) in results.into_iter().enumerate() {
            match result.expect("every shard was queried") {
                Response::TopK(pairs) => merged.extend(pairs),
                Response::Error(code, msg) => return Response::Error(code, msg),
                other => {
                    return Response::Error(
                        WireError::Internal,
                        format!("shard {shard} answered {other:?} to a top-k partial"),
                    )
                }
            }
        }
        // The exact comparator the single-process kernel sorts with, so
        // the merged prefix is bit-identical to the oracle's.
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate((k as usize).min(self.model.dim0()));
        Response::TopK(merged)
    }
}

/// A running router front end (reactor + health pinger).
pub struct RouterHandle {
    addr: SocketAddr,
    router: Arc<Router>,
    front: Option<NetHandle>,
    health_thread: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router behind this front end.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Reactor front-end counters.
    pub fn net_counters(&self) -> Option<NetSnapshot> {
        self.front.as_ref().map(NetHandle::counters)
    }

    /// Trip the stop token without blocking.
    pub fn request_shutdown(&self) {
        self.router.stop.cancel();
    }

    /// Block until the router stops (token tripped by the wire
    /// `Shutdown` op or [`RouterHandle::request_shutdown`]), then join
    /// its threads.
    pub fn join(mut self) {
        if let Some(f) = self.front.take() {
            f.wait();
        }
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
    }

    /// Stop and join the reactor and health threads.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

/// The router's [`FrameService`]: decode, dispatch to
/// [`Router::handle`], and splice the reactor's own counters into
/// `Stats` answers. The reactor worker pool replaces the old
/// thread-per-connection loop, so a slow shard sweep on one connection
/// no longer costs a dedicated thread.
struct RouterService {
    router: Arc<Router>,
    net: OnceLock<Arc<NetCounters>>,
}

impl FrameService for RouterService {
    fn handle(&self, payload: &[u8], _ctx: &RequestCtx) -> Reply {
        let response = match decode_request(payload) {
            Ok(req) => {
                if matches!(req.body, RequestBody::Stats) {
                    let mut report = self.router.profile_report();
                    if let Some(serve) = report.serve.as_mut() {
                        serve.net = self.net.get().map(|c| net_row_of(c));
                    }
                    Response::Stats(report.to_json())
                } else {
                    self.router.handle(&req)
                }
            }
            Err(e) => Response::Error(WireError::BadRequest, e.to_string()),
        };
        let disposition = if matches!(response, Response::Ack) {
            Disposition::ShutdownAfterWrite
        } else {
            Disposition::Continue
        };
        Reply {
            payload: encode_response(&response),
            disposition,
        }
    }

    fn deadline_of(&self, payload: &[u8]) -> Option<Duration> {
        peek_deadline(payload, self.router.config.default_deadline)
    }

    fn shed_reply(&self, layer: ShedLayer) -> Vec<u8> {
        shed_frame(layer)
    }

    fn deadline_reply(&self) -> Vec<u8> {
        backstop_frame()
    }

    fn on_shutdown(&self) {
        self.router.stop.cancel();
    }
}

/// Bind `addr` and serve the wire protocol through `router` on the
/// reactor front end.
///
/// # Errors
/// Propagates bind and reactor setup failures.
pub fn serve_router(router: Arc<Router>, addr: &str) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let config = ReactorConfig {
        max_frame: MAX_FRAME,
        accept_shed_frame: accept_shed_frame(ReactorConfig::default().max_conns),
        thread_name: "splatt-router".to_string(),
        ..ReactorConfig::default()
    };
    let service = Arc::new(RouterService {
        router: Arc::clone(&router),
        net: OnceLock::new(),
    });
    let stop = router.stop.child();
    let handle = serve_frames(
        listener,
        Arc::clone(&service) as Arc<dyn FrameService>,
        config,
        stop,
    )?;
    let _ = service.net.set(handle.counters_handle());
    let health_router = Arc::clone(&router);
    let health_thread = std::thread::Builder::new()
        .name("splatt-router-health".into())
        .spawn(move || health_loop(&health_router))?;
    Ok(RouterHandle {
        addr: local,
        router,
        front: Some(handle),
        health_thread: Some(health_thread),
    })
}

/// Probe every worker, feed the health board, and record per-shard
/// replica lag (max−min probe round-trip among answering replicas).
fn health_loop(router: &Arc<Router>) {
    while !router.stop.is_cancelled() {
        let mut rtt = vec![None::<u64>; router.workers.len()];
        for (rank, slot) in rtt.iter_mut().enumerate() {
            if router.stop.is_cancelled() {
                return;
            }
            let started = Instant::now();
            let probe =
                Client::connect_with_timeout(router.workers[rank], router.config.connect_timeout)
                    .and_then(|mut c| {
                        c.set_io_timeout(Some(router.config.connect_timeout))?;
                        c.health()
                    });
            match probe {
                Ok(Response::Health { .. }) => {
                    router.health.record_success(rank);
                    *slot = Some(started.elapsed().as_micros() as u64);
                }
                Ok(_) | Err(_) => {
                    router.health.record_failure(rank);
                }
            }
        }
        for shard in 0..router.config.nshards {
            let answered: Vec<u64> = router
                .map
                .replicas(shard)
                .iter()
                .filter_map(|&w| rtt[w])
                .collect();
            if answered.len() >= 2 {
                let lag = answered.iter().max().unwrap() - answered.iter().min().unwrap();
                router.counters[shard]
                    .replica_lag_micros
                    .store(lag, Ordering::Relaxed);
            }
        }
        let mut waited = Duration::ZERO;
        while waited < router.config.health_interval && !router.stop.is_cancelled() {
            let nap = Duration::from_millis(5).min(router.config.health_interval - waited);
            std::thread::sleep(nap);
            waited += nap;
        }
    }
}
