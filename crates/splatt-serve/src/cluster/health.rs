//! Worker health tracking: `Live` / `Suspect` / `Dead` with automatic
//! re-admission.
//!
//! The router records an observation per worker call (or health-check
//! ping): a *transport-level* failure moves `Live → Suspect`, and
//! `dead_after` consecutive failures move `Suspect → Dead`. Dead workers
//! are skipped by replica selection; the router's background pinger
//! keeps probing them, and one successful probe re-admits the worker to
//! `Live` — so a restarted shard rejoins the rotation without operator
//! action. Typed server errors (`Overloaded`, `ShuttingDown`) are *not*
//! health failures: the worker answered, it just could not serve.
//!
//! Every state change increments a per-worker transition counter; the
//! totals surface in the probe schema v7 `serve.shards` rows.

use splatt_rt::sync::Mutex;

/// Liveness verdict for one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Answering normally.
    Live,
    /// At least one recent failure; still tried, after live replicas.
    Suspect,
    /// `dead_after` consecutive failures; skipped until a probe succeeds.
    Dead,
}

impl HealthState {
    /// Stable label for logs and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Live => "live",
            HealthState::Suspect => "suspect",
            HealthState::Dead => "dead",
        }
    }

    fn rank(self) -> u8 {
        match self {
            HealthState::Live => 0,
            HealthState::Suspect => 1,
            HealthState::Dead => 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct WorkerEntry {
    state: HealthState,
    consecutive_failures: u32,
    transitions: u64,
}

/// Shared health ledger over a fixed worker set; see the module docs.
#[derive(Debug)]
pub struct HealthBoard {
    workers: Mutex<Vec<WorkerEntry>>,
    dead_after: u32,
}

impl HealthBoard {
    /// A board tracking `nworkers` workers, all initially [`HealthState::Live`];
    /// `dead_after` consecutive failures turn a worker [`HealthState::Dead`].
    ///
    /// # Panics
    /// Panics when `dead_after` is zero.
    pub fn new(nworkers: usize, dead_after: u32) -> Self {
        assert!(dead_after > 0, "dead_after must be positive");
        HealthBoard {
            workers: Mutex::new(vec![
                WorkerEntry {
                    state: HealthState::Live,
                    consecutive_failures: 0,
                    transitions: 0,
                };
                nworkers
            ]),
            dead_after,
        }
    }

    /// Current state of `worker`.
    pub fn state(&self, worker: usize) -> HealthState {
        self.workers.lock()[worker].state
    }

    /// Record a successful call or probe; a `Suspect`/`Dead` worker is
    /// re-admitted to `Live`. Returns true when that transition fired.
    pub fn record_success(&self, worker: usize) -> bool {
        let mut workers = self.workers.lock();
        let entry = &mut workers[worker];
        entry.consecutive_failures = 0;
        if entry.state != HealthState::Live {
            entry.state = HealthState::Live;
            entry.transitions += 1;
            true
        } else {
            false
        }
    }

    /// Record a transport-level failure; returns the new state when a
    /// transition fired.
    pub fn record_failure(&self, worker: usize) -> Option<HealthState> {
        let mut workers = self.workers.lock();
        let entry = &mut workers[worker];
        entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
        let next = if entry.consecutive_failures >= self.dead_after {
            HealthState::Dead
        } else {
            HealthState::Suspect
        };
        if entry.state != next {
            entry.state = next;
            entry.transitions += 1;
            Some(next)
        } else {
            None
        }
    }

    /// Order `workers` for a failover sweep: `Live` first, then
    /// `Suspect` (stable within a class). `Dead` workers are omitted —
    /// an empty result means the caller's hash range is uncovered and
    /// the answer must be typed `Degraded`.
    pub fn sweep_order(&self, workers: &[usize]) -> Vec<usize> {
        let board = self.workers.lock();
        let mut out: Vec<usize> = workers
            .iter()
            .copied()
            .filter(|&w| board[w].state != HealthState::Dead)
            .collect();
        out.sort_by_key(|&w| board[w].state.rank());
        out
    }

    /// Total state transitions recorded for `worker`.
    pub fn transitions_of(&self, worker: usize) -> u64 {
        self.workers.lock()[worker].transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_escalate_and_success_readmits() {
        let board = HealthBoard::new(2, 3);
        assert_eq!(board.state(0), HealthState::Live);
        assert_eq!(board.record_failure(0), Some(HealthState::Suspect));
        assert_eq!(board.record_failure(0), None, "still suspect");
        assert_eq!(board.record_failure(0), Some(HealthState::Dead));
        assert_eq!(board.record_failure(0), None, "stays dead");
        assert!(board.record_success(0), "probe re-admits");
        assert_eq!(board.state(0), HealthState::Live);
        assert!(!board.record_success(0), "already live");
        // 3 transitions: live->suspect, suspect->dead, dead->live.
        assert_eq!(board.transitions_of(0), 3);
        assert_eq!(board.transitions_of(1), 0, "worker 1 untouched");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let board = HealthBoard::new(1, 2);
        board.record_failure(0);
        board.record_success(0);
        assert_eq!(
            board.record_failure(0),
            Some(HealthState::Suspect),
            "streak restarted, not dead"
        );
    }

    #[test]
    fn sweep_order_prefers_live_and_drops_dead() {
        let board = HealthBoard::new(4, 1);
        board.record_failure(3); // dead_after=1: straight to Dead
        let board2 = HealthBoard::new(4, 2);
        board2.record_failure(1); // suspect
        board2.record_failure(2);
        board2.record_failure(2); // dead
        assert_eq!(board.sweep_order(&[0, 1, 2, 3]), vec![0, 1, 2]);
        assert_eq!(board2.sweep_order(&[0, 1, 2, 3]), vec![0, 3, 1]);
        let all_dead = HealthBoard::new(2, 1);
        all_dead.record_failure(0);
        all_dead.record_failure(1);
        assert!(all_dead.sweep_order(&[0, 1]).is_empty(), "degraded range");
    }
}
