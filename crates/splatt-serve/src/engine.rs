//! The serving engine: admission control in front of a micro-batching
//! scheduler over a `splatt-par` task team.
//!
//! Request flow:
//!
//! 1. [`ServeEngine::query`] admits the request through the
//!    [`AdmissionGate`] (at capacity → typed
//!    [`ServeError::Overloaded`], immediately).
//! 2. Slice and top-k requests consult the LRU result cache; a hit
//!    returns without touching the scheduler.
//! 3. Misses are queued. A dedicated batcher thread drains the queue,
//!    coalesces requests by `(model version, query kind)`, and fans each
//!    batch out over the task team with static block partitioning —
//!    every task reconstructs with its own grow-only [`QueryArena`], so
//!    the steady-state hot path is allocation-free after warm-up.
//! 4. The caller blocks on a response slot with a deadline: expired
//!    requests come back as typed [`ServeError::DeadlineExpired`]
//!    (whether they expired in queue or while the caller waited), and a
//!    caller-supplied abort poll (the TCP front end's disconnect
//!    detector) turns an abandoned wait into cooperative cancellation —
//!    a request never hangs.
//!
//! Latency per kind, batch sizes, cache traffic, sheds, and arena growth
//! all land in [`ServeStats`], surfaced as the probe schema v5 `serve`
//! object via [`ServeEngine::profile_report`].

use crate::cache::{CacheKey, CacheValue, ResultCache};
use crate::cluster::ShardRing;
use crate::protocol::ShardSel;
use crate::registry::{ModelRegistry, ServableModel};
use crate::stats::{QueryKind, ServeStats};
use splatt_core::query::{self, QueryArena};
use splatt_guard::{AdmissionGate, CancelToken, Overloaded};
use splatt_par::{partition, TaskLocal, TaskTeam};
use splatt_probe::ProfileReport;
use splatt_rt::sync::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker tasks executing batched queries.
    pub ntasks: usize,
    /// Admission-gate depth: requests in flight beyond this are shed.
    pub max_depth: usize,
    /// Largest batch the scheduler coalesces per (model, kind) group.
    pub max_batch: usize,
    /// LRU result-cache capacity (entries); 0 disables caching.
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Reject slices (and entry batches) larger than this many values.
    pub max_response_values: usize,
    /// How long shutdown keeps executing already-queued requests before
    /// failing the remainder with [`ServeError::ShuttingDown`]. New
    /// submissions are rejected the moment shutdown starts.
    pub drain_deadline: Duration,
    /// Cluster identity reported by `Health` probes: worker rank and
    /// shard. `u32::MAX` means "not part of a cluster".
    pub worker: u32,
    /// See [`ServeConfig::worker`].
    pub shard: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ntasks: 4,
            max_depth: 256,
            max_batch: 64,
            cache_capacity: 256,
            default_deadline: Duration::from_secs(5),
            max_response_values: 1 << 22,
            drain_deadline: Duration::from_secs(2),
            worker: u32::MAX,
            shard: u32::MAX,
        }
    }
}

/// One query against a named model.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Reconstruct the modeled value at each coordinate tuple
    /// (flat, `order` entries per tuple).
    Entry { coords: Vec<u32> },
    /// Reconstruct the dense slice fixing `mode` at `index`.
    Slice { mode: u8, index: u32 },
    /// Score every index along `mode` against `fixed` and return the
    /// `k` best.
    TopK { mode: u8, k: u32, fixed: Vec<u32> },
    /// Shard-local top-k over mode 0: score only the mode-0 indices
    /// `sel` owns and return the `k` best partials (the cluster router
    /// merges partials from every shard).
    TopKShard {
        mode: u8,
        k: u32,
        fixed: Vec<u32>,
        sel: ShardSel,
    },
    /// Shard-local piece of a `mode != 0` slice: the mode-0 blocks `sel`
    /// owns, concatenated in ascending row order (the router stitches
    /// them back at each row's offset).
    SliceShard { mode: u8, index: u32, sel: ShardSel },
}

impl Query {
    /// The kind bucket this query records under. Shard-scoped queries
    /// record under their parent kind — they are the same kernels over a
    /// row subset, and keeping the kind set stable keeps the probe
    /// schema's per-kind rows comparable between cluster and
    /// single-process runs.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::Entry { .. } => QueryKind::Entry,
            Query::Slice { .. } | Query::SliceShard { .. } => QueryKind::Slice,
            Query::TopK { .. } | Query::TopKShard { .. } => QueryKind::TopK,
        }
    }
}

/// A successful query answer. Slice and top-k payloads are `Arc`-shared
/// with the result cache.
#[derive(Debug, Clone)]
pub enum QueryResult {
    Entries(Vec<f64>),
    Slice(Arc<Vec<f64>>),
    TopK(Arc<Vec<(u32, f64)>>),
}

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Shed by admission control; retry after backing off.
    Overloaded(Overloaded),
    /// The request's deadline expired before an answer was produced.
    DeadlineExpired,
    /// No such model name/version in the registry.
    ModelNotFound { name: String, version: u64 },
    /// The query does not fit the model (bad mode, coordinate, shape).
    BadQuery(String),
    /// The engine is shutting down.
    ShuttingDown,
    /// The caller abandoned the request (e.g. client disconnect).
    Cancelled,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded(o) => write!(f, "{o}"),
            ServeError::DeadlineExpired => write!(f, "deadline expired"),
            ServeError::ModelNotFound { name, version } => {
                if *version == 0 {
                    write!(f, "model '{name}' not found")
                } else {
                    write!(f, "model '{name}' version {version} not found")
                }
            }
            ServeError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Cancelled => write!(f, "request cancelled"),
        }
    }
}

impl std::error::Error for ServeError {}

enum SlotState {
    Waiting,
    Done(Result<QueryResult, ServeError>),
    /// The waiter gave up (deadline/cancel); late fills are dropped.
    Abandoned,
    /// The waiter took the result out.
    Consumed,
}

/// One-shot rendezvous between a waiting caller and the batcher.
struct ResponseSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(SlotState::Waiting),
            ready: Condvar::new(),
        })
    }

    fn prefilled(result: Result<QueryResult, ServeError>) -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(SlotState::Done(result)),
            ready: Condvar::new(),
        })
    }

    /// Deliver a result; returns false if the waiter already abandoned.
    fn fill(&self, result: Result<QueryResult, ServeError>) -> bool {
        let mut state = self.state.lock();
        if matches!(*state, SlotState::Waiting) {
            *state = SlotState::Done(result);
            self.ready.notify_all();
            true
        } else {
            false
        }
    }
}

/// A submitted request the caller can block on via [`ServeEngine::wait`].
pub struct Ticket {
    slot: Arc<ResponseSlot>,
    kind: QueryKind,
    submitted: Instant,
    deadline: Instant,
    cancel: CancelToken,
}

struct Pending {
    model: Arc<ServableModel>,
    query: Query,
    slot: Arc<ResponseSlot>,
    deadline: Instant,
    cancel: CancelToken,
}

struct EngineQueue {
    pending: VecDeque<Pending>,
    closed: bool,
    /// When the queue closed; the batcher drains queued work normally
    /// until `ServeConfig::drain_deadline` past this instant.
    closed_at: Option<Instant>,
}

/// The serving engine; see the module docs. Create with
/// [`ServeEngine::start`] and stop with [`ServeEngine::shutdown`] —
/// the batcher thread keeps the engine alive until then.
pub struct ServeEngine {
    config: ServeConfig,
    registry: ModelRegistry,
    cache: ResultCache,
    gate: AdmissionGate,
    stats: ServeStats,
    queue: Mutex<EngineQueue>,
    wake: Condvar,
    shutdown: CancelToken,
    batcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ServeEngine {
    /// Build the engine and start its batcher thread.
    pub fn start(config: ServeConfig) -> Arc<ServeEngine> {
        let engine = Arc::new(ServeEngine {
            registry: ModelRegistry::new(),
            cache: ResultCache::new(config.cache_capacity),
            gate: AdmissionGate::new(config.max_depth),
            stats: ServeStats::new(),
            queue: Mutex::new(EngineQueue {
                pending: VecDeque::new(),
                closed: false,
                closed_at: None,
            }),
            wake: Condvar::new(),
            shutdown: CancelToken::new(),
            batcher: Mutex::new(None),
            config,
        });
        let worker = Arc::clone(&engine);
        let handle = std::thread::Builder::new()
            .name("splatt-serve-batcher".into())
            .spawn(move || run_batcher(&worker))
            .expect("spawn batcher thread");
        *engine.batcher.lock() = Some(handle);
        engine
    }

    /// The model registry (publish/evict/list).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The admission gate (depth and shed counters).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// Serving telemetry.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The engine-level cancel token; tripping it starts shutdown
    /// (pair with [`ServeEngine::shutdown`] to also join the batcher).
    pub fn shutdown_token(&self) -> &CancelToken {
        &self.shutdown
    }

    /// Engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Publish a model; convenience over `registry().publish`.
    pub fn publish(&self, name: &str, model: splatt_core::KruskalModel) -> u64 {
        self.registry.publish(name, model)
    }

    /// Evict model versions and drop their cached results.
    pub fn evict(&self, name: &str, version: u64) -> usize {
        let removed = self.registry.evict(name, version);
        if removed > 0 {
            self.cache.invalidate_model(name, version);
        }
        removed
    }

    /// Admit, submit, and block for the answer. `poll_abort` is checked
    /// while waiting (return true to abandon — the TCP front end passes
    /// its disconnect detector); pass `|| false` when the caller cannot
    /// go away.
    ///
    /// # Errors
    /// Every failure is a typed [`ServeError`]; this never blocks past
    /// the request deadline.
    pub fn query(
        &self,
        name: &str,
        version: u64,
        query: Query,
        deadline: Option<Duration>,
        cancel: &CancelToken,
        poll_abort: impl FnMut() -> bool,
    ) -> Result<QueryResult, ServeError> {
        let _permit = self.gate.try_admit().map_err(ServeError::Overloaded)?;
        let ticket = self.submit(name, version, query, deadline, cancel)?;
        self.wait(ticket, poll_abort)
    }

    /// Queue a request (or answer it from cache) and return a ticket to
    /// wait on. Callers that want shedding must admit through
    /// [`ServeEngine::gate`] first and hold the permit until the wait
    /// returns; [`ServeEngine::query`] does both.
    ///
    /// # Errors
    /// Fails fast with [`ServeError::ShuttingDown`],
    /// [`ServeError::ModelNotFound`], or [`ServeError::BadQuery`].
    pub fn submit(
        &self,
        name: &str,
        version: u64,
        query: Query,
        deadline: Option<Duration>,
        cancel: &CancelToken,
    ) -> Result<Ticket, ServeError> {
        if self.shutdown.is_cancelled() {
            return Err(ServeError::ShuttingDown);
        }
        let model = self
            .registry
            .get(name, version)
            .ok_or_else(|| ServeError::ModelNotFound {
                name: name.to_string(),
                version,
            })?;
        self.validate(&model, &query)?;
        let submitted = Instant::now();
        let deadline = submitted + deadline.unwrap_or(self.config.default_deadline);
        let kind = query.kind();

        if let Some(hit) = self.cache_lookup(&model, &query) {
            return Ok(Ticket {
                slot: ResponseSlot::prefilled(Ok(hit)),
                kind,
                submitted,
                deadline,
                cancel: cancel.child(),
            });
        }

        let slot = ResponseSlot::new();
        // One child per request: the Pending and the Ticket share it
        // (clones share the flag), halving what the connection token
        // has to track.
        let cancel = cancel.child();
        let pending = Pending {
            model,
            query,
            slot: Arc::clone(&slot),
            deadline,
            cancel: cancel.clone(),
        };
        {
            let mut q = self.queue.lock();
            if q.closed {
                return Err(ServeError::ShuttingDown);
            }
            q.pending.push_back(pending);
        }
        self.wake.notify_all();
        Ok(Ticket {
            slot,
            kind,
            submitted,
            deadline,
            cancel,
        })
    }

    /// Block until the ticket resolves, its deadline expires, its cancel
    /// token trips, or `poll_abort` returns true.
    pub fn wait(
        &self,
        ticket: Ticket,
        mut poll_abort: impl FnMut() -> bool,
    ) -> Result<QueryResult, ServeError> {
        let mut state = ticket.slot.state.lock();
        loop {
            match std::mem::replace(&mut *state, SlotState::Consumed) {
                SlotState::Done(result) => {
                    if result.is_ok() {
                        // Latency is recorded by the receiving side so the
                        // per-kind request count matches answers delivered.
                        self.stats.record_latency(
                            ticket.kind,
                            ticket.submitted.elapsed().as_micros() as u64,
                        );
                    }
                    return result;
                }
                SlotState::Waiting => {
                    *state = SlotState::Waiting;
                    if ticket.cancel.is_cancelled() || poll_abort() {
                        *state = SlotState::Abandoned;
                        return Err(ServeError::Cancelled);
                    }
                    let now = Instant::now();
                    if now >= ticket.deadline {
                        *state = SlotState::Abandoned;
                        self.stats.record_deadline_rejection();
                        return Err(ServeError::DeadlineExpired);
                    }
                    let nap = (ticket.deadline - now).min(Duration::from_millis(25));
                    ticket.slot.ready.wait_timeout(&mut state, nap);
                }
                other => {
                    // Single-waiter protocol: only this method consumes.
                    *state = other;
                    return Err(ServeError::Cancelled);
                }
            }
        }
    }

    /// Begin shutdown and join the batcher. New submissions are rejected
    /// immediately with [`ServeError::ShuttingDown`]; requests already
    /// queued keep executing (and their responses keep flowing) until
    /// [`ServeConfig::drain_deadline`] elapses, after which the
    /// remainder is failed typed. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.cancel();
        {
            let mut q = self.queue.lock();
            q.closed = true;
            q.closed_at.get_or_insert(Instant::now());
        }
        self.wake.notify_all();
        let handle = self.batcher.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// A probe report with the schema v5 `serve` object populated.
    pub fn profile_report(&self) -> ProfileReport {
        ProfileReport {
            ntasks: self.config.ntasks,
            serve: Some(self.stats.to_row(
                self.cache.hits(),
                self.cache.misses(),
                self.cache.evictions(),
                self.gate.sheds(),
            )),
            ..Default::default()
        }
    }

    fn validate(&self, model: &ServableModel, query: &Query) -> Result<(), ServeError> {
        let order = model.model.order();
        let bad = |msg: String| Err(ServeError::BadQuery(msg));
        match query {
            Query::Entry { coords } => {
                if order == 0 || coords.len() % order != 0 {
                    return bad(format!(
                        "{} coordinates do not tile an order-{order} model",
                        coords.len()
                    ));
                }
                if coords.len() / order.max(1) > self.config.max_response_values {
                    return bad("entry batch too large".into());
                }
            }
            Query::Slice { mode, .. } => {
                if *mode as usize >= order {
                    return bad(format!("mode {mode} out of range for order {order}"));
                }
                let len = query::slice_len(&model.model, *mode as usize)
                    .map_err(|e| ServeError::BadQuery(e.to_string()))?;
                if len > self.config.max_response_values {
                    return bad(format!(
                        "slice has {len} values (limit {})",
                        self.config.max_response_values
                    ));
                }
            }
            Query::TopK { mode, k, fixed } => {
                if *mode as usize >= order {
                    return bad(format!("mode {mode} out of range for order {order}"));
                }
                if fixed.len() + 1 != order {
                    return bad(format!(
                        "{} fixed coordinates for an order-{order} top-k",
                        fixed.len()
                    ));
                }
                if *k as usize > self.config.max_response_values {
                    return bad("k too large".into());
                }
            }
            Query::TopKShard {
                mode,
                k,
                fixed,
                sel,
                ..
            } => {
                Self::validate_sel(sel)?;
                if *mode != 0 {
                    return bad("shard top-k partitions mode 0 only".into());
                }
                if order == 0 || fixed.len() + 1 != order {
                    return bad(format!(
                        "{} fixed coordinates for an order-{order} top-k",
                        fixed.len()
                    ));
                }
                if *k as usize > self.config.max_response_values {
                    return bad("k too large".into());
                }
            }
            Query::SliceShard { mode, sel, .. } => {
                Self::validate_sel(sel)?;
                if *mode == 0 {
                    return bad("mode-0 slices are whole-shard; use Slice".into());
                }
                if *mode as usize >= order {
                    return bad(format!("mode {mode} out of range for order {order}"));
                }
                let len = query::slice_len(&model.model, *mode as usize)
                    .map_err(|e| ServeError::BadQuery(e.to_string()))?;
                if len > self.config.max_response_values {
                    return bad(format!(
                        "slice has {len} values (limit {})",
                        self.config.max_response_values
                    ));
                }
            }
        }
        Ok(())
    }

    fn validate_sel(sel: &ShardSel) -> Result<(), ServeError> {
        if sel.nshards == 0 || sel.shard >= sel.nshards {
            return Err(ServeError::BadQuery(format!(
                "shard {} out of range for {} shard(s)",
                sel.shard, sel.nshards
            )));
        }
        Ok(())
    }

    fn cache_key(model: &ServableModel, query: &Query) -> Option<CacheKey> {
        match query {
            Query::Entry { .. } => None,
            Query::Slice { mode, index } => Some(CacheKey::Slice {
                model: model.name.clone(),
                version: model.version,
                mode: *mode,
                index: *index,
            }),
            Query::TopK { mode, k, fixed } => Some(CacheKey::TopK {
                model: model.name.clone(),
                version: model.version,
                mode: *mode,
                k: *k,
                fixed: fixed.clone(),
            }),
            Query::SliceShard { mode, index, sel } => Some(CacheKey::SliceShard {
                model: model.name.clone(),
                version: model.version,
                mode: *mode,
                index: *index,
                sel: *sel,
            }),
            Query::TopKShard {
                mode,
                k,
                fixed,
                sel,
            } => Some(CacheKey::TopKShard {
                model: model.name.clone(),
                version: model.version,
                mode: *mode,
                k: *k,
                fixed: fixed.clone(),
                sel: *sel,
            }),
        }
    }

    fn cache_lookup(&self, model: &ServableModel, query: &Query) -> Option<QueryResult> {
        let key = Self::cache_key(model, query)?;
        match self.cache.get(&key)? {
            CacheValue::Slice(v) => Some(QueryResult::Slice(v)),
            CacheValue::TopK(v) => Some(QueryResult::TopK(v)),
        }
    }
}

/// Execute one query against its model with a task-local arena.
fn run_one(item: &Pending, arena: &mut QueryArena) -> Result<QueryResult, ServeError> {
    let model = &item.model.model;
    let to_bad = |e: query::QueryError| ServeError::BadQuery(e.to_string());
    match &item.query {
        Query::Entry { coords } => {
            let order = model.order();
            let mut out = vec![0.0; coords.len() / order.max(1)];
            query::entry_values(model, coords, &mut out).map_err(to_bad)?;
            Ok(QueryResult::Entries(out))
        }
        Query::Slice { mode, index } => {
            let len = query::slice_len(model, *mode as usize).map_err(to_bad)?;
            let mut out = vec![0.0; len];
            query::slice_values(model, *mode as usize, *index, arena, &mut out).map_err(to_bad)?;
            Ok(QueryResult::Slice(Arc::new(out)))
        }
        Query::TopK { mode, k, fixed } => {
            let mut out = Vec::new();
            query::top_k(model, *mode as usize, *k as usize, fixed, arena, &mut out)
                .map_err(to_bad)?;
            Ok(QueryResult::TopK(Arc::new(out)))
        }
        Query::TopKShard {
            mode,
            k,
            fixed,
            sel,
        } => {
            let dim = model.factors[0].rows();
            let rows = ShardRing::new(sel.nshards as usize, sel.seed).owned_rows(sel.shard, dim);
            let mut out = Vec::new();
            query::top_k_rows(
                model,
                *mode as usize,
                *k as usize,
                fixed,
                &rows,
                arena,
                &mut out,
            )
            .map_err(to_bad)?;
            Ok(QueryResult::TopK(Arc::new(out)))
        }
        Query::SliceShard { mode, index, sel } => {
            let dim = model.factors[0].rows();
            let rows = ShardRing::new(sel.nshards as usize, sel.seed).owned_rows(sel.shard, dim);
            let len = query::slice_len(model, *mode as usize).map_err(to_bad)?;
            let block = len.checked_div(dim).unwrap_or(0);
            let mut out = vec![0.0; rows.len() * block];
            query::slice_values_rows(model, *mode as usize, *index, &rows, arena, &mut out)
                .map_err(to_bad)?;
            Ok(QueryResult::Slice(Arc::new(out)))
        }
    }
}

fn run_batcher(engine: &Arc<ServeEngine>) {
    let ntasks = engine.config.ntasks.max(1);
    let team = TaskTeam::new(ntasks);
    let arenas: TaskLocal<QueryArena> = TaskLocal::new(ntasks, |_| QueryArena::new());
    loop {
        let drained: Vec<Pending> = {
            let mut q = engine.queue.lock();
            while q.pending.is_empty() && !q.closed {
                engine.wake.wait(&mut q);
            }
            if q.pending.is_empty() && q.closed {
                break;
            }
            // Graceful drain: after close, keep executing already-queued
            // batches until the drain deadline, then fail the remainder
            // typed. Submissions are rejected from the moment of close,
            // so the queue only shrinks here.
            let drain_expired = q
                .closed_at
                .is_some_and(|at| at.elapsed() >= engine.config.drain_deadline);
            let items: Vec<Pending> = q.pending.drain(..).collect();
            if drain_expired {
                drop(q);
                for item in items {
                    item.slot.fill(Err(ServeError::ShuttingDown));
                }
                break;
            }
            items
        };

        // Coalesce by (model version identity, query kind).
        let mut groups: HashMap<(usize, &'static str), Vec<Pending>> = HashMap::new();
        for item in drained {
            let key = (Arc::as_ptr(&item.model) as usize, item.query.kind().label());
            groups.entry(key).or_default().push(item);
        }
        for (_, items) in groups {
            for chunk in items.chunks(engine.config.max_batch.max(1)) {
                execute_batch(engine, &team, &arenas, chunk);
            }
        }
    }
}

fn execute_batch(
    engine: &ServeEngine,
    team: &TaskTeam,
    arenas: &TaskLocal<QueryArena>,
    items: &[Pending],
) {
    // Pre-pass: fail requests that died in queue without spending
    // compute on them.
    let mut live: Vec<&Pending> = Vec::with_capacity(items.len());
    let now = Instant::now();
    for item in items {
        // The engine shutdown token is deliberately NOT checked here:
        // requests already queued at shutdown are drained, not dropped.
        if item.cancel.is_cancelled() {
            item.slot.fill(Err(ServeError::Cancelled));
        } else if now >= item.deadline {
            if item.slot.fill(Err(ServeError::DeadlineExpired)) {
                engine.stats.record_deadline_rejection();
            }
        } else {
            live.push(item);
        }
    }
    if live.is_empty() {
        return;
    }
    engine.stats.record_batch(live.len() as u64);

    let ntasks = team.ntasks();
    let live = &live;
    team.coforall(|tid| {
        for i in partition::block(live.len(), ntasks, tid) {
            let item = live[i];
            let result = arenas.with_mut(tid, |arena| run_one(item, arena));
            if let (Ok(ok), Some(key)) = (&result, ServeEngine::cache_key(&item.model, &item.query))
            {
                let value = match ok {
                    QueryResult::Slice(v) => Some(CacheValue::Slice(Arc::clone(v))),
                    QueryResult::TopK(v) => Some(CacheValue::TopK(Arc::clone(v))),
                    QueryResult::Entries(_) => None,
                };
                if let Some(value) = value {
                    // Re-check the registry: an evict() that ran while we
                    // computed already invalidated this model's entries,
                    // and inserting now would resurrect one. The sliver
                    // between this check and the insert is benign —
                    // versions are never reused, so a raced entry is
                    // unreachable and ages out via LRU.
                    if engine
                        .registry
                        .contains(&item.model.name, item.model.version)
                    {
                        engine.cache.insert(key, value);
                    }
                }
            }
            item.slot.fill(result);
        }
    });

    // Publish the aggregate arena growth after every batch: flat after
    // warm-up is the allocation-free certification signal.
    let (mut allocs, mut bytes) = (0u64, 0u64);
    arenas.for_each(|_, a| {
        allocs += a.growth_allocs();
        bytes += a.growth_bytes();
    });
    engine.stats.set_arena_growth(allocs, bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_core::reference::kruskal_value;
    use splatt_core::KruskalModel;
    use splatt_dense::Matrix;

    fn model() -> KruskalModel {
        KruskalModel {
            lambda: vec![2.0, 0.5],
            factors: vec![
                Matrix::random(6, 2, 40),
                Matrix::random(4, 2, 41),
                Matrix::random(5, 2, 42),
            ],
        }
    }

    fn engine() -> Arc<ServeEngine> {
        let eng = ServeEngine::start(ServeConfig {
            ntasks: 2,
            ..Default::default()
        });
        eng.publish("m", model());
        eng
    }

    #[test]
    fn entry_queries_match_the_oracle() {
        let eng = engine();
        let root = CancelToken::new();
        let m = model();
        let result = eng
            .query(
                "m",
                0,
                Query::Entry {
                    coords: vec![0, 0, 0, 5, 3, 4],
                },
                None,
                &root,
                || false,
            )
            .unwrap();
        match result {
            QueryResult::Entries(vals) => {
                assert_eq!(vals.len(), 2);
                assert_eq!(
                    vals[0].to_bits(),
                    kruskal_value(&m.lambda, &m.factors, &[0, 0, 0]).to_bits()
                );
                assert_eq!(
                    vals[1].to_bits(),
                    kruskal_value(&m.lambda, &m.factors, &[5, 3, 4]).to_bits()
                );
            }
            other => panic!("unexpected result {other:?}"),
        }
        eng.shutdown();
    }

    #[test]
    fn slice_results_are_cached() {
        let eng = engine();
        let root = CancelToken::new();
        let q = Query::Slice { mode: 1, index: 2 };
        let a = eng.query("m", 0, q.clone(), None, &root, || false).unwrap();
        let hits_before = eng.cache().hits();
        let b = eng.query("m", 0, q, None, &root, || false).unwrap();
        assert_eq!(eng.cache().hits(), hits_before + 1);
        match (a, b) {
            (QueryResult::Slice(x), QueryResult::Slice(y)) => {
                assert!(Arc::ptr_eq(&x, &y), "hit should share the buffer");
                assert_eq!(x.len(), 6 * 5);
            }
            other => panic!("unexpected results {other:?}"),
        }
        eng.shutdown();
    }

    #[test]
    fn typed_errors_for_missing_models_and_bad_queries() {
        let eng = engine();
        let root = CancelToken::new();
        assert!(matches!(
            eng.query(
                "ghost",
                0,
                Query::Slice { mode: 0, index: 0 },
                None,
                &root,
                || false
            ),
            Err(ServeError::ModelNotFound { .. })
        ));
        assert!(matches!(
            eng.query(
                "m",
                0,
                Query::Slice { mode: 7, index: 0 },
                None,
                &root,
                || { false }
            ),
            Err(ServeError::BadQuery(_))
        ));
        assert!(matches!(
            eng.query(
                "m",
                0,
                Query::TopK {
                    mode: 0,
                    k: 3,
                    fixed: vec![0],
                },
                None,
                &root,
                || false
            ),
            Err(ServeError::BadQuery(_))
        ));
        // Out-of-range coordinate is caught by the kernel and typed.
        assert!(matches!(
            eng.query(
                "m",
                0,
                Query::Entry {
                    coords: vec![0, 9, 0],
                },
                None,
                &root,
                || false
            ),
            Err(ServeError::BadQuery(_))
        ));
        eng.shutdown();
    }

    #[test]
    fn zero_deadline_expires_as_typed_error() {
        let eng = engine();
        let root = CancelToken::new();
        let err = eng
            .query(
                "m",
                0,
                Query::Slice { mode: 0, index: 0 },
                Some(Duration::ZERO),
                &root,
                || false,
            )
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExpired);
        assert!(eng.stats().deadline_rejections() >= 1);
        eng.shutdown();
    }

    #[test]
    fn cancelled_token_abandons_the_wait() {
        let eng = engine();
        let root = CancelToken::new();
        root.cancel();
        let err = eng
            .query(
                "m",
                0,
                Query::Slice { mode: 0, index: 1 },
                None,
                &root,
                || false,
            )
            .unwrap_err();
        assert_eq!(err, ServeError::Cancelled);
        eng.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_work_and_is_idempotent() {
        let eng = engine();
        eng.shutdown();
        eng.shutdown();
        let root = CancelToken::new();
        assert_eq!(
            eng.query(
                "m",
                0,
                Query::Slice { mode: 0, index: 0 },
                None,
                &root,
                || false
            )
            .unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn evict_drops_cache_and_resolution() {
        let eng = engine();
        let root = CancelToken::new();
        let q = Query::TopK {
            mode: 0,
            k: 3,
            fixed: vec![1, 1],
        };
        eng.query("m", 0, q.clone(), None, &root, || false).unwrap();
        assert_eq!(eng.cache().len(), 1);
        assert_eq!(eng.evict("m", 0), 1);
        assert_eq!(eng.cache().len(), 0);
        assert!(matches!(
            eng.query("m", 0, q, None, &root, || false),
            Err(ServeError::ModelNotFound { .. })
        ));
        eng.shutdown();
    }

    #[test]
    fn evict_all_versions_drops_every_cached_version() {
        // version == 0 means "every version": both the registry entries
        // and all version-keyed cache lines for the name must go, while
        // other models' cache lines survive.
        let eng = engine(); // publishes "m" v1
        eng.publish("m", model()); // v2
        eng.publish("other", model());
        let root = CancelToken::new();
        let q = Query::TopK {
            mode: 0,
            k: 3,
            fixed: vec![1, 1],
        };
        // cache a result at each explicit version plus one for "other"
        eng.query("m", 1, q.clone(), None, &root, || false).unwrap();
        eng.query("m", 2, q.clone(), None, &root, || false).unwrap();
        eng.query("other", 1, q.clone(), None, &root, || false)
            .unwrap();
        assert_eq!(eng.cache().len(), 3);

        assert_eq!(eng.evict("m", 0), 2, "both versions evicted");
        assert_eq!(
            eng.cache().len(),
            1,
            "every cached version of 'm' must be invalidated"
        );
        for version in [0, 1, 2] {
            assert!(matches!(
                eng.query("m", version, q.clone(), None, &root, || false),
                Err(ServeError::ModelNotFound { .. })
            ));
        }
        // the survivor is still served (from cache — no new miss needed)
        let hits_before = eng.cache().hits();
        eng.query("other", 1, q, None, &root, || false).unwrap();
        assert_eq!(eng.cache().hits(), hits_before + 1);
        // re-publishing never reuses an evicted version number
        assert_eq!(eng.publish("m", model()), 3);
        eng.shutdown();
    }

    #[test]
    fn profile_report_carries_serve_row() {
        let eng = engine();
        let root = CancelToken::new();
        for i in 0..4 {
            eng.query(
                "m",
                0,
                Query::Entry {
                    coords: vec![i, 0, 0],
                },
                None,
                &root,
                || false,
            )
            .unwrap();
        }
        let report = eng.profile_report();
        let serve = report.serve.clone().expect("serve row");
        assert_eq!(serve.kinds.len(), 1);
        assert_eq!(serve.kinds[0].kind, "entry");
        assert_eq!(serve.kinds[0].requests, 4);
        assert!(serve.batches >= 1);
        let json = report.to_json();
        assert!(json.contains("\"serve\": {"), "json: {json}");
        eng.shutdown();
    }
}
