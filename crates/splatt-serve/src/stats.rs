//! Serving telemetry: lock-free log2 latency histograms per query kind,
//! the batch-size distribution, and counters that roll up into the probe
//! schema v5 `serve` object.

use splatt_probe::{QueryKindRow, ServeRow};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: bucket 31 absorbs everything ≥ ~36 minutes.
const BUCKETS: usize = 32;

/// The three query kinds the server answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    Entry,
    Slice,
    TopK,
}

impl QueryKind {
    /// Stable label used in the probe schema and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Entry => "entry",
            QueryKind::Slice => "slice",
            QueryKind::TopK => "topk",
        }
    }

    const ALL: [QueryKind; 3] = [QueryKind::Entry, QueryKind::Slice, QueryKind::TopK];

    fn index(self) -> usize {
        match self {
            QueryKind::Entry => 0,
            QueryKind::Slice => 1,
            QueryKind::TopK => 2,
        }
    }
}

/// A lock-free log2 histogram: `buckets[i]` counts samples in
/// `[2^i, 2^(i+1))`, with 0-valued samples in bucket 0.
#[derive(Debug, Default)]
pub struct Log2Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max: AtomicU64,
}

fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Log2Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper bound (`2^(i+1)`) of the bucket containing quantile `q`
    /// (`0.0..=1.0`); 0 when empty. Conservative: the true quantile is
    /// at most this.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max()
    }

    /// Bucket counts trimmed of trailing zeros.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }
}

/// All serving counters, updated lock-free from the scheduler and the
/// request path.
#[derive(Debug, Default)]
pub struct ServeStats {
    latency: [Log2Histogram; 3],
    batch_sizes: Log2Histogram,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    deadline_rejections: AtomicU64,
    arena_growth_allocs: AtomicU64,
    arena_growth_bytes: AtomicU64,
}

impl ServeStats {
    /// Fresh, zeroed stats.
    pub fn new() -> Self {
        ServeStats::default()
    }

    /// Record one answered request of `kind` with the given end-to-end
    /// latency in microseconds.
    pub fn record_latency(&self, kind: QueryKind, micros: u64) {
        self.latency[kind.index()].record(micros);
    }

    /// Record one executed batch of `size` coalesced requests.
    pub fn record_batch(&self, size: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size, Ordering::Relaxed);
        self.max_batch.fetch_max(size, Ordering::Relaxed);
        self.batch_sizes.record(size);
    }

    /// Record a request rejected because its deadline expired.
    pub fn record_deadline_rejection(&self) {
        self.deadline_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the current query-arena growth totals (monotonic; the
    /// scheduler stores the aggregate after each batch).
    pub fn set_arena_growth(&self, allocs: u64, bytes: u64) {
        self.arena_growth_allocs
            .fetch_max(allocs, Ordering::Relaxed);
        self.arena_growth_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Deadline rejections so far.
    pub fn deadline_rejections(&self) -> u64 {
        self.deadline_rejections.load(Ordering::Relaxed)
    }

    /// Query-arena growth totals `(allocs, bytes)` — flat after warm-up
    /// in a healthy steady state.
    pub fn arena_growth(&self) -> (u64, u64) {
        (
            self.arena_growth_allocs.load(Ordering::Relaxed),
            self.arena_growth_bytes.load(Ordering::Relaxed),
        )
    }

    /// Requests answered for `kind`.
    pub fn requests(&self, kind: QueryKind) -> u64 {
        self.latency[kind.index()].count()
    }

    /// Roll everything up into the probe `serve` row; cache and shed
    /// counters come from their owning components, and the cluster
    /// router appends its per-shard counters afterwards.
    pub fn to_row(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_evictions: u64,
        sheds: u64,
    ) -> ServeRow {
        let kinds = QueryKind::ALL
            .iter()
            .filter(|k| self.latency[k.index()].count() > 0)
            .map(|&k| {
                let h = &self.latency[k.index()];
                QueryKindRow {
                    kind: k.label().to_string(),
                    requests: h.count(),
                    p50_micros: h.quantile_upper(0.50),
                    p99_micros: h.quantile_upper(0.99),
                    max_micros: h.max(),
                    buckets: h.snapshot(),
                }
            })
            .collect();
        ServeRow {
            kinds,
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            batch_buckets: self.batch_sizes.snapshot(),
            cache_hits,
            cache_misses,
            cache_evictions,
            sheds,
            deadline_rejections: self.deadline_rejections(),
            arena_growth_allocs: self.arena_growth_allocs.load(Ordering::Relaxed),
            arena_growth_bytes: self.arena_growth_bytes.load(Ordering::Relaxed),
            // Per-shard failover counters are a router concern, and the
            // net row belongs to the front end; both fill in after this
            // rollup.
            shards: Vec::new(),
            net: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let h = Log2Histogram::default();
        for _ in 0..98 {
            h.record(3); // bucket 1 -> upper bound 4
        }
        h.record(1000); // bucket 9 -> upper bound 1024
        h.record(5000); // bucket 12 -> upper bound 8192
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_upper(0.5), 4);
        assert_eq!(h.quantile_upper(0.99), 1024);
        assert_eq!(h.quantile_upper(1.0), 8192);
        assert_eq!(h.max(), 5000);
        assert_eq!(Log2Histogram::default().quantile_upper(0.5), 0);
    }

    #[test]
    fn row_contains_only_active_kinds() {
        let stats = ServeStats::new();
        stats.record_latency(QueryKind::Entry, 10);
        stats.record_latency(QueryKind::Entry, 12);
        stats.record_batch(2);
        stats.record_deadline_rejection();
        stats.set_arena_growth(3, 1024);
        let row = stats.to_row(5, 10, 1, 2);
        assert_eq!(row.kinds.len(), 1);
        assert_eq!(row.kinds[0].kind, "entry");
        assert_eq!(row.kinds[0].requests, 2);
        assert_eq!(row.batches, 1);
        assert_eq!(row.batched_requests, 2);
        assert_eq!(row.max_batch, 2);
        assert_eq!(row.cache_hits, 5);
        assert_eq!(row.sheds, 2);
        assert_eq!(row.deadline_rejections, 1);
        assert_eq!(row.arena_growth_bytes, 1024);
        assert!((row.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
