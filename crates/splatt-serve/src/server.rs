//! Serving front ends.
//!
//! The default is the `splatt-net` readiness-polled reactor: one
//! reactor thread multiplexes every connection (raw `poll(2)` where
//! available), a bounded worker pool executes decoded requests, and
//! three admission layers — connection cap at accept, queue depth at
//! decode, the engine's own gate at batch — shed typed `Overloaded`
//! frames instead of queueing unboundedly. Socket mode is owned by the
//! reactor's connection state machine: a socket goes nonblocking once
//! at registration and never flips again.
//!
//! The legacy thread-per-connection front end survives behind
//! [`FrontEndConfig::legacy_threads`] as the A/B oracle: responses from
//! the two front ends are bit-identical, which the net-smoke tests pin.
//! It too now carries a hard connection cap (an [`AdmissionGate`] permit
//! rides in each connection thread; at capacity the accept loop writes
//! one typed `Overloaded` frame and closes — O(1) per accept, no
//! thread-handle bookkeeping), and its sockets are nonblocking for
//! their whole life with paced read/write loops instead of the old
//! per-request `set_nonblocking` toggle that raced the read timeout.
//!
//! Shutdown is cooperative, clean, and *graceful* on both paths:
//! cancelling the engine's shutdown token (via
//! [`ServerHandle::shutdown`], the wire `Shutdown` op, or a signal
//! handler the embedder wires up) stops accepting and rejects new
//! submissions, but requests already in flight keep executing through
//! the engine's drain window and their responses are written in full.
//! Request cancel tokens are fresh roots (not children of the shutdown
//! token) precisely so the drain can complete them; client disconnects
//! are still caught — by the reactor's EOF handling on one path and the
//! non-blocking socket peek on the other.

use crate::engine::ServeEngine;
use crate::protocol::{
    decode_request, encode_response, read_frame_polled, write_frame, Response, WireError, MAX_FRAME,
};
use crate::service::{accept_shed_frame, wire_code_of, EngineService};
use splatt_guard::{AdmissionGate, CancelToken};
use splatt_net::{serve_frames, NetHandle, NetSnapshot, ReactorConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Front-end tuning for [`serve_with`].
#[derive(Debug, Clone)]
pub struct FrontEndConfig {
    /// Worker threads executing decoded requests; 0 means one per core
    /// (minimum two).
    pub workers: usize,
    /// Hard cap on concurrently open connections; beyond it, accepts
    /// are shed with a typed `Overloaded` frame.
    pub max_conns: usize,
    /// Decoded-but-unanswered requests allowed across all connections
    /// before the decode layer sheds.
    pub queue_depth: usize,
    /// Unanswered pipelined requests allowed on one connection.
    pub max_pipeline: usize,
    /// Reactor front end only: close connections idle this long.
    pub idle_timeout: Duration,
    /// Force the portable sweep poller (tests exercise the
    /// `WouldBlock` paths deterministically with this).
    pub force_sweep: bool,
    /// Use the legacy thread-per-connection front end.
    pub legacy_threads: bool,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig {
            workers: 0,
            max_conns: 4096,
            queue_depth: 256,
            max_pipeline: 32,
            idle_timeout: Duration::from_secs(60),
            force_sweep: false,
            legacy_threads: false,
        }
    }
}

enum Front {
    Reactor(Option<NetHandle>),
    Legacy(Option<std::thread::JoinHandle<()>>),
}

/// A running server: the bound address plus whichever front end serves it.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<ServeEngine>,
    front: Front,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Front-end counters; `None` on the legacy front end, which has
    /// none (that asymmetry is itself probe-visible: schema v10 reports
    /// `"net": null` for it).
    pub fn net_counters(&self) -> Option<NetSnapshot> {
        match &self.front {
            Front::Reactor(h) => h.as_ref().map(NetHandle::counters),
            Front::Legacy(_) => None,
        }
    }

    /// Request shutdown without blocking: trips the engine token, which
    /// both front ends observe within one poll interval.
    pub fn request_shutdown(&self) {
        self.engine.shutdown_token().cancel();
    }

    /// Block until the server stops (token cancelled — by
    /// [`ServerHandle::shutdown`], the wire `Shutdown` op, or the
    /// embedder), then drain the front end and the engine's batcher.
    pub fn join(mut self) {
        match &mut self.front {
            Front::Reactor(h) => {
                if let Some(h) = h.take() {
                    h.wait();
                }
            }
            Front::Legacy(t) => {
                if let Some(t) = t.take() {
                    let _ = t.join();
                }
            }
        }
        self.engine.shutdown();
    }

    /// Stop the server and block until everything is drained.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve `engine` on the default
/// (reactor) front end with default tuning.
///
/// # Errors
/// Propagates bind failures.
pub fn serve(engine: Arc<ServeEngine>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(engine, addr, FrontEndConfig::default())
}

/// Bind `addr` and serve `engine` on the configured front end.
///
/// # Errors
/// Propagates bind and front-end setup failures.
pub fn serve_with(
    engine: Arc<ServeEngine>,
    addr: &str,
    config: FrontEndConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    if config.legacy_threads {
        return serve_legacy(engine, listener, local, &config);
    }
    let service = Arc::new(EngineService::new(Arc::clone(&engine)));
    let workers = if config.workers == 0 {
        ReactorConfig::default().workers
    } else {
        config.workers
    };
    let reactor_config = ReactorConfig {
        workers,
        max_conns: config.max_conns,
        queue_depth: config.queue_depth,
        max_pipeline: config.max_pipeline,
        idle_timeout: config.idle_timeout,
        drain_deadline: engine.config().drain_deadline + Duration::from_secs(1),
        max_frame: MAX_FRAME,
        force_sweep: config.force_sweep,
        accept_shed_frame: accept_shed_frame(config.max_conns),
        thread_name: "splatt-serve".to_string(),
    };
    // The reactor's stop token is a child of the engine's shutdown
    // token: request_shutdown, the wire Shutdown op (via
    // EngineService::on_shutdown), and embedder signal handlers all
    // start the same drain.
    let stop = engine.shutdown_token().child();
    let handle = serve_frames(
        listener,
        Arc::clone(&service) as Arc<dyn splatt_net::FrameService>,
        reactor_config,
        stop,
    )?;
    // Now the counters exist, let Stats report them.
    service.attach_net(handle.counters_handle());
    Ok(ServerHandle {
        addr: local,
        engine,
        front: Front::Reactor(Some(handle)),
    })
}

fn serve_legacy(
    engine: Arc<ServeEngine>,
    listener: TcpListener,
    local: SocketAddr,
    config: &FrontEndConfig,
) -> std::io::Result<ServerHandle> {
    listener.set_nonblocking(true)?;
    let accept_engine = Arc::clone(&engine);
    let accept_stop = engine.shutdown_token().child();
    let gate = Arc::new(AdmissionGate::new(config.max_conns));
    let drain = engine.config().drain_deadline + Duration::from_secs(1);
    let accept_thread = std::thread::Builder::new()
        .name("splatt-serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_engine, &accept_stop, &gate, drain))?;
    Ok(ServerHandle {
        addr: local,
        engine,
        front: Front::Legacy(Some(accept_thread)),
    })
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<ServeEngine>,
    stop: &CancelToken,
    gate: &Arc<AdmissionGate>,
    drain: Duration,
) {
    let shed_payload = accept_shed_frame(gate.max_depth());
    while !stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => match gate.try_admit_owned() {
                Ok(permit) => {
                    let engine = Arc::clone(engine);
                    let conn_stop = stop.child();
                    // The permit rides in the connection thread and
                    // releases its slot when the thread exits — the
                    // gate's depth IS the open-connection count, so
                    // per-accept cost is O(1) with no handle Vec.
                    let _ = std::thread::Builder::new()
                        .name("splatt-serve-conn".into())
                        .spawn(move || {
                            let _permit = permit;
                            handle_conn(&engine, &conn_stop, &stream);
                        });
                }
                Err(_) => shed_accept(stream, &shed_payload),
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Connection threads poll the stop token and exit on their own;
    // give in-flight requests the engine's drain window to finish.
    let deadline = Instant::now() + drain;
    while gate.depth() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Over-capacity accept: write one typed `Overloaded` frame (briefly —
/// a stalled peer must not stall the accept loop) and close.
fn shed_accept(mut stream: TcpStream, payload: &[u8]) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = write_frame(&mut stream, payload);
}

/// `Read` adapter for a permanently-nonblocking socket: paces
/// `WouldBlock` with a short sleep so `read_frame_polled`'s retry loop
/// idles at a few-millisecond cadence instead of hot-spinning.
struct PacedReader<'a> {
    stream: &'a TcpStream,
}

impl Read for PacedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match (&*self.stream).read(buf) {
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                Err(e)
            }
            other => other,
        }
    }
}

/// `write_all` for a permanently-nonblocking socket, pacing
/// `WouldBlock` the same way.
fn write_all_paced(stream: &TcpStream, mut buf: &[u8]) -> std::io::Result<()> {
    while !buf.is_empty() {
        match (&*stream).write(buf) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn write_frame_paced(stream: &TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    write_all_paced(stream, &frame)
}

/// Non-blocking liveness probe: true once the peer has gone away.
fn disconnected(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => false,
        Err(_) => true,
    }
}

fn handle_conn(engine: &Arc<ServeEngine>, stop: &CancelToken, stream: &TcpStream) {
    let _ = stream.set_nodelay(true);
    // Nonblocking for the connection's whole life: reads pace through
    // PacedReader, writes through write_all_paced, and the liveness
    // peek during engine waits needs no mode flipping. (The old code
    // toggled set_nonblocking around each query, racing its own 50ms
    // read timeout.)
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        let mut reader = PacedReader { stream };
        let payload = match read_frame_polled(&mut reader, &|| stop.is_cancelled()) {
            Ok(Some(p)) => p,
            Ok(None) => break, // stopped between frames
            Err(_) => break,   // disconnect, EOF, or garbage framing
        };
        let response = match decode_request(&payload) {
            Ok(req) => handle_request(engine, stream, req),
            Err(e) => Response::Error(WireError::BadRequest, e.to_string()),
        };
        let shutdown_ack = matches!(response, Response::Ack);
        if write_frame_paced(stream, &encode_response(&response)).is_err() {
            break;
        }
        if shutdown_ack {
            engine.shutdown_token().cancel();
            break;
        }
    }
}

fn handle_request(
    engine: &Arc<ServeEngine>,
    stream: &TcpStream,
    req: crate::protocol::Request,
) -> Response {
    use crate::engine::{Query, QueryResult};
    use crate::protocol::RequestBody;
    let query = match req.body {
        RequestBody::Stats => return Response::Stats(engine.profile_report().to_json()),
        RequestBody::List => return Response::Models(engine.registry().list()),
        RequestBody::Shutdown => return Response::Ack,
        RequestBody::Health => {
            return Response::Health {
                worker: engine.config().worker,
                shard: engine.config().shard,
            }
        }
        RequestBody::Entry { order: _, coords } => Query::Entry { coords },
        RequestBody::Slice { mode, index } => Query::Slice { mode, index },
        RequestBody::TopK { mode, k, fixed } => Query::TopK { mode, k, fixed },
        RequestBody::TopKShard {
            mode,
            k,
            fixed,
            sel,
        } => Query::TopKShard {
            mode,
            k,
            fixed,
            sel,
        },
        RequestBody::SliceShard { mode, index, sel } => Query::SliceShard { mode, index, sel },
    };
    let deadline = if req.deadline_ms > 0 {
        Some(Duration::from_millis(u64::from(req.deadline_ms)))
    } else {
        None
    };
    // A fresh root token per request — deliberately NOT a child of the
    // server stop token, so shutdown drains in-flight requests instead
    // of cancelling them. A vanished client is still caught by the
    // non-blocking socket poll below.
    let request_root = CancelToken::new();
    let result = engine.query(
        &req.model,
        req.version,
        query,
        deadline,
        &request_root,
        || disconnected(stream),
    );
    match result {
        Ok(QueryResult::Entries(vals)) => Response::Entries(vals),
        Ok(QueryResult::Slice(vals)) => Response::Slice(vals.to_vec()),
        Ok(QueryResult::TopK(pairs)) => Response::TopK(pairs.to_vec()),
        Err(err) => Response::Error(wire_code_of(&err), err.to_string()),
    }
}
