//! The blocking, thread-per-connection TCP front end.
//!
//! One accept thread polls a non-blocking listener (checking the stop
//! token every few milliseconds); each connection gets its own thread
//! running a read-frame → decode → execute → write-frame loop. While a
//! query waits on the engine, the connection thread polls the socket
//! with a non-blocking `peek` — a client that disconnects mid-wait
//! cancels its request instead of leaving it to finish for nobody.
//!
//! Shutdown is cooperative, clean, and *graceful*: cancelling the
//! engine's shutdown token (via [`ServerHandle::shutdown`], the wire
//! `Shutdown` op, or a signal handler the embedder wires up) stops the
//! accept loop and rejects new submissions, but requests already in
//! flight keep executing through the engine's drain window and their
//! responses are written in full — a response is never dropped mid-write.
//! Request cancel tokens are fresh roots (not children of the shutdown
//! token) precisely so the drain can complete them; client disconnects
//! are still caught by the socket poll during the wait.

use crate::engine::{Query, QueryResult, ServeEngine, ServeError};
use crate::protocol::{
    decode_request, encode_response, read_frame_polled, write_frame, Request, RequestBody,
    Response, WireError,
};
use splatt_guard::CancelToken;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A running server: the bound address plus the accept-thread handle.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<ServeEngine>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Request shutdown without blocking: trips the engine token, which
    /// the accept loop and every connection thread poll.
    pub fn request_shutdown(&self) {
        self.engine.shutdown_token().cancel();
    }

    /// Block until the server stops (token cancelled — by
    /// [`ServerHandle::shutdown`], the wire `Shutdown` op, or the
    /// embedder), then drain threads and join the engine's batcher.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.engine.shutdown();
    }

    /// Stop the server and block until everything is drained.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and start serving `engine`.
///
/// # Errors
/// Propagates bind failures.
pub fn serve(engine: Arc<ServeEngine>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let accept_engine = Arc::clone(&engine);
    let accept_stop = engine.shutdown_token().child();
    let accept_thread = std::thread::Builder::new()
        .name("splatt-serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_engine, &accept_stop))?;
    Ok(ServerHandle {
        addr: local,
        engine,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: &TcpListener, engine: &Arc<ServeEngine>, stop: &CancelToken) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = Arc::clone(engine);
                let conn_stop = stop.child();
                conns.retain(|t| !t.is_finished());
                if let Ok(handle) = std::thread::Builder::new()
                    .name("splatt-serve-conn".into())
                    .spawn(move || handle_conn(&engine, &conn_stop, stream))
                {
                    conns.push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    for t in conns {
        let _ = t.join();
    }
}

/// Non-blocking liveness probe: true once the peer has gone away.
fn disconnected(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => false,
        Err(_) => true,
    }
}

fn handle_conn(engine: &Arc<ServeEngine>, stop: &CancelToken, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // Short read timeout so frame reads poll the stop token instead of
    // blocking through a shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    loop {
        let payload = match read_frame_polled(&mut stream, &|| stop.is_cancelled()) {
            Ok(Some(p)) => p,
            Ok(None) => break, // stopped between frames
            Err(_) => break,   // disconnect, EOF, or garbage framing
        };
        let response = match decode_request(&payload) {
            Ok(req) => handle_request(engine, &stream, req),
            Err(e) => Response::Error(WireError::BadRequest, e.to_string()),
        };
        let shutdown_ack = matches!(response, Response::Ack);
        if write_frame(&mut stream, &encode_response(&response)).is_err() {
            break;
        }
        if shutdown_ack {
            engine.shutdown_token().cancel();
            break;
        }
    }
}

fn handle_request(engine: &Arc<ServeEngine>, stream: &TcpStream, req: Request) -> Response {
    let query = match req.body {
        RequestBody::Stats => return Response::Stats(engine.profile_report().to_json()),
        RequestBody::List => return Response::Models(engine.registry().list()),
        RequestBody::Shutdown => return Response::Ack,
        RequestBody::Health => {
            return Response::Health {
                worker: engine.config().worker,
                shard: engine.config().shard,
            }
        }
        RequestBody::Entry { order: _, coords } => Query::Entry { coords },
        RequestBody::Slice { mode, index } => Query::Slice { mode, index },
        RequestBody::TopK { mode, k, fixed } => Query::TopK { mode, k, fixed },
        RequestBody::TopKShard {
            mode,
            k,
            fixed,
            sel,
        } => Query::TopKShard {
            mode,
            k,
            fixed,
            sel,
        },
        RequestBody::SliceShard { mode, index, sel } => Query::SliceShard { mode, index, sel },
    };
    let deadline = if req.deadline_ms > 0 {
        Some(Duration::from_millis(u64::from(req.deadline_ms)))
    } else {
        None
    };
    // A fresh root token per request — deliberately NOT a child of the
    // server stop token, so shutdown drains in-flight requests instead
    // of cancelling them. A vanished client is still caught by the
    // non-blocking socket poll below.
    let request_root = CancelToken::new();
    let _ = stream.set_nonblocking(true);
    let result = engine.query(
        &req.model,
        req.version,
        query,
        deadline,
        &request_root,
        || disconnected(stream),
    );
    let _ = stream.set_nonblocking(false);
    match result {
        Ok(QueryResult::Entries(vals)) => Response::Entries(vals),
        Ok(QueryResult::Slice(vals)) => Response::Slice(vals.to_vec()),
        Ok(QueryResult::TopK(pairs)) => Response::TopK(pairs.to_vec()),
        Err(err) => {
            let code = match &err {
                ServeError::Overloaded(_) => WireError::Overloaded,
                ServeError::DeadlineExpired => WireError::DeadlineExpired,
                ServeError::ModelNotFound { .. } => WireError::ModelNotFound,
                ServeError::BadQuery(_) => WireError::BadRequest,
                ServeError::ShuttingDown => WireError::ShuttingDown,
                ServeError::Cancelled => WireError::Internal,
            };
            Response::Error(code, err.to_string())
        }
    }
}
