//! Factor-model serving for splatt-rs: the downstream half of the
//! tensor-decomposition story.
//!
//! The paper's pipeline ends where a model begins to be *used*: CP-ALS
//! produces a Kruskal model, and applications (recommendation,
//! pattern lookup, anomaly scoring) query it point-wise, slice-wise, or
//! top-k-wise. This crate turns a decomposed model into a queryable
//! service using only `std` plus the workspace's own substrate crates:
//!
//! * [`ModelRegistry`] — immutable, versioned model storage with
//!   load/evict; models arrive via `splatt-core`'s bit-exact model
//!   files (or checkpoints).
//! * [`ServeEngine`] — admission control ([`splatt_guard::AdmissionGate`]),
//!   an LRU result cache ([`ResultCache`]), and a micro-batching
//!   scheduler that coalesces queued requests per (model, query kind)
//!   and fans batches out over a `splatt-par` task team with per-task
//!   grow-only arenas — allocation-free on the steady-state hot path.
//! * [`serve`] / [`Client`] — a length-prefixed binary protocol served
//!   by the `splatt-net` readiness-polled reactor: a bounded worker
//!   pool multiplexing all connections, request pipelining, per-request
//!   deadlines with a timer-wheel backstop, typed overload shedding at
//!   accept/decode/batch, cancel-on-disconnect, transient-vs-permanent
//!   error classification ([`Transience`]), and graceful drain on
//!   shutdown. The old thread-per-connection front end survives behind
//!   [`FrontEndConfig::legacy_threads`] as a bit-exact A/B oracle.
//! * [`cluster`] — sharded, replicated serving: a consistent-hash
//!   [`cluster::ShardRing`] over mode-0 rows, a scatter-gather
//!   [`cluster::Router`] with replica failover and typed `Degraded`
//!   answers, shared single-parse model loading
//!   ([`cluster::SharedModel`]), and a [`cluster::LoopbackCluster`]
//!   harness for deterministic shard-kill storms.
//! * Probe integration — every counter surfaces in the schema v10
//!   `serve` object via [`ServeEngine::profile_report`] (the cluster's
//!   per-shard failover counters ride in `serve.shards`, the reactor
//!   front end's connection/wakeup/shed counters in `serve.net`).
//!
//! Answers are **bit-identical** to dense reconstruction from the same
//! model: the query kernels, the wire format, and the cluster's
//! partial-result merges all preserve IEEE-754 bit patterns end to end.

mod cache;
mod client;
pub mod cluster;
mod engine;
pub mod protocol;
mod registry;
mod server;
mod service;
mod stats;

pub use cache::{CacheKey, CacheValue, ResultCache};
pub use client::{classify, Client, Transience};
pub use cluster::{ClusterConfig, LoopbackCluster, Router, SharedModel};
pub use engine::{Query, QueryResult, ServeConfig, ServeEngine, ServeError, Ticket};
pub use registry::{ModelInfo, ModelRegistry, ServableModel};
pub use server::{serve, serve_with, FrontEndConfig, ServerHandle};
pub use stats::{Log2Histogram, QueryKind, ServeStats};
