//! A minimal blocking client for the serving protocol — used by the
//! `splatt query` CLI and the loopback tests.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, RequestBody, Response,
};
use std::io::{Error, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a serving endpoint; requests are issued one at a
/// time (the protocol is strictly request/response per frame).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (anything `ToSocketAddrs` accepts).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let mut last = None;
        for a in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&a, Duration::from_secs(10)) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(Client { stream });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| Error::new(ErrorKind::InvalidInput, "no address resolved")))
    }

    /// Issue one request and block for its response.
    ///
    /// # Errors
    /// Propagates transport and framing errors — including an `Entry`
    /// body whose coordinates do not tile its order, which is rejected
    /// before anything is written; server-side failures come back as
    /// `Ok(Response::Error(..))`.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        write_frame(&mut self.stream, &encode_request(req)?)?;
        decode_response(&read_frame(&mut self.stream)?)
    }

    /// Reconstruct entries of `model` at flat `coords`.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn entries(
        &mut self,
        model: &str,
        version: u64,
        deadline_ms: u32,
        order: u8,
        coords: Vec<u32>,
    ) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms,
            model: model.to_string(),
            version,
            body: RequestBody::Entry { order, coords },
        })
    }

    /// Reconstruct the dense slice fixing `mode` at `index`.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn slice(
        &mut self,
        model: &str,
        version: u64,
        deadline_ms: u32,
        mode: u8,
        index: u32,
    ) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms,
            model: model.to_string(),
            version,
            body: RequestBody::Slice { mode, index },
        })
    }

    /// Top-`k` indices along `mode` against `fixed` coordinates.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn top_k(
        &mut self,
        model: &str,
        version: u64,
        deadline_ms: u32,
        mode: u8,
        k: u32,
        fixed: Vec<u32>,
    ) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms,
            model: model.to_string(),
            version,
            body: RequestBody::TopK { mode, k, fixed },
        })
    }

    /// Fetch the server's probe profile (schema v5 JSON).
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn stats(&mut self) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms: 0,
            model: String::new(),
            version: 0,
            body: RequestBody::Stats,
        })
    }

    /// List the models the server holds.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn list(&mut self) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms: 0,
            model: String::new(),
            version: 0,
            body: RequestBody::List,
        })
    }

    /// Ask the server to shut down cleanly.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms: 0,
            model: String::new(),
            version: 0,
            body: RequestBody::Shutdown,
        })
    }
}
