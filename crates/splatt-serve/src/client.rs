//! A minimal blocking client for the serving protocol — used by the
//! `splatt query` CLI, the cluster router, and the loopback tests.
//!
//! Failures split along one load-bearing line, [`Transience`]:
//! *transient* failures (transport errors, `Overloaded`, `ShuttingDown`,
//! `Internal`) may succeed on retry — against the same endpoint or a
//! sibling replica — while *permanent* failures (`BadRequest`,
//! `ModelNotFound`, `DeadlineExpired`, `Degraded`) will not, no matter
//! how often they are replayed. [`Client::call_with_retry`] is the
//! shared retry path built on that classification: capped exponential
//! backoff from a [`RetryPolicy`], clamped to the request's
//! [`Deadline`] budget, reconnecting after transport errors (which
//! poison the stream framing). The cluster router drives the same
//! helper for its per-replica failover hops.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, RequestBody, Response,
    WireError,
};
use splatt_guard::{Deadline, RetryPolicy};
use std::io::{Error, ErrorKind};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Whether a failed call may succeed if replayed; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transience {
    /// Worth retrying (after backoff, possibly on another replica).
    Transient,
    /// Retrying can only repeat the failure; surface it.
    Permanent,
}

/// Classify a typed wire error. Transport-level `io::Error`s are always
/// [`Transience::Transient`] — the peer may be restarting or a replica
/// may still be live.
pub fn classify(code: WireError) -> Transience {
    match code {
        // Cancelled is transient: the server aborted because it judged
        // the transport dead, not because the request was wrong — a
        // replay on a fresh connection may well succeed.
        WireError::Overloaded
        | WireError::ShuttingDown
        | WireError::Internal
        | WireError::Cancelled => Transience::Transient,
        WireError::BadRequest
        | WireError::ModelNotFound
        | WireError::DeadlineExpired
        | WireError::Degraded => Transience::Permanent,
    }
}

/// One connection to a serving endpoint; requests are issued one at a
/// time (the protocol is strictly request/response per frame).
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
}

impl Client {
    /// Connect to `addr` (anything `ToSocketAddrs` accepts).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// [`Client::connect`] with an explicit per-address timeout (the
    /// router uses short timeouts so a dead worker costs milliseconds,
    /// not seconds).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let mut last = None;
        for a in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&a, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(Client { stream, addr: a });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| Error::new(ErrorKind::InvalidInput, "no address resolved")))
    }

    /// The endpoint this client is connected to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bound every read/write on the connection (`None` blocks forever).
    /// A timeout mid-frame desyncs the stream; pair with
    /// [`Client::reconnect`] as [`Client::call_with_retry`] does.
    ///
    /// # Errors
    /// Propagates socket option failures.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Drop the (possibly poisoned) stream and dial the endpoint again.
    ///
    /// # Errors
    /// Propagates connection failures; the old stream is already gone.
    pub fn reconnect(&mut self, timeout: Duration) -> std::io::Result<()> {
        let stream = TcpStream::connect_timeout(&self.addr, timeout)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        Ok(())
    }

    /// Issue one request and block for its response.
    ///
    /// # Errors
    /// Propagates transport and framing errors — including an `Entry`
    /// body whose coordinates do not tile its order, which is rejected
    /// before anything is written; server-side failures come back as
    /// `Ok(Response::Error(..))`.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        decode_response(&self.call_frame(req)?)
    }

    /// Issue one request and return the *undecoded* response frame. The
    /// cluster router uses this so its fault plan can corrupt the raw
    /// bytes before decoding, exercising the failover path the way a
    /// checksum mismatch would.
    ///
    /// # Errors
    /// Propagates transport and framing errors.
    pub fn call_frame(&mut self, req: &Request) -> std::io::Result<Vec<u8>> {
        write_frame(&mut self.stream, &encode_request(req)?)?;
        read_frame(&mut self.stream)
    }

    /// Issue `req`, retrying transient failures with capped exponential
    /// backoff until `policy` or the `deadline` budget runs out.
    /// Transport errors reconnect before the next attempt. Permanent
    /// failures (and success) return immediately.
    ///
    /// # Errors
    /// The last transport error when retries are exhausted; typed
    /// server-side failures still come back as `Ok(Response::Error(..))`.
    pub fn call_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
        deadline: &Deadline,
    ) -> std::io::Result<Response> {
        let mut retry = 0u32;
        loop {
            let outcome = self.call(req);
            let transient = match &outcome {
                Ok(Response::Error(code, _)) => classify(*code) == Transience::Transient,
                Ok(_) => return outcome,
                Err(_) => true,
            };
            if !transient || !policy.allows(retry) || !policy.sleep_before_retry(retry, deadline) {
                return outcome;
            }
            if outcome.is_err() {
                // A transport error leaves the framing in an unknown
                // state; only a fresh connection is safe to reuse. A
                // failed reconnect surfaces on the next call attempt.
                let _ = self.reconnect(Duration::from_secs(1));
            }
            retry += 1;
        }
    }

    /// Reconstruct entries of `model` at flat `coords`.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn entries(
        &mut self,
        model: &str,
        version: u64,
        deadline_ms: u32,
        order: u8,
        coords: Vec<u32>,
    ) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms,
            model: model.to_string(),
            version,
            body: RequestBody::Entry { order, coords },
        })
    }

    /// Reconstruct the dense slice fixing `mode` at `index`.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn slice(
        &mut self,
        model: &str,
        version: u64,
        deadline_ms: u32,
        mode: u8,
        index: u32,
    ) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms,
            model: model.to_string(),
            version,
            body: RequestBody::Slice { mode, index },
        })
    }

    /// Top-`k` indices along `mode` against `fixed` coordinates.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn top_k(
        &mut self,
        model: &str,
        version: u64,
        deadline_ms: u32,
        mode: u8,
        k: u32,
        fixed: Vec<u32>,
    ) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms,
            model: model.to_string(),
            version,
            body: RequestBody::TopK { mode, k, fixed },
        })
    }

    /// Fetch the server's probe profile (schema v5 JSON).
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn stats(&mut self) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms: 0,
            model: String::new(),
            version: 0,
            body: RequestBody::Stats,
        })
    }

    /// List the models the server holds.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn list(&mut self) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms: 0,
            model: String::new(),
            version: 0,
            body: RequestBody::List,
        })
    }

    /// Probe liveness and cluster identity (worker rank + shard).
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn health(&mut self) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms: 0,
            model: String::new(),
            version: 0,
            body: RequestBody::Health,
        })
    }

    /// Ask the server to shut down cleanly.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.call(&Request {
            deadline_ms: 0,
            model: String::new(),
            version: 0,
            body: RequestBody::Shutdown,
        })
    }
}
