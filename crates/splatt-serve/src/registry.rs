//! The immutable, versioned model registry.
//!
//! Serving never mutates a model: publishing a name again creates a new
//! monotonically-numbered version alongside the old one, and in-flight
//! queries keep their `Arc` pin on whichever version they resolved, so
//! eviction is safe at any time. Versions start at 1; version 0 in the
//! query API means "latest".

use splatt_core::KruskalModel;
use splatt_rt::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One published model version, immutable once registered.
///
/// The payload is held behind its own `Arc` so many registries (one per
/// cluster worker) can publish the *same* single parse of a model file:
/// N workers, one heap copy.
#[derive(Debug)]
pub struct ServableModel {
    /// Registry name the model was published under.
    pub name: String,
    /// Monotonic version within that name, starting at 1.
    pub version: u64,
    /// The Kruskal payload queries are answered from.
    pub model: Arc<KruskalModel>,
}

/// Summary row for registry listings (and the wire `List` response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    pub name: String,
    pub version: u64,
    pub order: u64,
    pub rank: u64,
}

#[derive(Default)]
struct RegistryInner {
    /// Versions kept ascending; the name's next version counter survives
    /// eviction so re-publishing never reuses a number.
    models: HashMap<String, (u64, Vec<Arc<ServableModel>>)>,
}

/// Thread-safe registry of [`ServableModel`]s; see the module docs.
#[derive(Default)]
pub struct ModelRegistry {
    inner: Mutex<RegistryInner>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Publish `model` under `name`, returning the version it received.
    pub fn publish(&self, name: &str, model: KruskalModel) -> u64 {
        self.publish_arc(name, Arc::new(model))
    }

    /// Publish an already-shared model payload under `name`. Cluster
    /// workers use this to register per-worker views of one shared parse
    /// of a `splatt-model-v1` file instead of N heap copies.
    pub fn publish_arc(&self, name: &str, model: Arc<KruskalModel>) -> u64 {
        let mut inner = self.inner.lock();
        let (next, versions) = inner
            .models
            .entry(name.to_string())
            .or_insert_with(|| (1, Vec::new()));
        let version = *next;
        *next += 1;
        versions.push(Arc::new(ServableModel {
            name: name.to_string(),
            version,
            model,
        }));
        version
    }

    /// Publish the model stored at `path` (any format
    /// [`splatt_core::load_model_path`] sniffs, including the CRC-framed
    /// artifacts the durability layer writes) under `name`.
    ///
    /// The file is read, checksum-verified, and parsed entirely
    /// *outside* the registry lock, so republishing a refreshed model
    /// never blocks in-flight queries: readers see the old latest until
    /// the one `publish_arc` call at the end swaps in the new version.
    ///
    /// # Errors
    /// Propagates load failures (torn/corrupt files surface as typed
    /// `InvalidData` errors from the store layer, never a wrong model).
    pub fn publish_path(&self, name: &str, path: &std::path::Path) -> std::io::Result<u64> {
        let model = splatt_core::load_model_path(path)?;
        Ok(self.publish_arc(name, Arc::new(model)))
    }

    /// Resolve `name` at `version` (0 = latest).
    pub fn get(&self, name: &str, version: u64) -> Option<Arc<ServableModel>> {
        let inner = self.inner.lock();
        let (_, versions) = inner.models.get(name)?;
        if version == 0 {
            versions.last().cloned()
        } else {
            versions.iter().find(|m| m.version == version).cloned()
        }
    }

    /// True when the exact `name`@`version` is still published.
    pub fn contains(&self, name: &str, version: u64) -> bool {
        let inner = self.inner.lock();
        inner
            .models
            .get(name)
            .is_some_and(|(_, versions)| versions.iter().any(|m| m.version == version))
    }

    /// Evict one version (or every version when `version == 0`) of
    /// `name`, returning how many were removed. In-flight queries that
    /// already resolved the model keep serving from their pin.
    pub fn evict(&self, name: &str, version: u64) -> usize {
        let mut inner = self.inner.lock();
        let Some((_, versions)) = inner.models.get_mut(name) else {
            return 0;
        };
        let before = versions.len();
        if version == 0 {
            versions.clear();
        } else {
            versions.retain(|m| m.version != version);
        }
        // The name's entry (and its version counter) survives even when
        // every version is gone, so re-publishing never reuses a number.
        before - versions.len()
    }

    /// Every live version, sorted by name then version.
    pub fn list(&self) -> Vec<ModelInfo> {
        let inner = self.inner.lock();
        let mut out: Vec<ModelInfo> = inner
            .models
            .values()
            .flat_map(|(_, versions)| versions.iter())
            .map(|m| ModelInfo {
                name: m.name.clone(),
                version: m.version,
                order: m.model.order() as u64,
                rank: m.model.rank() as u64,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name).then(a.version.cmp(&b.version)));
        out
    }

    /// Number of live model versions.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .models
            .values()
            .map(|(_, v)| v.len())
            .sum()
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_dense::Matrix;

    fn model(seed: u64) -> KruskalModel {
        KruskalModel {
            lambda: vec![1.0, 2.0],
            factors: vec![Matrix::random(3, 2, seed), Matrix::random(4, 2, seed + 1)],
        }
    }

    #[test]
    fn versions_are_monotonic_and_latest_wins() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.publish("m", model(1)), 1);
        assert_eq!(reg.publish("m", model(2)), 2);
        assert_eq!(reg.get("m", 0).unwrap().version, 2);
        assert_eq!(reg.get("m", 1).unwrap().version, 1);
        assert!(reg.get("m", 3).is_none());
        assert!(reg.get("other", 0).is_none());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn eviction_keeps_pins_alive_and_counter_monotonic() {
        let reg = ModelRegistry::new();
        reg.publish("m", model(1));
        let pinned = reg.get("m", 1).unwrap();
        assert_eq!(reg.evict("m", 1), 1);
        assert!(reg.get("m", 1).is_none());
        assert_eq!(pinned.model.rank(), 2, "pin still serves after evict");
        // Re-publish gets a fresh version, not a recycled 1.
        assert_eq!(reg.publish("m", model(3)), 2);
        assert_eq!(reg.evict("m", 0), 1);
        assert_eq!(reg.evict("m", 0), 0);
        assert_eq!(reg.evict("ghost", 0), 0);
    }

    #[test]
    fn publish_path_loads_framed_artifacts_and_rejects_torn_ones() {
        let dir = std::env::temp_dir().join("splatt_registry_publish_path");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.splatt");
        splatt_core::save_model_path(&model(5), &path, 1).unwrap();

        let reg = ModelRegistry::new();
        assert_eq!(reg.publish_path("m", &path).unwrap(), 1);
        assert_eq!(reg.get("m", 0).unwrap().model.rank(), 2);

        // A refreshed model republished from disk becomes the new
        // latest while an old pin keeps serving.
        let pinned = reg.get("m", 1).unwrap();
        splatt_core::save_model_path(&model(9), &path, 2).unwrap();
        assert_eq!(reg.publish_path("m", &path).unwrap(), 2);
        assert_eq!(reg.get("m", 0).unwrap().version, 2);
        assert_eq!(pinned.model.rank(), 2, "pin unaffected by republish");

        // A torn artifact must fail typed and leave the registry as-is.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(reg.publish_path("m", &path).is_err());
        assert_eq!(reg.get("m", 0).unwrap().version, 2, "registry unchanged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_is_sorted() {
        let reg = ModelRegistry::new();
        reg.publish("b", model(1));
        reg.publish("a", model(2));
        reg.publish("a", model(3));
        let names: Vec<(String, u64)> = reg
            .list()
            .into_iter()
            .map(|i| (i.name, i.version))
            .collect();
        assert_eq!(
            names,
            vec![("a".into(), 1), ("a".into(), 2), ("b".into(), 1)]
        );
    }
}
