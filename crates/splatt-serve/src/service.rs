//! The `splatt-net` ↔ `splatt-serve` seam: [`EngineService`] adapts a
//! [`ServeEngine`] to the reactor's protocol-agnostic
//! [`FrameService`] trait.
//!
//! The reactor owns sockets, framing, pipelining, and the accept- and
//! decode-layer admission gates; this adapter owns protocol semantics —
//! decode, engine dispatch (through the batch-layer gate inside
//! [`ServeEngine::query`]), typed error mapping, and the probe `Stats`
//! answer, into which it splices the live front-end counters so one
//! wire round trip reports the whole pipeline.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use splatt_net::{Disposition, FrameService, NetCounters, Reply, RequestCtx, ShedLayer};
use splatt_probe::NetFrontRow;

use crate::engine::{Query, QueryResult, ServeEngine, ServeError};
use crate::protocol::{decode_request, encode_response, Request, RequestBody, Response, WireError};

/// Map a typed engine refusal onto its wire code. The `Cancelled`
/// mapping is deliberate: it used to be folded into `Internal`, which
/// told retrying clients the *server* had failed when in fact the
/// server had (correctly) stopped serving a vanished client.
pub(crate) fn wire_code_of(err: &ServeError) -> WireError {
    match err {
        ServeError::Overloaded(_) => WireError::Overloaded,
        ServeError::DeadlineExpired => WireError::DeadlineExpired,
        ServeError::ModelNotFound { .. } => WireError::ModelNotFound,
        ServeError::BadQuery(_) => WireError::BadRequest,
        ServeError::ShuttingDown => WireError::ShuttingDown,
        ServeError::Cancelled => WireError::Cancelled,
    }
}

/// Encode the typed frame written when an admission layer sheds.
pub(crate) fn shed_frame(layer: ShedLayer) -> Vec<u8> {
    let msg = match layer {
        ShedLayer::QueueDepth { depth, max_depth } => {
            format!("front-end queue full: {depth} decoded requests in flight (limit {max_depth})")
        }
        ShedLayer::Pipeline { max_pipeline } => {
            format!("pipeline full: {max_pipeline} unanswered requests on this connection")
        }
    };
    encode_response(&Response::Error(WireError::Overloaded, msg))
}

/// Encode the typed frame the reactor's deadline backstop answers with.
pub(crate) fn backstop_frame() -> Vec<u8> {
    encode_response(&Response::Error(
        WireError::DeadlineExpired,
        "deadline passed while the request was executing".into(),
    ))
}

/// Encode the typed frame written to connections shed at accept.
pub(crate) fn accept_shed_frame(max_conns: usize) -> Vec<u8> {
    encode_response(&Response::Error(
        WireError::Overloaded,
        format!("connection capacity reached (limit {max_conns})"),
    ))
}

/// Peek `deadline_ms` (payload bytes 1..5) without a full decode, so
/// the reactor can arm its backstop timer before dispatch.
pub(crate) fn peek_deadline(payload: &[u8], default: Duration) -> Option<Duration> {
    if payload.len() < 5 {
        return None;
    }
    let ms = u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]);
    if ms > 0 {
        Some(Duration::from_millis(u64::from(ms)))
    } else {
        Some(default)
    }
}

/// Roll live front-end counters into the probe `serve.net` row.
pub(crate) fn net_row_of(counters: &NetCounters) -> NetFrontRow {
    let s = counters.snapshot();
    NetFrontRow {
        accepted: s.accepted,
        connections_open: s.connections_open,
        connections_peak: s.connections_peak,
        polls: s.polls,
        readiness_wakeups: s.readiness_wakeups,
        frames_read: s.frames_read,
        frames_written: s.frames_written,
        writes: s.writes,
        coalesced_writes: s.coalesced_writes,
        sheds_accept: s.sheds_accept,
        sheds_decode: s.sheds_decode,
        idle_closed: s.idle_closed,
        deadline_backstops: s.deadline_backstops,
        worker_threads: s.worker_threads,
    }
}

/// See the module docs.
pub(crate) struct EngineService {
    engine: Arc<ServeEngine>,
    /// Set once the reactor exists (it owns the counters); `Stats`
    /// answers before that simply omit the net row.
    net: OnceLock<Arc<NetCounters>>,
}

impl EngineService {
    pub(crate) fn new(engine: Arc<ServeEngine>) -> EngineService {
        EngineService {
            engine,
            net: OnceLock::new(),
        }
    }

    pub(crate) fn attach_net(&self, counters: Arc<NetCounters>) {
        let _ = self.net.set(counters);
    }

    pub(crate) fn net_row(&self) -> Option<NetFrontRow> {
        self.net.get().map(|c| net_row_of(c))
    }

    fn respond(&self, req: Request, ctx: &RequestCtx) -> Response {
        let query = match req.body {
            RequestBody::Stats => {
                let mut report = self.engine.profile_report();
                if let Some(serve) = report.serve.as_mut() {
                    serve.net = self.net_row();
                }
                return Response::Stats(report.to_json());
            }
            RequestBody::List => return Response::Models(self.engine.registry().list()),
            RequestBody::Shutdown => return Response::Ack,
            RequestBody::Health => {
                return Response::Health {
                    worker: self.engine.config().worker,
                    shard: self.engine.config().shard,
                }
            }
            RequestBody::Entry { order: _, coords } => Query::Entry { coords },
            RequestBody::Slice { mode, index } => Query::Slice { mode, index },
            RequestBody::TopK { mode, k, fixed } => Query::TopK { mode, k, fixed },
            RequestBody::TopKShard {
                mode,
                k,
                fixed,
                sel,
            } => Query::TopKShard {
                mode,
                k,
                fixed,
                sel,
            },
            RequestBody::SliceShard { mode, index, sel } => Query::SliceShard { mode, index, sel },
        };
        let deadline = if req.deadline_ms > 0 {
            Some(Duration::from_millis(u64::from(req.deadline_ms)))
        } else {
            None
        };
        // A fresh root token per request — deliberately NOT a child of
        // the shutdown token, so a drain completes in-flight requests
        // instead of cancelling them. Disconnects surface through the
        // reactor-owned alive flag polled below; the per-request socket
        // peeking (and its nonblocking-mode toggling) is gone.
        let request_root = splatt_guard::CancelToken::new();
        let result = self.engine.query(
            &req.model,
            req.version,
            query,
            deadline,
            &request_root,
            || ctx.is_aborted(),
        );
        match result {
            Ok(QueryResult::Entries(vals)) => Response::Entries(vals),
            Ok(QueryResult::Slice(vals)) => Response::Slice(vals.to_vec()),
            Ok(QueryResult::TopK(pairs)) => Response::TopK(pairs.to_vec()),
            Err(err) => Response::Error(wire_code_of(&err), err.to_string()),
        }
    }
}

impl FrameService for EngineService {
    fn handle(&self, payload: &[u8], ctx: &RequestCtx) -> Reply {
        let response = match decode_request(payload) {
            Ok(req) => self.respond(req, ctx),
            Err(e) => Response::Error(WireError::BadRequest, e.to_string()),
        };
        let disposition = if matches!(response, Response::Ack) {
            Disposition::ShutdownAfterWrite
        } else {
            Disposition::Continue
        };
        Reply {
            payload: encode_response(&response),
            disposition,
        }
    }

    fn deadline_of(&self, payload: &[u8]) -> Option<Duration> {
        peek_deadline(payload, self.engine.config().default_deadline)
    }

    fn shed_reply(&self, layer: ShedLayer) -> Vec<u8> {
        shed_frame(layer)
    }

    fn deadline_reply(&self) -> Vec<u8> {
        backstop_frame()
    }

    fn on_shutdown(&self) {
        self.engine.shutdown_token().cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::encode_request;

    #[test]
    fn peek_deadline_matches_full_decode() {
        let req = Request {
            deadline_ms: 750,
            model: "m".into(),
            version: 0,
            body: RequestBody::List,
        };
        let payload = encode_request(&req).unwrap();
        assert_eq!(
            peek_deadline(&payload, Duration::from_secs(5)),
            Some(Duration::from_millis(750))
        );
        let req = Request {
            deadline_ms: 0,
            ..req
        };
        let payload = encode_request(&req).unwrap();
        // 0 means "server default"; the backstop covers that too.
        assert_eq!(
            peek_deadline(&payload, Duration::from_secs(5)),
            Some(Duration::from_secs(5))
        );
        assert_eq!(peek_deadline(&[1, 2], Duration::from_secs(5)), None);
    }

    #[test]
    fn cancelled_maps_to_its_own_wire_code() {
        assert_eq!(wire_code_of(&ServeError::Cancelled), WireError::Cancelled);
        assert_eq!(
            wire_code_of(&ServeError::ShuttingDown),
            WireError::ShuttingDown
        );
    }

    #[test]
    fn shed_frames_decode_as_typed_overloaded() {
        use crate::protocol::decode_response;
        let frame = shed_frame(ShedLayer::QueueDepth {
            depth: 8,
            max_depth: 8,
        });
        match decode_response(&frame).unwrap() {
            Response::Error(WireError::Overloaded, msg) => {
                assert!(msg.contains("limit 8"), "{msg}");
            }
            other => panic!("expected typed Overloaded, got {other:?}"),
        }
        let frame = accept_shed_frame(100);
        match decode_response(&frame).unwrap() {
            Response::Error(WireError::Overloaded, msg) => {
                assert!(msg.contains("connection capacity"), "{msg}");
            }
            other => panic!("expected typed Overloaded, got {other:?}"),
        }
        let frame = backstop_frame();
        match decode_response(&frame).unwrap() {
            Response::Error(WireError::DeadlineExpired, _) => {}
            other => panic!("expected typed DeadlineExpired, got {other:?}"),
        }
    }
}
