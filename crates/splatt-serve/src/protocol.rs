//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one frame: a `u32`
//! little-endian payload length followed by the payload. Integers are
//! little-endian; floats travel as IEEE-754 bit patterns
//! (`f64::to_bits`), so values cross the wire bit-exactly.
//!
//! Request payload:
//!
//! ```text
//! u8  op          1=entry 2=slice 3=topk 4=stats 5=list 6=shutdown
//!                 7=health 8=topk-shard 9=slice-shard
//! u32 deadline_ms 0 = server default
//! u16 name_len    + name bytes (UTF-8; empty for stats/list/shutdown)
//! u64 version     0 = latest
//! ...op-specific body (see RequestBody)
//! ```
//!
//! Ops 7–9 are the cluster extension: `health` is the router's liveness
//! probe, and the shard-scoped query ops carry a [`ShardSel`] so a
//! worker can re-derive its owned mode-0 row set from pure hash math.
//!
//! Response payload: `u8` status (0 = ok, else a [`WireError`] code)
//! followed by either an error message (`u16` length + UTF-8) or the
//! op-specific result body.

use crate::registry::ModelInfo;
use std::io::{Error, ErrorKind, Read, Write};

/// Refuse frames beyond this size (64 MiB) — a corrupt or malicious
/// length prefix must not trigger a giant allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Wire error codes; the typed mirror of [`crate::ServeError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireError {
    Overloaded = 1,
    DeadlineExpired = 2,
    ModelNotFound = 3,
    BadRequest = 4,
    ShuttingDown = 5,
    Internal = 6,
    /// A cluster router could not cover part of the query's hash range:
    /// no live replica held a required shard. The answer is *absent*,
    /// not wrong — clients may retry once replicas re-admit.
    Degraded = 7,
    /// The request was cancelled server-side before producing a result
    /// — typically the client vanished mid-wait, or the front end tore
    /// the connection down. Distinct from [`WireError::Internal`]: the
    /// server did nothing wrong, and a replay may well succeed.
    Cancelled = 8,
}

impl WireError {
    fn from_code(code: u8) -> Option<WireError> {
        Some(match code {
            1 => WireError::Overloaded,
            2 => WireError::DeadlineExpired,
            3 => WireError::ModelNotFound,
            4 => WireError::BadRequest,
            5 => WireError::ShuttingDown,
            6 => WireError::Internal,
            7 => WireError::Degraded,
            8 => WireError::Cancelled,
            _ => return None,
        })
    }
}

/// Which shard of a consistent-hash partition a shard-scoped request
/// addresses. Workers re-derive the owned mode-0 row set from
/// `(nshards, seed)` — pure math, so the wire cost is constant no matter
/// how large the mode-0 dimension is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSel {
    /// Shard index in `0..nshards`.
    pub shard: u32,
    /// Total shard count of the partition.
    pub nshards: u32,
    /// Hash seed of the partition's ring.
    pub seed: u64,
}

/// Op-specific request body.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// `u8` order, `u32` tuple count, then `count * order` `u32` coords.
    Entry {
        order: u8,
        coords: Vec<u32>,
    },
    /// `u8` mode, `u32` index.
    Slice {
        mode: u8,
        index: u32,
    },
    /// `u8` mode, `u32` k, `u8` fixed count, then `u32` fixed coords.
    TopK {
        mode: u8,
        k: u32,
        fixed: Vec<u32>,
    },
    Stats,
    List,
    Shutdown,
    /// Liveness probe; answered with [`Response::Health`].
    Health,
    /// Shard-scoped top-k: like `TopK` but scoring only the mode-0 rows
    /// owned by `sel`'s shard. Body adds `u32 shard, u32 nshards,
    /// u64 seed`.
    TopKShard {
        mode: u8,
        k: u32,
        fixed: Vec<u32>,
        sel: ShardSel,
    },
    /// Shard-scoped slice (`mode != 0`): only the sub-blocks whose
    /// mode-0 coordinate is owned by `sel`'s shard, in ascending owned
    /// order. Body adds `u32 shard, u32 nshards, u64 seed`.
    SliceShard {
        mode: u8,
        index: u32,
        sel: ShardSel,
    },
}

/// One decoded request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Per-request deadline in milliseconds; 0 = server default.
    pub deadline_ms: u32,
    /// Model name (empty for stats/list/shutdown).
    pub model: String,
    /// Model version; 0 = latest.
    pub version: u64,
    pub body: RequestBody,
}

/// One decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Entries(Vec<f64>),
    Slice(Vec<f64>),
    TopK(Vec<(u32, f64)>),
    /// Probe schema v5 profile JSON.
    Stats(String),
    Models(Vec<ModelInfo>),
    /// Acknowledges a shutdown request.
    Ack,
    /// Liveness answer: which worker/shard identity answered. Routers
    /// answer with `u32::MAX` for both.
    Health {
        worker: u32,
        shard: u32,
    },
    Error(WireError, String),
}

fn bad(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

/// Write one frame.
///
/// # Errors
/// Fails on oversized payloads and propagates I/O errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(bad(format!(
            "frame of {} bytes exceeds limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame.
///
/// # Errors
/// Fails on oversized length prefixes and propagates I/O errors
/// (`UnexpectedEof` on a clean close before the prefix).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds limit")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Read one frame while polling `should_stop`, for sockets with a short
/// read timeout. Returns `Ok(None)` when stopped cleanly *between*
/// frames; once a frame is underway a stop fails the read instead, so a
/// half-received frame never desyncs the stream.
///
/// Partial reads are accumulated by hand because `read_exact` may
/// consume bytes before failing with `WouldBlock`/`TimedOut`.
///
/// # Errors
/// Propagates I/O errors; EOF mid-frame is `UnexpectedEof`.
pub fn read_frame_polled(
    r: &mut impl Read,
    should_stop: &dyn Fn() -> bool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        if should_stop() && got == 0 {
            return Ok(None);
        }
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 && should_stop() {
                    Ok(None)
                } else {
                    Err(Error::new(ErrorKind::UnexpectedEof, "eof in frame prefix"))
                };
            }
            Ok(n) => got += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if should_stop() && got > 0 {
                    return Err(Error::new(ErrorKind::TimedOut, "stopped mid-frame"));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds limit")));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(Error::new(ErrorKind::UnexpectedEof, "eof in frame body")),
            Ok(n) => got += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if should_stop() {
                    return Err(Error::new(ErrorKind::TimedOut, "stopped mid-frame"));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(bad("truncated payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> std::io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> std::io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> std::io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> std::io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> std::io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self, len: usize) -> std::io::Result<String> {
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| bad("invalid UTF-8"))
    }

    fn u32s(&mut self, count: usize) -> std::io::Result<Vec<u32>> {
        // `count` comes off the wire: refuse anything the remaining
        // bytes cannot hold BEFORE sizing the allocation, so a tiny
        // crafted frame cannot demand a multi-GiB reserve.
        if count > (self.buf.len() - self.pos) / 4 {
            return Err(bad("truncated payload"));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn done(&self) -> std::io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes in payload"))
        }
    }
}

const OP_ENTRY: u8 = 1;
const OP_SLICE: u8 = 2;
const OP_TOPK: u8 = 3;
const OP_STATS: u8 = 4;
const OP_LIST: u8 = 5;
const OP_SHUTDOWN: u8 = 6;
const OP_HEALTH: u8 = 7;
const OP_TOPK_SHARD: u8 = 8;
const OP_SLICE_SHARD: u8 = 9;

fn op_of(body: &RequestBody) -> u8 {
    match body {
        RequestBody::Entry { .. } => OP_ENTRY,
        RequestBody::Slice { .. } => OP_SLICE,
        RequestBody::TopK { .. } => OP_TOPK,
        RequestBody::Stats => OP_STATS,
        RequestBody::List => OP_LIST,
        RequestBody::Shutdown => OP_SHUTDOWN,
        RequestBody::Health => OP_HEALTH,
        RequestBody::TopKShard { .. } => OP_TOPK_SHARD,
        RequestBody::SliceShard { .. } => OP_SLICE_SHARD,
    }
}

fn put_sel(out: &mut Vec<u8>, sel: &ShardSel) {
    out.extend_from_slice(&sel.shard.to_le_bytes());
    out.extend_from_slice(&sel.nshards.to_le_bytes());
    out.extend_from_slice(&sel.seed.to_le_bytes());
}

fn take_sel(c: &mut Cursor<'_>) -> std::io::Result<ShardSel> {
    Ok(ShardSel {
        shard: c.u32()?,
        nshards: c.u32()?,
        seed: c.u64()?,
    })
}

/// Serialize a request payload (no frame prefix).
///
/// # Errors
/// Rejects an `Entry` body whose coordinates do not tile `order`
/// (including `order == 0` with coordinates present) — encoding it
/// would emit a frame every decoder refuses as trailing bytes.
pub fn encode_request(req: &Request) -> std::io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(32);
    out.push(op_of(&req.body));
    out.extend_from_slice(&req.deadline_ms.to_le_bytes());
    out.extend_from_slice(&(req.model.len() as u16).to_le_bytes());
    out.extend_from_slice(req.model.as_bytes());
    out.extend_from_slice(&req.version.to_le_bytes());
    match &req.body {
        RequestBody::Entry { order, coords } => {
            let count = match (*order, coords.len()) {
                (0, 0) => 0,
                (0, n) => return Err(bad(format!("{n} coordinates with order 0"))),
                (o, n) if n % o as usize != 0 => {
                    return Err(bad(format!("{n} coordinates do not tile order {o}")));
                }
                (o, n) => n / o as usize,
            };
            out.push(*order);
            out.extend_from_slice(&(count as u32).to_le_bytes());
            for c in coords {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        RequestBody::Slice { mode, index } => {
            out.push(*mode);
            out.extend_from_slice(&index.to_le_bytes());
        }
        RequestBody::TopK { mode, k, fixed } => {
            out.push(*mode);
            out.extend_from_slice(&k.to_le_bytes());
            out.push(fixed.len() as u8);
            for c in fixed {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        RequestBody::TopKShard {
            mode,
            k,
            fixed,
            sel,
        } => {
            out.push(*mode);
            out.extend_from_slice(&k.to_le_bytes());
            out.push(fixed.len() as u8);
            for c in fixed {
                out.extend_from_slice(&c.to_le_bytes());
            }
            put_sel(&mut out, sel);
        }
        RequestBody::SliceShard { mode, index, sel } => {
            out.push(*mode);
            out.extend_from_slice(&index.to_le_bytes());
            put_sel(&mut out, sel);
        }
        RequestBody::Stats | RequestBody::List | RequestBody::Shutdown | RequestBody::Health => {}
    }
    Ok(out)
}

/// Parse a request payload.
///
/// # Errors
/// Returns `InvalidData` on malformed bytes.
pub fn decode_request(payload: &[u8]) -> std::io::Result<Request> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let deadline_ms = c.u32()?;
    let name_len = c.u16()? as usize;
    let model = c.string(name_len)?;
    let version = c.u64()?;
    let body = match op {
        OP_ENTRY => {
            let order = c.u8()?;
            let count = c.u32()? as usize;
            let total = count
                .checked_mul(order as usize)
                .ok_or_else(|| bad("coordinate count overflow"))?;
            RequestBody::Entry {
                order,
                coords: c.u32s(total)?,
            }
        }
        OP_SLICE => RequestBody::Slice {
            mode: c.u8()?,
            index: c.u32()?,
        },
        OP_TOPK => {
            let mode = c.u8()?;
            let k = c.u32()?;
            let nfixed = c.u8()? as usize;
            RequestBody::TopK {
                mode,
                k,
                fixed: c.u32s(nfixed)?,
            }
        }
        OP_STATS => RequestBody::Stats,
        OP_LIST => RequestBody::List,
        OP_SHUTDOWN => RequestBody::Shutdown,
        OP_HEALTH => RequestBody::Health,
        OP_TOPK_SHARD => {
            let mode = c.u8()?;
            let k = c.u32()?;
            let nfixed = c.u8()? as usize;
            let fixed = c.u32s(nfixed)?;
            RequestBody::TopKShard {
                mode,
                k,
                fixed,
                sel: take_sel(&mut c)?,
            }
        }
        OP_SLICE_SHARD => {
            let mode = c.u8()?;
            let index = c.u32()?;
            RequestBody::SliceShard {
                mode,
                index,
                sel: take_sel(&mut c)?,
            }
        }
        other => return Err(bad(format!("unknown op {other}"))),
    };
    c.done()?;
    Ok(Request {
        deadline_ms,
        model,
        version,
        body,
    })
}

/// Serialize a response payload (no frame prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match resp {
        Response::Error(code, msg) => {
            out.push(*code as u8);
            let msg = &msg.as_bytes()[..msg.len().min(u16::MAX as usize)];
            out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
            out.extend_from_slice(msg);
            return out;
        }
        _ => out.push(0),
    }
    // A second op byte disambiguates ok-payloads so responses are
    // self-describing (the client checks it against the request).
    match resp {
        Response::Entries(vals) => {
            out.push(OP_ENTRY);
            out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
            for v in vals {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Response::Slice(vals) => {
            out.push(OP_SLICE);
            out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
            for v in vals {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Response::TopK(pairs) => {
            out.push(OP_TOPK);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (i, v) in pairs {
                out.extend_from_slice(&i.to_le_bytes());
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Response::Stats(json) => {
            out.push(OP_STATS);
            out.extend_from_slice(&(json.len() as u32).to_le_bytes());
            out.extend_from_slice(json.as_bytes());
        }
        Response::Models(models) => {
            out.push(OP_LIST);
            out.extend_from_slice(&(models.len() as u32).to_le_bytes());
            for m in models {
                out.extend_from_slice(&(m.name.len() as u16).to_le_bytes());
                out.extend_from_slice(m.name.as_bytes());
                out.extend_from_slice(&m.version.to_le_bytes());
                out.extend_from_slice(&m.order.to_le_bytes());
                out.extend_from_slice(&m.rank.to_le_bytes());
            }
        }
        Response::Ack => out.push(OP_SHUTDOWN),
        Response::Health { worker, shard } => {
            out.push(OP_HEALTH);
            out.extend_from_slice(&worker.to_le_bytes());
            out.extend_from_slice(&shard.to_le_bytes());
        }
        Response::Error(..) => unreachable!("handled above"),
    }
    out
}

/// Parse a response payload.
///
/// # Errors
/// Returns `InvalidData` on malformed bytes or unknown status codes.
pub fn decode_response(payload: &[u8]) -> std::io::Result<Response> {
    let mut c = Cursor::new(payload);
    let status = c.u8()?;
    if status != 0 {
        let code =
            WireError::from_code(status).ok_or_else(|| bad(format!("unknown status {status}")))?;
        let len = c.u16()? as usize;
        let msg = c.string(len)?;
        c.done()?;
        return Ok(Response::Error(code, msg));
    }
    let op = c.u8()?;
    let resp = match op {
        OP_ENTRY | OP_SLICE => {
            let count = c.u32()? as usize;
            let mut vals = Vec::with_capacity(count.min(MAX_FRAME / 8));
            for _ in 0..count {
                vals.push(c.f64()?);
            }
            if op == OP_ENTRY {
                Response::Entries(vals)
            } else {
                Response::Slice(vals)
            }
        }
        OP_TOPK => {
            let count = c.u32()? as usize;
            let mut pairs = Vec::with_capacity(count.min(MAX_FRAME / 12));
            for _ in 0..count {
                let i = c.u32()?;
                let v = c.f64()?;
                pairs.push((i, v));
            }
            Response::TopK(pairs)
        }
        OP_STATS => {
            let len = c.u32()? as usize;
            Response::Stats(c.string(len)?)
        }
        OP_LIST => {
            let count = c.u32()? as usize;
            let mut models = Vec::with_capacity(count.min(MAX_FRAME / 32));
            for _ in 0..count {
                let name_len = c.u16()? as usize;
                let name = c.string(name_len)?;
                models.push(ModelInfo {
                    name,
                    version: c.u64()?,
                    order: c.u64()?,
                    rank: c.u64()?,
                });
            }
            Response::Models(models)
        }
        OP_SHUTDOWN => Response::Ack,
        OP_HEALTH => Response::Health {
            worker: c.u32()?,
            shard: c.u32()?,
        },
        other => return Err(bad(format!("unknown response op {other}"))),
    };
    c.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = encode_request(&req).unwrap();
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request {
            deadline_ms: 250,
            model: "movies".into(),
            version: 3,
            body: RequestBody::Entry {
                order: 3,
                coords: vec![1, 2, 3, 4, 5, 6],
            },
        });
        roundtrip_request(Request {
            deadline_ms: 0,
            model: "m".into(),
            version: 0,
            body: RequestBody::Slice { mode: 1, index: 42 },
        });
        roundtrip_request(Request {
            deadline_ms: 10,
            model: "m".into(),
            version: 0,
            body: RequestBody::TopK {
                mode: 2,
                k: 10,
                fixed: vec![7, 9],
            },
        });
        for body in [
            RequestBody::Stats,
            RequestBody::List,
            RequestBody::Shutdown,
            RequestBody::Health,
        ] {
            roundtrip_request(Request {
                deadline_ms: 0,
                model: String::new(),
                version: 0,
                body,
            });
        }
    }

    #[test]
    fn shard_scoped_requests_roundtrip() {
        let sel = ShardSel {
            shard: 2,
            nshards: 3,
            seed: 0xDEAD_BEEF_u64,
        };
        roundtrip_request(Request {
            deadline_ms: 100,
            model: "m".into(),
            version: 1,
            body: RequestBody::TopKShard {
                mode: 0,
                k: 5,
                fixed: vec![1, 4],
                sel,
            },
        });
        roundtrip_request(Request {
            deadline_ms: 0,
            model: "m".into(),
            version: 0,
            body: RequestBody::SliceShard {
                mode: 2,
                index: 7,
                sel,
            },
        });
    }

    #[test]
    fn responses_roundtrip_bit_exactly() {
        roundtrip_response(Response::Entries(vec![1.5, -0.0]));
        roundtrip_response(Response::Slice(vec![f64::MIN_POSITIVE, f64::INFINITY]));
        roundtrip_response(Response::TopK(vec![(3, 0.25), (0, -1.5)]));
        roundtrip_response(Response::Stats("{\"schema\": \"x\"}".into()));
        roundtrip_response(Response::Models(vec![ModelInfo {
            name: "m".into(),
            version: 2,
            order: 3,
            rank: 16,
        }]));
        roundtrip_response(Response::Ack);
        roundtrip_response(Response::Health {
            worker: 4,
            shard: 2,
        });
        roundtrip_response(Response::Error(WireError::Overloaded, "busy".into()));
        roundtrip_response(Response::Error(WireError::DeadlineExpired, String::new()));
        roundtrip_response(Response::Error(WireError::Degraded, "shard 1 dark".into()));
        roundtrip_response(Response::Error(WireError::Cancelled, "client gone".into()));
    }

    #[test]
    fn a_flipped_status_high_bit_fails_decode() {
        // The NetFaultPlan's frame corruption XORs the status byte with
        // 0x80; every such frame must decode to a typed error, never to
        // silently wrong values.
        for resp in [
            Response::Entries(vec![1.0]),
            Response::Error(WireError::Overloaded, "x".into()),
        ] {
            let mut bytes = encode_response(&resp);
            bytes[0] ^= 0x80;
            assert!(decode_response(&bytes).is_err());
        }
    }

    #[test]
    fn nan_crosses_the_wire_bit_exactly() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let bytes = encode_response(&Response::Entries(vec![weird]));
        match decode_response(&bytes).unwrap() {
            Response::Entries(vals) => assert_eq!(vals[0].to_bits(), weird.to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "eof");
    }

    #[test]
    fn oversized_frames_are_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(decode_response(&[7]).is_err());
        // trailing garbage
        let mut bytes = encode_request(&Request {
            deadline_ms: 0,
            model: "m".into(),
            version: 0,
            body: RequestBody::List,
        })
        .unwrap();
        bytes.push(0xFF);
        assert!(decode_request(&bytes).is_err());
        // truncated coords
        let good = encode_request(&Request {
            deadline_ms: 0,
            model: "m".into(),
            version: 0,
            body: RequestBody::Entry {
                order: 3,
                coords: vec![1, 2, 3],
            },
        })
        .unwrap();
        assert!(decode_request(&good[..good.len() - 2]).is_err());
    }

    #[test]
    fn ragged_entry_coords_are_refused_at_encode_time() {
        let ragged = |order, coords| Request {
            deadline_ms: 0,
            model: "m".into(),
            version: 0,
            body: RequestBody::Entry { order, coords },
        };
        assert!(encode_request(&ragged(3, vec![1, 2, 3, 4])).is_err());
        assert!(encode_request(&ragged(0, vec![1])).is_err());
        // The empty batch stays encodable for both orders.
        assert!(encode_request(&ragged(0, vec![])).is_ok());
        assert!(encode_request(&ragged(3, vec![])).is_ok());
    }

    #[test]
    fn huge_coordinate_counts_are_refused_before_allocating() {
        // A hand-crafted Entry frame claiming count = u32::MAX tuples:
        // decode must reject it from the bytes present, not attempt a
        // count*order-sized allocation.
        let mut bytes = Vec::new();
        bytes.push(1); // OP_ENTRY
        bytes.extend_from_slice(&0u32.to_le_bytes()); // deadline
        bytes.extend_from_slice(&1u16.to_le_bytes()); // name_len
        bytes.push(b'm');
        bytes.extend_from_slice(&0u64.to_le_bytes()); // version
        bytes.push(255); // order
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        assert!(decode_request(&bytes).is_err());
        // Same shape on the TopK path.
        let mut bytes = Vec::new();
        bytes.push(3); // OP_TOPK
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.push(0); // mode
        bytes.extend_from_slice(&5u32.to_le_bytes()); // k
        bytes.push(255); // nfixed, but no coords follow
        assert!(decode_request(&bytes).is_err());
    }
}
