//! The three lock implementations compared in the paper's Figure 4.

use splatt_rt::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};

/// A raw (unguarded) lock: the minimal interface SPLATT's `mutex_pool`
/// needs — `set` and `unset` in the paper's Listing 6 terminology.
pub trait RawLock: Send + Sync + Default {
    /// Acquire the lock, blocking (by spinning or parking) until available.
    fn lock(&self);
    /// Release the lock.
    ///
    /// Must only be called by the owner of a matching [`RawLock::lock`].
    fn unlock(&self);
    /// Try to acquire without blocking; `true` on success.
    fn try_lock(&self) -> bool;
    /// Acquire like [`RawLock::lock`], returning how many failed
    /// acquisition attempts (CAS/test-and-set iterations, or park rounds
    /// for sleeping locks) were observed. Used by instrumented lock pools;
    /// strategies without visibility into their wait loop report 0.
    fn lock_counting(&self) -> u64 {
        self.lock();
        0
    }
}

/// Runtime-selectable lock strategy, mirroring the paper's three
/// configurations (Figure 4: `Sync`, `Atomic`, `FIFO-sync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockStrategy {
    /// Atomic test-and-set spin lock with yield backoff — the paper's
    /// winning `atomic bool` implementation (Listing 6).
    #[default]
    Spin,
    /// Park-immediately sleeping lock — Chapel `sync` variables under
    /// Qthreads, the configuration that destroyed YELP scalability.
    Sleep,
    /// OS-adaptive mutex (brief spin, then park) — the `fifo` tasking layer
    /// implementation of `sync` variables, found competitive with `Spin`.
    Os,
}

impl LockStrategy {
    /// All strategies, in the order plotted in Figure 4.
    pub const ALL: [LockStrategy; 3] = [LockStrategy::Sleep, LockStrategy::Spin, LockStrategy::Os];

    /// Display label matching the paper's figure legend.
    pub fn label(self) -> &'static str {
        match self {
            LockStrategy::Spin => "Atomic",
            LockStrategy::Sleep => "Sync",
            LockStrategy::Os => "FIFO-sync",
        }
    }
}

/// Test-and-set spin lock (paper Listing 6).
///
/// `lock` spins on `testAndSet`, yielding to the scheduler between
/// attempts exactly as the Chapel code calls `chpl_task_yield()`. Suited
/// to the MTTKRP's short, low-contention critical sections.
#[derive(Default)]
pub struct SpinLock {
    flag: AtomicBool,
}

impl RawLock for SpinLock {
    #[inline]
    fn lock(&self) {
        // `swap(true, Acquire)` is testAndSet: returns the previous value.
        while self.flag.swap(true, Ordering::Acquire) {
            // Spin politely: on contended paths give other tasks a chance
            // to run, like `chpl_task_yield()`.
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    #[inline]
    fn unlock(&self) {
        self.flag.store(false, Ordering::Release);
    }

    #[inline]
    fn try_lock(&self) -> bool {
        !self.flag.swap(true, Ordering::Acquire)
    }

    #[inline]
    fn lock_counting(&self) -> u64 {
        let mut spins = 0u64;
        while self.flag.swap(true, Ordering::Acquire) {
            spins += 1;
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        spins
    }
}

/// Chapel-`sync`-variable lock under the Qthreads cost model.
///
/// A `sync bool` starts *full*; acquiring reads it (leaving it *empty*),
/// releasing writes it (making it *full* again). Under Qthreads a task
/// that finds the variable empty is put to sleep, so contended acquires
/// always pay a park/unpark round trip. We reproduce that by parking on a
/// condition variable without any spinning.
pub struct SleepLock {
    /// `true` = full (lock available), `false` = empty (held).
    state: Mutex<bool>,
    cv: Condvar,
}

impl Default for SleepLock {
    fn default() -> Self {
        SleepLock {
            state: Mutex::new(true),
            cv: Condvar::new(),
        }
    }
}

impl RawLock for SleepLock {
    fn lock(&self) {
        let mut full = self.state.lock();
        while !*full {
            // Park unconditionally — the Qthreads sync-variable behaviour
            // the paper identified as the scalability killer.
            self.cv.wait(&mut full);
        }
        *full = false;
    }

    fn unlock(&self) {
        let mut full = self.state.lock();
        *full = true;
        // Wake one sleeper, as writing a sync var wakes one blocked reader.
        self.cv.notify_one();
    }

    fn try_lock(&self) -> bool {
        let mut full = self.state.lock();
        if *full {
            *full = false;
            true
        } else {
            false
        }
    }

    fn lock_counting(&self) -> u64 {
        let mut parks = 0u64;
        let mut full = self.state.lock();
        while !*full {
            parks += 1;
            self.cv.wait(&mut full);
        }
        *full = false;
        parks
    }
}

/// OS-adaptive mutex: spins briefly, then parks.
///
/// Stands in for `sync` variables under Chapel's `fifo` tasking layer,
/// which the paper measured as competitive with the atomic spin lock
/// because that layer implements `sync` with spin-wait-like behaviour.
#[derive(Default)]
pub struct OsLock {
    inner: Mutex<()>,
}

impl RawLock for OsLock {
    #[inline]
    fn lock(&self) {
        // The guard-based mutex has no separate raw-lock handle; leak the
        // guard logically by forgetting it and release via force_unlock.
        std::mem::forget(self.inner.lock());
    }

    #[inline]
    fn unlock(&self) {
        // SAFETY: RawLock's contract requires unlock() only after a
        // matching lock() by the owner, so the mutex is held here.
        unsafe { self.inner.force_unlock() };
    }

    #[inline]
    fn try_lock(&self) -> bool {
        match self.inner.try_lock() {
            Some(guard) => {
                std::mem::forget(guard);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn exercise_mutual_exclusion<L: RawLock + 'static>() {
        const THREADS: usize = 4;
        const ITERS: usize = 5_000;
        let lock = Arc::new(L::default());
        // A read-modify-write done as separate load and store: updates are
        // lost under concurrent access unless the lock provides mutual
        // exclusion, so the final count detects exclusion violations.
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));

        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..ITERS {
                        lock.lock();
                        let v = counter.load(Ordering::Relaxed);
                        std::hint::black_box(v);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.unlock();
                    }
                });
            }
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            THREADS * ITERS,
            "updates were lost: lock failed to provide mutual exclusion"
        );
    }

    #[test]
    fn spin_lock_mutual_exclusion() {
        exercise_mutual_exclusion::<SpinLock>();
    }

    #[test]
    fn sleep_lock_mutual_exclusion() {
        exercise_mutual_exclusion::<SleepLock>();
    }

    #[test]
    fn os_lock_mutual_exclusion() {
        exercise_mutual_exclusion::<OsLock>();
    }

    fn exercise_try_lock<L: RawLock>() {
        let lock = L::default();
        assert!(lock.try_lock());
        assert!(!lock.try_lock(), "second try_lock must fail while held");
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn spin_try_lock_semantics() {
        exercise_try_lock::<SpinLock>();
    }

    #[test]
    fn sleep_try_lock_semantics() {
        exercise_try_lock::<SleepLock>();
    }

    #[test]
    fn os_try_lock_semantics() {
        exercise_try_lock::<OsLock>();
    }

    #[test]
    fn sleep_lock_wakes_parked_waiter() {
        let lock = Arc::new(SleepLock::default());
        lock.lock();
        let l2 = Arc::clone(&lock);
        let waiter = std::thread::spawn(move || {
            l2.lock(); // parks until main unlocks
            l2.unlock();
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        lock.unlock();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn strategy_labels_match_figure4_legend() {
        assert_eq!(LockStrategy::Spin.label(), "Atomic");
        assert_eq!(LockStrategy::Sleep.label(), "Sync");
        assert_eq!(LockStrategy::Os.label(), "FIFO-sync");
        assert_eq!(LockStrategy::ALL.len(), 3);
    }
}
