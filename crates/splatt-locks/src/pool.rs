//! A pool of cache-padded locks hashed by resource id (SPLATT's
//! `mutex_pool`).
//!
//! The MTTKRP's lock-based kernels protect *rows* of the output factor
//! matrix, but a lock per row would be absurd for a 75 000-row mode, so
//! SPLATT hashes row ids into a fixed pool. Each lock is padded to its own
//! cache line — with very short critical sections, false sharing between
//! adjacent pool slots would otherwise dominate.

use crate::raw::{LockStrategy, OsLock, RawLock, SleepLock, SpinLock};
use splatt_probe::LockCounters;
use splatt_rt::sync::CachePadded;
use std::sync::Arc;
use std::time::Instant;

/// Default number of locks in a pool, matching SPLATT's `DEFAULT_NLOCKS`.
pub const DEFAULT_POOL_SIZE: usize = 1024;

enum Slots {
    Spin(Vec<CachePadded<SpinLock>>),
    Sleep(Vec<CachePadded<SleepLock>>),
    Os(Vec<CachePadded<OsLock>>),
}

/// A pool of `nlocks` locks of a runtime-chosen [`LockStrategy`], indexed
/// by an arbitrary resource id (e.g. an output-matrix row).
///
/// ```
/// use splatt_locks::{LockPool, LockStrategy};
///
/// let pool = LockPool::new(LockStrategy::Spin, 64);
/// {
///     let _guard = pool.lock(12345); // guards every id hashing to the slot
///     // ... update row 12345 ...
/// } // released on drop
/// ```
pub struct LockPool {
    slots: Slots,
    /// `nlocks - 1`; pool sizes are rounded up to a power of two so the
    /// hash is a mask instead of a modulo.
    mask: usize,
    /// Optional contention counters; `None` (the default) keeps the
    /// acquire path branch-only.
    counters: Option<Arc<LockCounters>>,
}

fn padded<L: RawLock>(n: usize) -> Vec<CachePadded<L>> {
    (0..n).map(|_| CachePadded::new(L::default())).collect()
}

impl LockPool {
    /// Create a pool of at least `nlocks` locks (rounded up to a power of
    /// two) using `strategy`.
    ///
    /// # Panics
    /// Panics if `nlocks == 0`.
    pub fn new(strategy: LockStrategy, nlocks: usize) -> Self {
        assert!(nlocks > 0, "LockPool requires at least one lock");
        let n = nlocks.next_power_of_two();
        let slots = match strategy {
            LockStrategy::Spin => Slots::Spin(padded(n)),
            LockStrategy::Sleep => Slots::Sleep(padded(n)),
            LockStrategy::Os => Slots::Os(padded(n)),
        };
        LockPool {
            slots,
            mask: n - 1,
            counters: None,
        }
    }

    /// Create a pool of [`DEFAULT_POOL_SIZE`] locks.
    pub fn with_default_size(strategy: LockStrategy) -> Self {
        Self::new(strategy, DEFAULT_POOL_SIZE)
    }

    /// Attach (or detach) contention counters. While attached, every
    /// acquisition through [`LockPool::lock`] / [`LockPool::lock_many`]
    /// records acquisition/contention/spin/wait statistics into `counters`.
    pub fn set_counters(&mut self, counters: Option<Arc<LockCounters>>) {
        self.counters = counters;
    }

    /// The attached contention counters, if any.
    pub fn counters(&self) -> Option<&Arc<LockCounters>> {
        self.counters.as_ref()
    }

    /// Number of locks in the pool.
    pub fn nlocks(&self) -> usize {
        self.mask + 1
    }

    /// The strategy this pool was built with.
    pub fn strategy(&self) -> LockStrategy {
        match self.slots {
            Slots::Spin(_) => LockStrategy::Spin,
            Slots::Sleep(_) => LockStrategy::Sleep,
            Slots::Os(_) => LockStrategy::Os,
        }
    }

    #[inline]
    fn slot(&self, id: usize) -> usize {
        id & self.mask
    }

    /// Acquire the lock guarding resource `id`, returning an RAII guard.
    ///
    /// Distinct ids may hash to the same lock (by design); the guard's
    /// mutual exclusion covers every id in the same hash class.
    #[inline]
    pub fn lock(&self, id: usize) -> LockPoolGuard<'_> {
        let slot = self.slot(id);
        match &self.counters {
            None => self.lock_slot(slot),
            Some(counters) => Self::lock_slot_counting(&self.slots, slot, counters),
        }
        LockPoolGuard { pool: self, slot }
    }

    #[inline]
    fn lock_slot(&self, slot: usize) {
        match &self.slots {
            Slots::Spin(v) => v[slot].lock(),
            Slots::Sleep(v) => v[slot].lock(),
            Slots::Os(v) => v[slot].lock(),
        }
    }

    /// Instrumented acquire: try once, and only on failure start the clock
    /// and fall into the counting slow path.
    #[cold]
    fn lock_slot_counting(slots: &Slots, slot: usize, counters: &LockCounters) {
        fn go<L: RawLock>(lock: &L, counters: &LockCounters) {
            if lock.try_lock() {
                counters.record_uncontended();
                return;
            }
            let start = Instant::now();
            let spins = lock.lock_counting();
            // The failed try_lock above was one acquisition attempt too.
            counters.record_contended(spins + 1, start.elapsed());
        }
        match slots {
            Slots::Spin(v) => go(&*v[slot], counters),
            Slots::Sleep(v) => go(&*v[slot], counters),
            Slots::Os(v) => go(&*v[slot], counters),
        }
    }

    #[inline]
    fn unlock_slot(&self, slot: usize) {
        match &self.slots {
            Slots::Spin(v) => v[slot].unlock(),
            Slots::Sleep(v) => v[slot].unlock(),
            Slots::Os(v) => v[slot].unlock(),
        }
        if let Some(counters) = &self.counters {
            counters.record_release();
        }
    }

    /// The pool slot a resource id hashes to. Two ids with the same slot
    /// share a lock.
    #[inline]
    pub fn slot_of(&self, id: usize) -> usize {
        self.slot(id)
    }

    /// Acquire the locks guarding *all* of `ids` at once, deadlock-free:
    /// slots are sorted and deduplicated before locking, so concurrent
    /// `lock_many` calls can never acquire in conflicting orders. Needed
    /// by updates that touch one row per mode atomically (e.g. an SGD
    /// step on a tensor observation).
    pub fn lock_many(&self, ids: &[usize]) -> Vec<LockPoolGuard<'_>> {
        let mut slots: Vec<usize> = ids.iter().map(|&id| self.slot(id)).collect();
        slots.sort_unstable();
        slots.dedup();
        slots
            .into_iter()
            .map(|slot| {
                match &self.counters {
                    None => self.lock_slot(slot),
                    Some(counters) => Self::lock_slot_counting(&self.slots, slot, counters),
                }
                LockPoolGuard { pool: self, slot }
            })
            .collect()
    }
}

/// RAII guard returned by [`LockPool::lock`]; releases on drop.
pub struct LockPoolGuard<'a> {
    pool: &'a LockPool,
    slot: usize,
}

impl Drop for LockPoolGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.pool.unlock_slot(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn size_rounds_to_power_of_two() {
        let p = LockPool::new(LockStrategy::Spin, 1000);
        assert_eq!(p.nlocks(), 1024);
        let p = LockPool::new(LockStrategy::Spin, 1);
        assert_eq!(p.nlocks(), 1);
    }

    #[test]
    fn strategy_is_preserved() {
        for s in LockStrategy::ALL {
            assert_eq!(LockPool::new(s, 8).strategy(), s);
        }
    }

    #[test]
    fn same_id_same_slot_excludes() {
        let pool = LockPool::new(LockStrategy::Spin, 4);
        let g = pool.lock(7);
        // id 7 and id 3 share slot 3 in a 4-lock pool
        // try a concurrent locker of the aliasing id; it must not finish
        // until we drop the guard.
        let pool2 = &pool;
        let acquired = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|sc| {
            sc.spawn(|| {
                let _g2 = pool2.lock(3);
                acquired.store(true, std::sync::atomic::Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!acquired.load(std::sync::atomic::Ordering::SeqCst));
            drop(g);
        });
        assert!(acquired.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn different_slots_do_not_block() {
        let pool = LockPool::new(LockStrategy::Os, 8);
        let _g0 = pool.lock(0);
        let _g1 = pool.lock(1); // different slot: must not deadlock
    }

    fn stress(strategy: LockStrategy) {
        const THREADS: usize = 4;
        const ROWS: usize = 64;
        const ITERS: usize = 2_000;
        let pool = Arc::new(LockPool::new(strategy, 16));

        struct Share(Vec<std::cell::UnsafeCell<usize>>);
        // SAFETY: every cell is only mutated under the lock-pool slot that
        // guards its row, which is exactly what this test verifies.
        unsafe impl Send for Share {}
        unsafe impl Sync for Share {}
        let share = Arc::new(Share(
            (0..ROWS).map(|_| std::cell::UnsafeCell::new(0)).collect(),
        ));

        std::thread::scope(|s| {
            for t in 0..THREADS {
                let pool = Arc::clone(&pool);
                let share = Arc::clone(&share);
                s.spawn(move || {
                    for i in 0..ITERS {
                        let row = (i * 31 + t * 7) % ROWS;
                        let _g = pool.lock(row);
                        unsafe {
                            *share.0[row].get() += 1;
                        }
                    }
                });
            }
        });
        let total: usize = share.0.iter().map(|c| unsafe { *c.get() }).sum();
        assert_eq!(total, THREADS * ITERS);
    }

    #[test]
    fn pool_stress_spin() {
        stress(LockStrategy::Spin);
    }

    #[test]
    fn pool_stress_sleep() {
        stress(LockStrategy::Sleep);
    }

    #[test]
    fn pool_stress_os() {
        stress(LockStrategy::Os);
    }

    #[test]
    #[should_panic(expected = "at least one lock")]
    fn zero_locks_panics() {
        let _ = LockPool::new(LockStrategy::Spin, 0);
    }

    #[test]
    fn counters_track_acquisitions_and_releases() {
        for strategy in LockStrategy::ALL {
            let mut pool = LockPool::new(strategy, 4);
            let counters = Arc::new(splatt_probe::LockCounters::new());
            pool.set_counters(Some(Arc::clone(&counters)));
            assert!(pool.counters().is_some());
            for id in 0..10 {
                drop(pool.lock(id));
            }
            drop(pool.lock_many(&[1, 5, 2])); // slots {1, 2} after dedup
            let stats = counters.snapshot();
            assert_eq!(stats.acquisitions, 12, "{strategy:?}");
            assert_eq!(stats.releases, 12, "{strategy:?}");
            assert!(stats.is_balanced());
            // single-threaded: nothing was ever contended
            assert_eq!(stats.contended, 0, "{strategy:?}");
            assert_eq!(stats.wait_nanos, 0, "{strategy:?}");
        }
    }

    #[test]
    fn counters_observe_contention() {
        // Deterministic contention (robust on single-core hosts): hold the
        // only slot while a second thread tries to acquire it.
        for strategy in LockStrategy::ALL {
            let mut pool = LockPool::new(strategy, 1);
            let counters = Arc::new(splatt_probe::LockCounters::new());
            pool.set_counters(Some(Arc::clone(&counters)));
            let guard = pool.lock(0);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _g = pool.lock(0); // blocks until main drops `guard`
                });
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop(guard);
            });
            let stats = counters.snapshot();
            assert_eq!(stats.acquisitions, 2, "{strategy:?}");
            assert!(stats.is_balanced(), "{strategy:?}");
            assert_eq!(stats.contended, 1, "{strategy:?}");
            assert!(stats.spin_iters >= 1, "{strategy:?}");
            // waited roughly the sleep above; allow wide slack
            assert!(
                stats.wait_nanos > 1_000_000,
                "{strategy:?}: {}",
                stats.wait_nanos
            );
        }
    }

    #[test]
    fn lock_many_dedups_aliasing_ids() {
        let pool = LockPool::new(LockStrategy::Spin, 4);
        // ids 1 and 5 share slot 1 in a 4-lock pool: must not self-deadlock
        let guards = pool.lock_many(&[1, 5, 2]);
        assert_eq!(guards.len(), 2);
    }

    #[test]
    fn lock_many_no_deadlock_under_contention() {
        // two threads repeatedly locking overlapping id sets in opposite
        // orders: sorted-slot acquisition must never deadlock
        let pool = Arc::new(LockPool::new(LockStrategy::Spin, 8));
        let p1 = Arc::clone(&pool);
        let p2 = Arc::clone(&pool);
        let t1 = std::thread::spawn(move || {
            for _ in 0..2_000 {
                let _g = p1.lock_many(&[0, 3, 6]);
            }
        });
        let t2 = std::thread::spawn(move || {
            for _ in 0..2_000 {
                let _g = p2.lock_many(&[6, 0, 3]);
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
    }

    #[test]
    fn lock_many_excludes_single_lockers() {
        let pool = LockPool::new(LockStrategy::Spin, 8);
        let guards = pool.lock_many(&[2, 4]);
        assert!(pool.slot_of(2) != pool.slot_of(4));
        // a single lock on an aliasing id must block -> try via thread
        let blocked = std::sync::atomic::AtomicBool::new(true);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = pool.lock(2);
                blocked.store(false, std::sync::atomic::Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(blocked.load(std::sync::atomic::Ordering::SeqCst));
            drop(guards);
        });
        assert!(!blocked.load(std::sync::atomic::Ordering::SeqCst));
    }
}
