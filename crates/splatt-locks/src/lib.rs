//! Mutex-pool substrate for the splatt-rs workspace.
//!
//! SPLATT's lock-based MTTKRP kernels protect output-matrix rows with a
//! pool of mutexes hashed by row index. The Chapel port's biggest
//! scalability bug (paper Section V-D.2, Figure 4) was the *kind* of lock
//! in that pool:
//!
//! * Chapel `sync` variables under Qthreads put the waiting task to sleep —
//!   catastrophic for the MTTKRP's very short critical sections. Our
//!   [`SleepLock`] reproduces that cost model (park immediately).
//! * The fix was `atomic bool` + `testAndSet()` + task-yield spinning
//!   (paper Listing 6) — our [`SpinLock`] is a direct translation.
//! * Chapel's `fifo` tasking layer implements `sync` with spin-ish OS
//!   mutexes, which the paper found competitive — our [`OsLock`]
//!   (`parking_lot::Mutex`: adaptive spin, then park) plays that role.
//!
//! All three implement [`RawLock`] and plug into [`LockPool`], which is
//! cache-line padded and hashed exactly like SPLATT's `mutex_pool`.

mod pool;
mod raw;

pub use pool::{LockPool, LockPoolGuard, DEFAULT_POOL_SIZE};
pub use raw::{LockStrategy, OsLock, RawLock, SleepLock, SpinLock};
