//! Hierarchical cooperative cancellation.
//!
//! A [`CancelToken`] is a clonable handle on one shared flag. Children
//! created through [`CancelToken::child`] are cancelled when any
//! ancestor is cancelled, but cancelling a child leaves its parent
//! untouched — a governed sub-phase (one CSF build, one distributed
//! collective) can be abandoned without killing the whole run.
//!
//! The hot path is [`CancelToken::is_cancelled`]: a single relaxed
//! atomic load, cheap enough to sit inside kernel inner loops.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use splatt_rt::sync::Mutex;

struct Inner {
    flag: AtomicBool,
    children: Mutex<Vec<Weak<Inner>>>,
}

impl Inner {
    fn cancel(&self) {
        // Already-cancelled tokens have already propagated; stopping
        // here keeps deep trees O(affected) instead of O(tree).
        if self.flag.swap(true, Ordering::SeqCst) {
            return;
        }
        let children = std::mem::take(&mut *self.children.lock());
        for child in children {
            if let Some(c) = child.upgrade() {
                c.cancel();
            }
        }
    }
}

/// A clonable cancellation handle; see the module docs.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled root token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                children: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A child token: cancelled when `self` is cancelled, but
    /// cancellable on its own without affecting `self`.
    ///
    /// Dead children are pruned amortized, so a long-lived parent that
    /// spawns one child per request (a serve connection, a governed
    /// loop) tracks O(live children), not O(children ever created).
    pub fn child(&self) -> CancelToken {
        let child = CancelToken::new();
        if self.is_cancelled() {
            child.cancel();
        } else {
            let mut children = self.inner.children.lock();
            // Sweep dropped Weaks before the Vec would grow: each sweep
            // is O(len) but runs at most once per len pushes, keeping
            // the list within 2x the live count.
            if children.len() == children.capacity() {
                children.retain(|w| w.strong_count() > 0);
            }
            children.push(Arc::downgrade(&child.inner));
        }
        child
    }

    /// Children currently tracked for cancel propagation (live plus any
    /// dropped-but-unswept); exposed for leak diagnostics.
    pub fn tracked_children(&self) -> usize {
        self.inner.children.lock().len()
    }

    /// Request cancellation of this token and every descendant.
    pub fn cancel(&self) {
        self.inner.cancel();
    }

    /// One relaxed load — the kernel-loop fast path.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_propagates_to_descendants() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        assert!(!grandchild.is_cancelled());
        root.cancel();
        assert!(root.is_cancelled());
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
    }

    #[test]
    fn cancelling_a_child_spares_the_parent() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!root.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn child_of_cancelled_token_is_born_cancelled() {
        let root = CancelToken::new();
        root.cancel();
        assert!(root.child().is_cancelled());
    }

    #[test]
    fn dead_children_are_pruned_not_accumulated() {
        let root = CancelToken::new();
        for _ in 0..10_000 {
            let _short_lived = root.child();
        }
        assert!(
            root.tracked_children() <= 64,
            "tracked {} children after 10k short-lived requests",
            root.tracked_children()
        );
        // Live children must survive the sweeps and still cancel.
        let keep: Vec<CancelToken> = (0..100).map(|_| root.child()).collect();
        for _ in 0..10_000 {
            let _short_lived = root.child();
        }
        root.cancel();
        assert!(keep.iter().all(CancelToken::is_cancelled));
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }
}
