//! Per-lane heartbeats and the stall watchdog.
//!
//! Every governed task owns a *lane* in a shared [`Heartbeats`] table:
//! the driver holds lane 0 for the whole iteration loop, kernel workers
//! take their task id. Tasks mark the lane busy with
//! [`Heartbeats::enter`] / [`Heartbeats::leave`] (a nesting counter, so
//! a kernel body running on the driver thread composes with the
//! driver's own span) and [`Heartbeats::beat`] at each unit of
//! progress — an iteration boundary, a mode, a tile, a chunk of slices.
//!
//! The [`Watchdog`] is a sampling thread: every `sample_interval` it
//! scans the lanes and reports any that are busy but have not beaten
//! for longer than `stall_bound`. One stalled episode produces one
//! [`StallReport`] — the lane's beat *count* is recorded with the
//! report, so the same unmoving lane is not re-reported every sample,
//! but a later, distinct stall of the same lane is. Reports accumulate
//! in a shared [`WatchdogLedger`]; with `trip_cancel` set the first
//! report also cancels the run's token, turning a silent hang into a
//! typed abort.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use splatt_rt::sync::{CachePadded, Mutex};

use crate::cancel::CancelToken;

struct Lane {
    /// Nanoseconds since the table's epoch at the last beat.
    last_beat_nanos: AtomicU64,
    /// Total beats — doubles as the stall-episode key.
    beats: AtomicU64,
    /// Nesting busy count; the lane is watched while it is positive.
    busy: AtomicU64,
}

/// One heartbeat lane per governed task.
pub struct Heartbeats {
    epoch: Instant,
    lanes: Vec<CachePadded<Lane>>,
}

impl Heartbeats {
    /// Nanoseconds of silence on `lane` as of `now` (from
    /// [`Heartbeats::now_nanos`]); 0 for out-of-range lanes.
    fn silent_nanos(&self, lane: usize, now: u64) -> u64 {
        self.lanes.get(lane).map_or(0, |l| {
            now.saturating_sub(l.last_beat_nanos.load(Ordering::Relaxed))
        })
    }
}

impl Heartbeats {
    /// A table with `lanes` lanes, all idle.
    pub fn new(lanes: usize) -> Self {
        let epoch = Instant::now();
        Heartbeats {
            epoch,
            lanes: (0..lanes.max(1))
                .map(|_| {
                    CachePadded::new(Lane {
                        last_beat_nanos: AtomicU64::new(0),
                        beats: AtomicU64::new(0),
                        busy: AtomicU64::new(0),
                    })
                })
                .collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record progress on `lane`. Out-of-range lanes are ignored so
    /// callers sized for fewer tasks than a kernel spawns stay safe.
    #[inline]
    pub fn beat(&self, lane: usize) {
        if let Some(l) = self.lanes.get(lane) {
            l.last_beat_nanos.store(self.now_nanos(), Ordering::Relaxed);
            l.beats.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Mark `lane` busy (nests) and beat it.
    pub fn enter(&self, lane: usize) {
        if let Some(l) = self.lanes.get(lane) {
            l.busy.fetch_add(1, Ordering::Relaxed);
            l.last_beat_nanos.store(self.now_nanos(), Ordering::Relaxed);
            l.beats.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Beat `lane` and drop one level of busy nesting.
    pub fn leave(&self, lane: usize) {
        if let Some(l) = self.lanes.get(lane) {
            l.last_beat_nanos.store(self.now_nanos(), Ordering::Relaxed);
            l.beats.fetch_add(1, Ordering::Relaxed);
            let prev = l.busy.fetch_sub(1, Ordering::Relaxed);
            debug_assert!(prev > 0, "leave({lane}) without a matching enter");
        }
    }

    /// Whether `lane` is inside at least one busy span.
    pub fn is_busy(&self, lane: usize) -> bool {
        self.lanes
            .get(lane)
            .is_some_and(|l| l.busy.load(Ordering::Relaxed) > 0)
    }

    /// Total beats recorded on `lane`.
    pub fn beats(&self, lane: usize) -> u64 {
        self.lanes
            .get(lane)
            .map_or(0, |l| l.beats.load(Ordering::Relaxed))
    }
}

/// Watchdog tuning.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// A busy lane silent for longer than this is stalled.
    pub stall_bound: Duration,
    /// How often the lanes are scanned.
    pub sample_interval: Duration,
    /// Cancel the run's token on the first stall report.
    pub trip_cancel: bool,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_bound: Duration::from_secs(30),
            sample_interval: Duration::from_millis(100),
            trip_cancel: false,
        }
    }
}

/// One detected stall episode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// The stalled lane.
    pub lane: usize,
    /// How long the lane had been silent when the report fired.
    pub stalled_for: Duration,
    /// The lane's beat count at report time (the episode key).
    pub beats: u64,
}

/// Shared record of what the watchdog saw; lives as long as the guard
/// so reports survive the watchdog thread.
#[derive(Default)]
pub struct WatchdogLedger {
    reports: Mutex<Vec<StallReport>>,
    samples: AtomicU64,
    tripping_report: Mutex<Option<StallReport>>,
}

impl WatchdogLedger {
    /// All stall reports so far.
    pub fn reports(&self) -> Vec<StallReport> {
        self.reports.lock().clone()
    }

    /// Number of stall reports so far.
    pub fn report_count(&self) -> u64 {
        self.reports.lock().len() as u64
    }

    /// Number of sampling passes completed.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// The report that tripped the cancel token, if any.
    pub fn tripping_report(&self) -> Option<StallReport> {
        self.tripping_report.lock().clone()
    }
}

/// The sampling thread; stops and joins on [`Watchdog::stop`] or drop.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Start watching `heartbeats` under `cfg`, appending reports to
    /// `ledger` and (with `trip_cancel`) cancelling `token` on the
    /// first stall.
    pub fn spawn(
        heartbeats: Arc<Heartbeats>,
        cfg: WatchdogConfig,
        token: Option<CancelToken>,
        ledger: Arc<WatchdogLedger>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("splatt-watchdog".into())
            .spawn(move || {
                // Last-reported episode key per lane: report a stall
                // once, but report a *new* stall of the same lane.
                let mut reported_at: Vec<Option<u64>> = vec![None; heartbeats.lanes()];
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(cfg.sample_interval);
                    let now = heartbeats.now_nanos();
                    for (lane, reported) in reported_at.iter_mut().enumerate() {
                        if !heartbeats.is_busy(lane) {
                            *reported = None;
                            continue;
                        }
                        let silent = heartbeats.silent_nanos(lane, now);
                        if silent < cfg.stall_bound.as_nanos() as u64 {
                            continue;
                        }
                        let beats = heartbeats.beats(lane);
                        if *reported == Some(beats) {
                            continue;
                        }
                        *reported = Some(beats);
                        let report = StallReport {
                            lane,
                            stalled_for: Duration::from_nanos(silent),
                            beats,
                        };
                        ledger.reports.lock().push(report.clone());
                        if cfg.trip_cancel {
                            let mut tripping = ledger.tripping_report.lock();
                            if tripping.is_none() {
                                *tripping = Some(report);
                                drop(tripping);
                                if let Some(t) = &token {
                                    t.cancel();
                                }
                            }
                        }
                    }
                    ledger.samples.fetch_add(1, Ordering::Relaxed);
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop sampling and join the thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg(trip_cancel: bool) -> WatchdogConfig {
        WatchdogConfig {
            stall_bound: Duration::from_millis(5),
            sample_interval: Duration::from_millis(1),
            trip_cancel,
        }
    }

    #[test]
    fn stall_is_caught_while_it_is_still_in_progress() {
        let hb = Arc::new(Heartbeats::new(2));
        let ledger = Arc::new(WatchdogLedger::default());
        let mut dog = Watchdog::spawn(Arc::clone(&hb), fast_cfg(false), None, Arc::clone(&ledger));

        hb.enter(1);
        // Stall lane 1 well past the 5 ms bound.
        std::thread::sleep(Duration::from_millis(60));
        let caught_during = ledger.report_count();
        hb.leave(1);
        dog.stop();

        assert!(
            caught_during >= 1,
            "stall not reported while it was ongoing"
        );
        let reports = ledger.reports();
        assert_eq!(reports[0].lane, 1);
        assert!(reports[0].stalled_for >= Duration::from_millis(5));
        // Detection happened *within* the stall: the reported silence
        // is shorter than the stall itself.
        assert!(reports[0].stalled_for <= Duration::from_millis(60));
    }

    #[test]
    fn idle_lanes_are_never_reported() {
        let hb = Arc::new(Heartbeats::new(2));
        let ledger = Arc::new(WatchdogLedger::default());
        let mut dog = Watchdog::spawn(Arc::clone(&hb), fast_cfg(false), None, Arc::clone(&ledger));
        // Nobody enters; lanes stay idle however stale their beats are.
        std::thread::sleep(Duration::from_millis(30));
        dog.stop();
        assert_eq!(ledger.report_count(), 0);
        assert!(ledger.samples() > 0, "watchdog never sampled");
    }

    #[test]
    fn one_episode_yields_one_report_but_new_episodes_are_reported() {
        let hb = Arc::new(Heartbeats::new(1));
        let ledger = Arc::new(WatchdogLedger::default());
        let mut dog = Watchdog::spawn(Arc::clone(&hb), fast_cfg(false), None, Arc::clone(&ledger));

        hb.enter(0);
        std::thread::sleep(Duration::from_millis(30));
        let first = ledger.report_count();
        assert_eq!(first, 1, "episode must be reported exactly once");

        // Progress ends the episode; a second silence is a new one.
        hb.beat(0);
        std::thread::sleep(Duration::from_millis(30));
        hb.leave(0);
        dog.stop();
        assert_eq!(ledger.report_count(), 2);
    }

    #[test]
    fn trip_cancel_cancels_the_token_once() {
        let hb = Arc::new(Heartbeats::new(1));
        let ledger = Arc::new(WatchdogLedger::default());
        let token = CancelToken::new();
        let mut dog = Watchdog::spawn(
            Arc::clone(&hb),
            fast_cfg(true),
            Some(token.clone()),
            Arc::clone(&ledger),
        );
        hb.enter(0);
        std::thread::sleep(Duration::from_millis(30));
        hb.leave(0);
        dog.stop();
        assert!(token.is_cancelled());
        let tripping = ledger.tripping_report().expect("a report tripped");
        assert_eq!(tripping.lane, 0);
    }

    #[test]
    fn busy_nesting_keeps_the_lane_watched() {
        let hb = Heartbeats::new(1);
        hb.enter(0);
        hb.enter(0);
        hb.leave(0);
        assert!(hb.is_busy(0));
        hb.leave(0);
        assert!(!hb.is_busy(0));
    }

    #[test]
    fn out_of_range_lanes_are_ignored() {
        let hb = Heartbeats::new(1);
        hb.beat(7);
        hb.enter(7);
        hb.leave(7);
        assert!(!hb.is_busy(7));
        assert_eq!(hb.beats(7), 0);
    }
}
