//! Run governance for long CP-ALS runs: the layer that decides when a
//! run is no longer worth continuing and turns that decision into a
//! typed, resumable abort instead of a hang or an OOM kill.
//!
//! Four primitives compose into one handle:
//!
//! - [`CancelToken`] — hierarchical cooperative cancellation, one
//!   relaxed atomic load per check on the hot path.
//! - [`Deadline`] — a wall-clock budget with [`Deadline::clamp`] so
//!   recovery sleeps and retry backoffs can never sleep past the run.
//! - [`MemoryBudget`] — a cap on *allocation traffic* (row copies,
//!   descriptor allocations, privatized replicas) measured through
//!   `splatt-probe`'s process-global counters. The counters are
//!   monotonic, so this bounds cumulative traffic since the budget was
//!   armed, not live heap occupancy.
//! - [`Watchdog`] — a sampling thread over per-lane [`Heartbeats`] that
//!   reports tasks which stay busy without beating for longer than a
//!   stall bound, and can optionally trip the cancel token.
//!
//! Two more primitives serve the request path rather than batch runs:
//! [`AdmissionGate`] caps a server's in-flight depth and sheds the
//! excess with a typed [`Overloaded`] rejection, and [`RetryPolicy`]
//! is the shared retry budget — capped exponential backoff with every
//! sleep clamped to the request's [`Deadline`] — used by the serving
//! client and the cluster router alike.
//!
//! [`RunGuard`] bundles the first four behind two entry points: a cheap,
//! infallible [`RunGuard::poll`] for kernel workers (beat + one load)
//! and a full [`RunGuard::check`] for the driver, which evaluates the
//! deadline and budget and converts the first violation into a sticky
//! [`TripReason`].

mod admission;
mod budget;
mod cancel;
mod deadline;
mod guard;
mod retry;
mod watchdog;

pub use admission::{AdmissionGate, AdmissionPermit, Overloaded, OwnedAdmissionPermit};
pub use budget::MemoryBudget;
pub use cancel::CancelToken;
pub use deadline::Deadline;
pub use guard::{GuardConfig, GuardSnapshot, LaneSpan, RunGuard, TripReason};
pub use retry::RetryPolicy;
pub use watchdog::{Heartbeats, StallReport, Watchdog, WatchdogConfig, WatchdogLedger};

/// Process-global alloc counters are shared by tests in this crate;
/// tests that record or baseline traffic hold this to avoid seeing
/// each other's bytes.
#[cfg(test)]
pub(crate) static ALLOC_TEST_SERIAL: splatt_rt::sync::Mutex<()> = splatt_rt::sync::Mutex::new(());
