//! Queue-depth admission control for request-serving layers.
//!
//! A server that accepts every request melts down under overload: queues
//! grow without bound, every request misses its deadline, and goodput
//! collapses. An [`AdmissionGate`] caps the number of in-flight requests
//! and *sheds* the excess immediately with a typed [`Overloaded`]
//! rejection, so clients get a fast, retryable "no" instead of a slow
//! timeout — the serving-layer counterpart of the run-governance
//! principle that a bounded refusal beats an unbounded hang.
//!
//! The gate is a single atomic depth counter: admission is one CAS loop,
//! release (permit drop) one decrement. Shed and admit totals are kept
//! for observability.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Rejection returned when the gate is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Queue depth observed at rejection time.
    pub depth: usize,
    /// The gate's configured capacity.
    pub max_depth: usize,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "overloaded: {} requests in flight (limit {})",
            self.depth, self.max_depth
        )
    }
}

impl std::error::Error for Overloaded {}

/// A bounded-depth admission gate; see the module docs.
#[derive(Debug)]
pub struct AdmissionGate {
    max_depth: usize,
    depth: AtomicUsize,
    admitted: AtomicU64,
    sheds: AtomicU64,
}

impl AdmissionGate {
    /// A gate admitting at most `max_depth` concurrent permits.
    /// `max_depth == 0` sheds everything — useful for drain/test modes.
    pub fn new(max_depth: usize) -> Self {
        AdmissionGate {
            max_depth,
            depth: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
        }
    }

    /// Try to enter the gate. On success the returned permit holds one
    /// unit of depth until dropped; at capacity the request is shed.
    pub fn try_admit(&self) -> Result<AdmissionPermit<'_>, Overloaded> {
        let mut current = self.depth.load(Ordering::Relaxed);
        loop {
            if current >= self.max_depth {
                self.sheds.fetch_add(1, Ordering::Relaxed);
                return Err(Overloaded {
                    depth: current,
                    max_depth: self.max_depth,
                });
            }
            match self.depth.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(AdmissionPermit { gate: self });
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Configured capacity.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Permits currently outstanding.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Total requests admitted since construction.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Total requests shed since construction.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }
}

/// One unit of admitted depth; releases its slot on drop.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.depth.fetch_sub(1, Ordering::AcqRel);
    }
}

impl AdmissionGate {
    /// Like [`AdmissionGate::try_admit`], but the permit owns an `Arc`
    /// of the gate instead of borrowing it — for permits stored in
    /// long-lived structures (a reactor's per-connection state, a
    /// worker-pool job) that outlive any one stack frame.
    pub fn try_admit_owned(self: &Arc<Self>) -> Result<OwnedAdmissionPermit, Overloaded> {
        // Admit through the borrowed path, then forget the borrow and
        // hand ownership to the Arc-holding permit: exactly one
        // decrement happens, on OwnedAdmissionPermit::drop.
        let permit = self.try_admit()?;
        std::mem::forget(permit);
        Ok(OwnedAdmissionPermit {
            gate: Arc::clone(self),
        })
    }
}

/// One unit of admitted depth holding the gate alive; releases on drop.
/// See [`AdmissionGate::try_admit_owned`].
#[derive(Debug)]
pub struct OwnedAdmissionPermit {
    gate: Arc<AdmissionGate>,
}

impl OwnedAdmissionPermit {
    /// The gate this permit was admitted through.
    pub fn gate(&self) -> &Arc<AdmissionGate> {
        &self.gate
    }
}

impl Drop for OwnedAdmissionPermit {
    fn drop(&mut self) {
        self.gate.depth.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_admit().unwrap();
        let b = gate.try_admit().unwrap();
        assert_eq!(gate.depth(), 2);
        let err = gate.try_admit().unwrap_err();
        assert_eq!(
            err,
            Overloaded {
                depth: 2,
                max_depth: 2
            }
        );
        assert!(err.to_string().contains("limit 2"));
        drop(a);
        assert_eq!(gate.depth(), 1);
        let c = gate.try_admit().unwrap();
        drop(b);
        drop(c);
        assert_eq!(gate.depth(), 0);
        assert_eq!(gate.admitted(), 3);
        assert_eq!(gate.sheds(), 1);
    }

    #[test]
    fn owned_permits_share_depth_with_borrowed_ones() {
        let gate = Arc::new(AdmissionGate::new(2));
        let owned = gate.try_admit_owned().unwrap();
        let _borrowed = gate.try_admit().unwrap();
        assert_eq!(gate.depth(), 2);
        assert!(gate.try_admit_owned().is_err());
        assert!(Arc::ptr_eq(owned.gate(), &gate));
        drop(owned);
        assert_eq!(gate.depth(), 1);
        assert_eq!(gate.admitted(), 2);
        assert_eq!(gate.sheds(), 1);
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let gate = AdmissionGate::new(0);
        assert!(gate.try_admit().is_err());
        assert_eq!(gate.admitted(), 0);
        assert_eq!(gate.sheds(), 1);
    }

    #[test]
    fn concurrent_admission_never_exceeds_capacity() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let gate = Arc::new(AdmissionGate::new(4));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        if let Ok(_permit) = gate.try_admit() {
                            peak.fetch_max(gate.depth(), Ordering::Relaxed);
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(gate.depth(), 0);
        assert!(peak.load(Ordering::Relaxed) <= 4);
        assert_eq!(gate.admitted() + gate.sheds(), 16_000);
    }
}
