//! Retry budgets: capped exponential backoff under a [`Deadline`].
//!
//! One policy object is shared by every retrying caller in the stack —
//! the serving [`Client`]'s `call_with_retry` and the cluster router's
//! replica failover loop — so "how hard do we try" is configured in
//! exactly one place. The policy is deterministic (no jitter): given the
//! same failures it produces the same sleep schedule, which is what lets
//! the fault-injection tests assert exact retry accounting.
//!
//! [`Client`]: https://docs.rs/splatt-serve

use crate::Deadline;
use std::time::Duration;

/// A bounded retry budget: at most `max_attempts` tries, sleeping
/// `base * 2^n` (capped at `cap`) between consecutive tries, with every
/// sleep clamped to the request deadline's remaining budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries (first attempt included); 1 = no retries.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// The backoff scheduled before retry number `retry` (0-based):
    /// `base * 2^retry`, saturating, capped at `cap`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base
            .checked_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .unwrap_or(self.cap);
        exp.min(self.cap)
    }

    /// Whether a retry numbered `retry` (0-based; retry 0 is the second
    /// attempt) is still within the attempt budget.
    pub fn allows(&self, retry: u32) -> bool {
        retry + 1 < self.max_attempts
    }

    /// Sleep the backoff for retry `retry`, clamped so the caller can
    /// never sleep past `deadline`. Returns `false` — without sleeping —
    /// when the attempt budget or the deadline is already exhausted, i.e.
    /// the caller should stop retrying.
    pub fn sleep_before_retry(&self, retry: u32, deadline: &Deadline) -> bool {
        if !self.allows(retry) || deadline.expired() {
            return false;
        }
        let nap = deadline.clamp(self.backoff(retry));
        if !nap.is_zero() {
            std::thread::sleep(nap);
        }
        !deadline.expired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(35),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(35));
        assert_eq!(p.backoff(31), Duration::from_millis(35));
        assert_eq!(p.backoff(200), Duration::from_millis(35));
    }

    #[test]
    fn attempt_budget_is_respected() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        };
        assert!(p.allows(0));
        assert!(p.allows(1));
        assert!(!p.allows(2));
        assert!(!RetryPolicy::none().allows(0));
    }

    #[test]
    fn sleeps_never_cross_the_deadline() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_secs(30),
            cap: Duration::from_secs(30),
        };
        let d = Deadline::after(Duration::from_millis(30));
        let start = std::time::Instant::now();
        // The 30 s backoff is clamped to the ~30 ms budget.
        let _ = p.sleep_before_retry(0, &d);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(!p.sleep_before_retry(1, &d), "deadline now spent");
    }

    #[test]
    fn expired_deadline_stops_retrying_without_sleeping() {
        let p = RetryPolicy::default();
        let d = Deadline::after(Duration::ZERO);
        let start = std::time::Instant::now();
        assert!(!p.sleep_before_retry(0, &d));
        assert!(start.elapsed() < Duration::from_millis(100));
    }
}
