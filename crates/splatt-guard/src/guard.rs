//! The [`RunGuard`]: one clonable handle bundling cancellation,
//! deadline, memory budget, and watchdog for a governed run.
//!
//! Two entry points with very different costs:
//!
//! - [`RunGuard::poll`] — the kernel-worker fast path: one heartbeat
//!   store and one relaxed token load. Infallible; a `true` return
//!   means "stop doing work and let the driver notice".
//! - [`RunGuard::check`] — the driver path at iteration/mode/phase
//!   boundaries: evaluates deadline, budget, and token, and converts
//!   the first violation into a sticky [`TripReason`]. Every later
//!   check returns the same reason, so abort attribution is stable
//!   even when a deadline expires while the token is already tripped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use splatt_rt::sync::Mutex;

use crate::budget::MemoryBudget;
use crate::cancel::CancelToken;
use crate::deadline::Deadline;
use crate::watchdog::{Heartbeats, StallReport, Watchdog, WatchdogConfig, WatchdogLedger};

/// Why a governed run was stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum TripReason {
    /// The cancel token was tripped externally.
    Cancelled,
    /// The wall-clock budget ran out.
    DeadlineExceeded {
        /// Time the run had consumed when the trip was detected.
        elapsed: Duration,
        /// The configured budget.
        limit: Duration,
    },
    /// Allocation traffic crossed the budget.
    MemoryExceeded {
        /// Bytes of traffic when the trip was detected.
        used_bytes: u64,
        /// The configured cap.
        limit_bytes: u64,
    },
    /// The watchdog tripped the token over a stalled lane.
    Stalled {
        /// The lane that went silent.
        lane: usize,
        /// How long it had been silent at report time.
        stalled_for: Duration,
    },
}

impl TripReason {
    /// Short machine-readable tag (probe rows, CLI output).
    pub fn label(&self) -> &'static str {
        match self {
            TripReason::Cancelled => "cancelled",
            TripReason::DeadlineExceeded { .. } => "deadline",
            TripReason::MemoryExceeded { .. } => "mem-budget",
            TripReason::Stalled { .. } => "stalled",
        }
    }
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripReason::Cancelled => write!(f, "cancelled"),
            TripReason::DeadlineExceeded { elapsed, limit } => write!(
                f,
                "deadline exceeded ({:.3}s elapsed of {:.3}s budget)",
                elapsed.as_secs_f64(),
                limit.as_secs_f64()
            ),
            TripReason::MemoryExceeded {
                used_bytes,
                limit_bytes,
            } => write!(
                f,
                "memory budget exceeded ({used_bytes} bytes of {limit_bytes} allowed)"
            ),
            TripReason::Stalled { lane, stalled_for } => write!(
                f,
                "watchdog: lane {lane} stalled for {:.3}s",
                stalled_for.as_secs_f64()
            ),
        }
    }
}

/// How a [`RunGuard`] is armed.
#[derive(Debug, Clone, Default)]
pub struct GuardConfig {
    /// Wall-clock budget for the run.
    pub deadline: Option<Duration>,
    /// Allocation-traffic cap in bytes.
    pub mem_budget: Option<u64>,
    /// Arm the stall watchdog.
    pub watchdog: Option<WatchdogConfig>,
    /// Heartbeat lanes (>= the task count; lane 0 is the driver's).
    pub lanes: usize,
}

/// Counters and watchdog activity at one instant, for probe reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GuardSnapshot {
    /// Full driver checks performed.
    pub checks: u64,
    /// Checks that returned a trip.
    pub trips: u64,
    /// Stall reports filed by the watchdog.
    pub watchdog_reports: u64,
    /// Sampling passes the watchdog completed.
    pub watchdog_samples: u64,
    /// The sticky trip reason, if the run tripped.
    pub trip: Option<TripReason>,
}

struct GuardInner {
    token: CancelToken,
    deadline: Option<Deadline>,
    budget: Option<MemoryBudget>,
    heartbeats: Arc<Heartbeats>,
    ledger: Arc<WatchdogLedger>,
    watchdog: Mutex<Option<Watchdog>>,
    checks: AtomicU64,
    trips: AtomicU64,
    trip: Mutex<Option<TripReason>>,
}

/// The governed-run handle; see the module docs. Cloning is cheap and
/// every clone shares the same state.
#[derive(Clone)]
pub struct RunGuard {
    inner: Arc<GuardInner>,
}

impl RunGuard {
    /// Arm a guard per `cfg`. The watchdog thread (if configured)
    /// starts immediately and holds a child-independent clone of the
    /// token so a watchdog trip cancels the whole run.
    pub fn new(cfg: GuardConfig) -> Self {
        let token = CancelToken::new();
        let heartbeats = Arc::new(Heartbeats::new(cfg.lanes.max(1)));
        let ledger = Arc::new(WatchdogLedger::default());
        let watchdog = cfg.watchdog.map(|wcfg| {
            Watchdog::spawn(
                Arc::clone(&heartbeats),
                wcfg,
                Some(token.clone()),
                Arc::clone(&ledger),
            )
        });
        RunGuard {
            inner: Arc::new(GuardInner {
                token,
                deadline: cfg.deadline.map(Deadline::after),
                budget: cfg.mem_budget.map(MemoryBudget::new),
                heartbeats,
                ledger,
                watchdog: Mutex::new(watchdog),
                checks: AtomicU64::new(0),
                trips: AtomicU64::new(0),
                trip: Mutex::new(None),
            }),
        }
    }

    /// An unarmed guard: cancellation only, one lane, no deadline,
    /// budget, or watchdog.
    pub fn unarmed() -> Self {
        RunGuard::new(GuardConfig::default())
    }

    /// The run's cancel token.
    pub fn token(&self) -> &CancelToken {
        &self.inner.token
    }

    /// Request cancellation.
    pub fn cancel(&self) {
        self.inner.token.cancel();
    }

    /// Whether the token is tripped.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.token.is_cancelled()
    }

    /// The active deadline, if armed.
    pub fn deadline(&self) -> Option<Deadline> {
        self.inner.deadline
    }

    /// Clamp a sleep against the active deadline (identity when no
    /// deadline is armed) — the satellite guarantee that recovery
    /// backoffs and straggler absorptions never sleep past the budget.
    pub fn clamp_sleep(&self, d: Duration) -> Duration {
        match self.inner.deadline {
            Some(dl) => dl.clamp(d),
            None => d,
        }
    }

    /// The heartbeat table (for wiring into kernels).
    pub fn heartbeats(&self) -> &Arc<Heartbeats> {
        &self.inner.heartbeats
    }

    /// Mark `lane` busy (nests).
    pub fn enter(&self, lane: usize) {
        self.inner.heartbeats.enter(lane);
    }

    /// Drop one busy level on `lane`.
    pub fn leave(&self, lane: usize) {
        self.inner.heartbeats.leave(lane);
    }

    /// Beat `lane` without a full check.
    #[inline]
    pub fn beat(&self, lane: usize) {
        self.inner.heartbeats.beat(lane);
    }

    /// Kernel-worker fast path: beat `lane`, return `true` if the
    /// worker should stop. One heartbeat store + one relaxed load.
    #[inline]
    pub fn poll(&self, lane: usize) -> bool {
        self.inner.heartbeats.beat(lane);
        self.inner.token.is_cancelled()
    }

    /// Driver path: beat `lane`, then evaluate deadline, budget, and
    /// token. The first violation becomes the sticky [`TripReason`]
    /// (also cancelling the token); later checks return it unchanged.
    pub fn check(&self, lane: usize) -> Result<(), TripReason> {
        let inner = &self.inner;
        inner.checks.fetch_add(1, Ordering::Relaxed);
        inner.heartbeats.beat(lane);

        if let Some(reason) = inner.trip.lock().clone() {
            inner.trips.fetch_add(1, Ordering::Relaxed);
            return Err(reason);
        }
        if let Some(dl) = &inner.deadline {
            if dl.expired() {
                return Err(self.trip(TripReason::DeadlineExceeded {
                    elapsed: dl.elapsed(),
                    limit: dl.limit(),
                }));
            }
        }
        if let Some(budget) = &inner.budget {
            if let Some(used) = budget.over_budget() {
                return Err(self.trip(TripReason::MemoryExceeded {
                    used_bytes: used,
                    limit_bytes: budget.limit_bytes(),
                }));
            }
        }
        if inner.token.is_cancelled() {
            // A watchdog-initiated cancellation is attributed to the
            // stall that caused it, not reported as a bare Cancelled.
            let reason = match inner.ledger.tripping_report() {
                Some(StallReport {
                    lane, stalled_for, ..
                }) => TripReason::Stalled { lane, stalled_for },
                None => TripReason::Cancelled,
            };
            return Err(self.trip(reason));
        }
        Ok(())
    }

    /// Record the first trip (sticky), cancel the token, count it.
    fn trip(&self, reason: TripReason) -> TripReason {
        let inner = &self.inner;
        inner.trips.fetch_add(1, Ordering::Relaxed);
        inner.token.cancel();
        let mut slot = inner.trip.lock();
        if slot.is_none() {
            *slot = Some(reason.clone());
        }
        slot.clone().unwrap_or(reason)
    }

    /// The sticky trip reason, if any check has tripped.
    pub fn trip_reason(&self) -> Option<TripReason> {
        self.inner.trip.lock().clone()
    }

    /// All stall reports the watchdog has filed.
    pub fn stall_reports(&self) -> Vec<StallReport> {
        self.inner.ledger.reports()
    }

    /// Counters for the probe report.
    pub fn snapshot(&self) -> GuardSnapshot {
        GuardSnapshot {
            checks: self.inner.checks.load(Ordering::Relaxed),
            trips: self.inner.trips.load(Ordering::Relaxed),
            watchdog_reports: self.inner.ledger.report_count(),
            watchdog_samples: self.inner.ledger.samples(),
            trip: self.trip_reason(),
        }
    }

    /// Stop and join the watchdog thread (idempotent; also happens
    /// when the last clone is dropped). Call before reading a final
    /// snapshot to make the report count quiescent.
    pub fn shutdown(&self) {
        if let Some(mut dog) = self.inner.watchdog.lock().take() {
            dog.stop();
        }
    }
}

impl std::fmt::Debug for RunGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunGuard")
            .field("cancelled", &self.is_cancelled())
            .field("trip", &self.trip_reason())
            .field("lanes", &self.inner.heartbeats.lanes())
            .finish()
    }
}

/// RAII busy-span on a lane: `enter` on construction, `leave` on drop.
/// The driver wraps its iteration loop in one of these so straggler
/// sleeps and stuck phases show up as lane-0 stalls.
pub struct LaneSpan<'a> {
    guard: Option<&'a RunGuard>,
    lane: usize,
}

impl<'a> LaneSpan<'a> {
    /// Enter `lane` on `guard` (no-op when `guard` is `None`).
    pub fn enter(guard: Option<&'a RunGuard>, lane: usize) -> Self {
        if let Some(g) = guard {
            g.enter(lane);
        }
        LaneSpan { guard, lane }
    }
}

impl Drop for LaneSpan<'_> {
    fn drop(&mut self) {
        if let Some(g) = self.guard {
            g.leave(self.lane);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_guard_checks_clean() {
        let g = RunGuard::unarmed();
        for _ in 0..10 {
            g.check(0).expect("nothing armed, nothing trips");
        }
        assert!(!g.poll(0));
        let snap = g.snapshot();
        assert_eq!(snap.checks, 10);
        assert_eq!(snap.trips, 0);
        assert!(snap.trip.is_none());
    }

    #[test]
    fn expired_deadline_trips_and_cancels() {
        let g = RunGuard::new(GuardConfig {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        });
        let err = g.check(0).unwrap_err();
        assert!(matches!(err, TripReason::DeadlineExceeded { .. }));
        assert!(g.is_cancelled(), "a trip must cancel the token");
        assert!(g.poll(0));
    }

    #[test]
    fn first_trip_reason_is_sticky() {
        let g = RunGuard::new(GuardConfig {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        });
        let first = g.check(0).unwrap_err();
        // An external cancel after the deadline trip must not change
        // the attribution.
        g.cancel();
        let second = g.check(0).unwrap_err();
        assert_eq!(first.label(), second.label());
        assert_eq!(g.snapshot().trips, 2);
    }

    #[test]
    fn cancellation_without_watchdog_reads_as_cancelled() {
        let g = RunGuard::unarmed();
        g.cancel();
        assert_eq!(g.check(0).unwrap_err(), TripReason::Cancelled);
    }

    #[test]
    fn memory_budget_trips_check() {
        let _serial = crate::ALLOC_TEST_SERIAL.lock();
        let g = RunGuard::new(GuardConfig {
            mem_budget: Some(256),
            ..Default::default()
        });
        g.check(0).expect("no traffic yet");
        splatt_probe::alloc::record_row_copy(1024);
        let err = g.check(0).unwrap_err();
        match err {
            TripReason::MemoryExceeded {
                used_bytes,
                limit_bytes,
            } => {
                assert!(used_bytes >= 1024);
                assert_eq!(limit_bytes, 256);
            }
            other => panic!("expected MemoryExceeded, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_trip_is_attributed_as_stalled() {
        let g = RunGuard::new(GuardConfig {
            watchdog: Some(WatchdogConfig {
                stall_bound: Duration::from_millis(5),
                sample_interval: Duration::from_millis(1),
                trip_cancel: true,
            }),
            lanes: 2,
            ..Default::default()
        });
        let span = LaneSpan::enter(Some(&g), 1);
        std::thread::sleep(Duration::from_millis(40));
        let err = g.check(0).unwrap_err();
        assert!(
            matches!(err, TripReason::Stalled { lane: 1, .. }),
            "expected a lane-1 stall, got {err:?}"
        );
        drop(span);
        g.shutdown();
        let snap = g.snapshot();
        assert!(snap.watchdog_reports >= 1);
        assert!(snap.watchdog_samples >= 1);
    }

    #[test]
    fn trip_label_round_trip() {
        assert_eq!(TripReason::Cancelled.label(), "cancelled");
        assert_eq!(
            TripReason::DeadlineExceeded {
                elapsed: Duration::ZERO,
                limit: Duration::ZERO
            }
            .label(),
            "deadline"
        );
        assert_eq!(
            TripReason::MemoryExceeded {
                used_bytes: 0,
                limit_bytes: 0
            }
            .label(),
            "mem-budget"
        );
        assert_eq!(
            TripReason::Stalled {
                lane: 0,
                stalled_for: Duration::ZERO
            }
            .label(),
            "stalled"
        );
    }
}
