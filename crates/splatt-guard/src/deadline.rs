//! Wall-clock deadlines.
//!
//! A [`Deadline`] is a start instant plus a budget. Besides the obvious
//! [`Deadline::expired`] check, the load-bearing operation is
//! [`Deadline::clamp`]: recovery backoffs and injected straggler sleeps
//! are clamped against the remaining budget so a retry loop can never
//! sleep past the run's deadline (ISSUE satellite: bound recovery
//! sleeps).

use std::time::{Duration, Instant};

/// A wall-clock budget anchored at a start instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    start: Instant,
    limit: Duration,
}

impl Deadline {
    /// A deadline expiring `limit` from now.
    pub fn after(limit: Duration) -> Self {
        Deadline {
            start: Instant::now(),
            limit,
        }
    }

    /// The total budget.
    pub fn limit(&self) -> Duration {
        self.limit
    }

    /// Time since the deadline was armed.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Budget left, saturating at zero.
    pub fn remaining(&self) -> Duration {
        self.limit.saturating_sub(self.start.elapsed())
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.limit
    }

    /// Clamp a sleep to the remaining budget: sleeping `clamp(d)` can
    /// never carry the caller past the deadline.
    pub fn clamp(&self, d: Duration) -> Duration {
        d.min(self.remaining())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_its_budget() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3599));
        assert_eq!(d.limit(), Duration::from_secs(3600));
    }

    #[test]
    fn zero_deadline_is_expired_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn clamp_bounds_sleeps_by_the_remaining_budget() {
        let d = Deadline::after(Duration::from_millis(50));
        // A sleep far beyond the budget is cut down to at most it.
        assert!(d.clamp(Duration::from_secs(10)) <= Duration::from_millis(50));
        // A sleep within the budget is untouched.
        assert_eq!(d.clamp(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn expired_deadline_clamps_to_zero() {
        let d = Deadline::after(Duration::ZERO);
        assert_eq!(d.clamp(Duration::from_secs(1)), Duration::ZERO);
    }
}
