//! Allocation-traffic budgets over `splatt-probe`'s counters.
//!
//! The probe crate already meters the three allocation streams the
//! MTTKRP stack generates — row copies, access descriptors, and
//! privatized replica buffers — through process-global monotonic
//! counters. A [`MemoryBudget`] arms those counters and bounds the
//! *delta* since arming. Because the counters are monotonic traffic
//! totals (not live heap occupancy), the budget caps cumulative
//! allocation churn: a run that keeps copying rows or replicating
//! output will cross it, while a run that switches to in-place access
//! and the lock path generates almost none — which is exactly what the
//! `degrade` overrun policy exploits.

use splatt_probe::alloc::{self, AllocStats};

/// A cap on allocation traffic since the budget was armed.
#[derive(Debug, Clone, Copy)]
pub struct MemoryBudget {
    limit_bytes: u64,
    baseline: AllocStats,
}

impl MemoryBudget {
    /// Arm a budget of `limit_bytes`, enabling the probe's allocation
    /// accounting (it stays enabled; the counters are a few relaxed
    /// atomics and other users snapshot deltas the same way).
    pub fn new(limit_bytes: u64) -> Self {
        alloc::enable();
        MemoryBudget {
            limit_bytes,
            baseline: alloc::snapshot(),
        }
    }

    /// The configured cap.
    pub fn limit_bytes(&self) -> u64 {
        self.limit_bytes
    }

    /// Allocation traffic since arming.
    pub fn used_bytes(&self) -> u64 {
        alloc::snapshot().since(&self.baseline).total_bytes()
    }

    /// `Some(used)` when traffic has crossed the cap.
    pub fn over_budget(&self) -> Option<u64> {
        let used = self.used_bytes();
        (used > self.limit_bytes).then_some(used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::ALLOC_TEST_SERIAL;

    #[test]
    fn budget_counts_traffic_from_its_own_baseline() {
        let _serial = ALLOC_TEST_SERIAL.lock();
        // Pre-existing traffic must not count against a budget armed
        // later.
        alloc::enable();
        alloc::record_row_copy(4096);
        let budget = MemoryBudget::new(1024);
        assert_eq!(budget.used_bytes(), 0);
        assert!(budget.over_budget().is_none());

        alloc::record_row_copy(512);
        assert!(budget.used_bytes() >= 512);
        assert!(budget.over_budget().is_none());

        alloc::record_privatization(4096);
        let over = budget.over_budget().expect("traffic crossed the cap");
        assert!(over >= 4608);
    }

    #[test]
    fn all_three_streams_are_charged() {
        let _serial = ALLOC_TEST_SERIAL.lock();
        let budget = MemoryBudget::new(u64::MAX);
        alloc::record_row_copy(100);
        alloc::record_descriptor(200);
        alloc::record_privatization(300);
        assert!(budget.used_bytes() >= 600);
    }
}
