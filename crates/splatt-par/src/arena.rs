//! Generic per-task slots for `coforall`-partitioned state.
//!
//! [`crate::ThreadScratch`] hard-codes per-task `f64` buffers for the
//! MTTKRP reduction pattern; [`TaskLocal`] is the shape underneath it,
//! generalized: one cache-padded, individually-locked slot per task, for
//! workloads whose per-task state is richer than a flat float buffer —
//! the serving layer keeps a grow-only query arena per task this way.
//!
//! Each task locks only its own `tid`-indexed slot, so acquisition is a
//! single uncontended atomic, while the API stays safe to use inside
//! [`crate::TaskTeam::coforall`].

use splatt_rt::sync::{CachePadded, Mutex};

/// `ntasks` independently-locked, cache-padded slots of `T`.
pub struct TaskLocal<T> {
    slots: Vec<CachePadded<Mutex<T>>>,
}

impl<T> TaskLocal<T> {
    /// Build `ntasks` slots, each initialized by `init(tid)`.
    pub fn new(ntasks: usize, mut init: impl FnMut(usize) -> T) -> Self {
        TaskLocal {
            slots: (0..ntasks)
                .map(|tid| CachePadded::new(Mutex::new(init(tid))))
                .collect(),
        }
    }

    /// Number of slots.
    pub fn ntasks(&self) -> usize {
        self.slots.len()
    }

    /// `true` when built with zero tasks.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Run `f` with mutable access to task `tid`'s slot.
    ///
    /// # Panics
    /// Panics if `tid` is out of range.
    pub fn with_mut<R>(&self, tid: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.slots[tid].lock();
        f(&mut guard)
    }

    /// Visit every slot in turn (e.g. to aggregate per-task counters
    /// after a parallel region).
    pub fn for_each(&self, mut f: impl FnMut(usize, &mut T)) {
        for (tid, slot) in self.slots.iter().enumerate() {
            let mut guard = slot.lock();
            f(tid, &mut guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskTeam;

    #[test]
    fn slots_are_initialized_per_tid() {
        let local = TaskLocal::new(3, |tid| tid * 10);
        assert_eq!(local.ntasks(), 3);
        assert!(!local.is_empty());
        for tid in 0..3 {
            assert_eq!(local.with_mut(tid, |v| *v), tid * 10);
        }
    }

    #[test]
    fn concurrent_mutation_under_coforall() {
        let ntasks = 4;
        let team = TaskTeam::new(ntasks);
        let local = TaskLocal::new(ntasks, |_| Vec::<usize>::new());
        team.coforall(|tid| {
            local.with_mut(tid, |v| {
                for i in 0..100 {
                    v.push(tid * 1000 + i);
                }
            });
        });
        let mut total = 0usize;
        local.for_each(|tid, v| {
            assert_eq!(v.len(), 100);
            assert_eq!(v[0], tid * 1000);
            total += v.len();
        });
        assert_eq!(total, 400);
    }

    #[test]
    #[should_panic]
    fn out_of_range_tid_panics() {
        let local = TaskLocal::new(1, |_| 0u8);
        local.with_mut(1, |_| {});
    }
}
