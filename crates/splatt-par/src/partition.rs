//! Static work partitioning.
//!
//! The paper (Section IV-B) notes that Chapel has no analogue of an
//! `omp for` nested inside an `omp parallel`, so the port computes loop
//! bounds per task by hand inside a `coforall`. These helpers are those
//! hand-computed bounds: [`block`] is the `omp for` static schedule, and
//! [`weighted`] is SPLATT's nonzero-balanced partitioning of CSF slices
//! across threads (each task receives a contiguous slice range carrying
//! roughly `nnz / ntasks` nonzeros).

use std::ops::Range;

/// The contiguous index range task `tid` of `ntasks` owns when `n` items
/// are split as evenly as possible (OpenMP static schedule).
///
/// The first `n % ntasks` tasks receive one extra item. Returns an empty
/// range for tasks beyond the item count.
///
/// # Panics
/// Panics if `ntasks == 0` or `tid >= ntasks`.
pub fn block(n: usize, ntasks: usize, tid: usize) -> Range<usize> {
    assert!(ntasks > 0, "block: ntasks must be positive");
    assert!(
        tid < ntasks,
        "block: tid {tid} out of range for {ntasks} tasks"
    );
    let base = n / ntasks;
    let extra = n % ntasks;
    let start = tid * base + tid.min(extra);
    let len = base + usize::from(tid < extra);
    start..(start + len)
}

/// Inclusive prefix sum: `out[i] = w[0] + ... + w[i-1]`, with
/// `out.len() == w.len() + 1` and `out[0] == 0`.
pub fn prefix_sum(weights: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(weights.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &w in weights {
        acc += w;
        out.push(acc);
    }
    out
}

/// Partition `prefix.len() - 1` weighted items into `nparts` contiguous
/// parts of approximately equal total weight.
///
/// `prefix` must be an inclusive prefix sum as produced by [`prefix_sum`].
/// Returns `nparts + 1` boundaries `b` such that part `p` owns items
/// `b[p]..b[p+1]`. This is SPLATT's `partition_weighted`, used to hand each
/// MTTKRP task a slice range with a balanced nonzero count rather than a
/// balanced slice count (sparse tensors are wildly skewed per slice).
///
/// # Panics
/// Panics if `nparts == 0` or `prefix` is empty.
pub fn weighted(prefix: &[usize], nparts: usize) -> Vec<usize> {
    assert!(nparts > 0, "weighted: nparts must be positive");
    assert!(!prefix.is_empty(), "weighted: prefix sum must be non-empty");
    let n = prefix.len() - 1;
    let total = *prefix.last().unwrap();
    let mut bounds = Vec::with_capacity(nparts + 1);
    bounds.push(0);
    for p in 1..nparts {
        let target = (total as u128 * p as u128 / nparts as u128) as usize;
        // first index whose prefix weight reaches the target
        let idx = prefix.partition_point(|&w| w < target).min(n);
        let prev = *bounds.last().unwrap();
        // A heavy item straddling the target drags `idx` past it by the
        // item's full weight; cutting *before* that item can sit much
        // closer to the target. Pick whichever boundary is nearer (ties
        // keep the forward cut).
        let idx = if idx > prev && target.abs_diff(prefix[idx - 1]) < target.abs_diff(prefix[idx]) {
            idx - 1
        } else {
            idx
        };
        // keep boundaries monotonic even with zero-weight runs
        bounds.push(idx.max(prev));
    }
    bounds.push(n);
    bounds
}

/// Partition `prefix.len() - 1` weighted items into `nparts` contiguous
/// parts by recursive bisection of the item space — ALTO-style
/// coordinate-space partitioning (Laukemann et al.): each split places
/// a boundary nearest the proportional weight target for the parts on
/// its left, then recurses into both halves.
///
/// Compared with [`weighted`]'s global-target sweep, the recursive form
/// localizes every decision to the half it splits, which is how ALTO
/// keeps partitions aligned to coordinate-range boundaries. Both share
/// the closer-boundary-cut rule: a heavy item straddling a target is
/// cut *before* when that leaves the boundary nearer the target (the
/// PR 4 `weighted` fix — without it one part silently absorbs the
/// whole heavy item plus its neighbours).
///
/// Returns `nparts + 1` monotonic boundaries like [`weighted`].
///
/// # Panics
/// Panics if `nparts == 0` or `prefix` is empty.
pub fn recursive_weighted(prefix: &[usize], nparts: usize) -> Vec<usize> {
    assert!(nparts > 0, "recursive_weighted: nparts must be positive");
    assert!(
        !prefix.is_empty(),
        "recursive_weighted: prefix sum must be non-empty"
    );
    let n = prefix.len() - 1;
    let mut bounds = vec![0usize; nparts + 1];
    bounds[nparts] = n;
    bisect(prefix, 0, n, 0, nparts, &mut bounds);
    // keep boundaries monotonic even with zero-weight runs
    for p in 1..=nparts {
        if bounds[p] < bounds[p - 1] {
            bounds[p] = bounds[p - 1];
        }
    }
    bounds
}

/// Place the boundary splitting parts `lo_part..hi_part` of items
/// `lo_item..hi_item`, then recurse into both halves.
fn bisect(
    prefix: &[usize],
    lo_item: usize,
    hi_item: usize,
    lo_part: usize,
    hi_part: usize,
    bounds: &mut [usize],
) {
    let nparts = hi_part - lo_part;
    if nparts <= 1 {
        return;
    }
    let nl = nparts / 2;
    let span = prefix[hi_item] - prefix[lo_item];
    let target = prefix[lo_item] + (span as u128 * nl as u128 / nparts as u128) as usize;
    // first index in (lo_item, hi_item] whose prefix weight reaches the
    // target
    let idx = (lo_item + prefix[lo_item..=hi_item].partition_point(|&w| w < target)).min(hi_item);
    // A heavy item straddling the target drags `idx` past it by the
    // item's full weight; cutting *before* that item can sit much closer
    // to the target. Pick whichever boundary is nearer (ties keep the
    // forward cut) — the same rule as `weighted`.
    let cut = if idx > lo_item && target.abs_diff(prefix[idx - 1]) < target.abs_diff(prefix[idx]) {
        idx - 1
    } else {
        idx
    };
    bounds[lo_part + nl] = cut;
    bisect(prefix, lo_item, cut, lo_part, lo_part + nl, bounds);
    bisect(prefix, cut, hi_item, lo_part + nl, hi_part, bounds);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The boundary-cut regression fixture shared by both partitioners:
    /// 30 light items, one weight-50 slice, 20 light items. The flooring
    /// target for 2 parts is 50; the first prefix reaching it is *past*
    /// the heavy slice (weight 80), while cutting before it leaves
    /// weight 30 — closer to the target. Code without the closer-cut
    /// rule hands one task 80% of the load.
    fn skewed_boundary_weights() -> Vec<usize> {
        let mut w = vec![1usize; 30];
        w.push(50);
        w.extend(std::iter::repeat_n(1, 20));
        w
    }

    fn assert_balanced_cut(b: &[usize], w: &[usize], nparts: usize, max_over_mean: f64) {
        let total: usize = w.iter().sum();
        let loads: Vec<usize> = (0..nparts)
            .map(|k| w[b[k]..b[k + 1]].iter().sum())
            .collect();
        let mean = total as f64 / nparts as f64;
        let max = *loads.iter().max().unwrap() as f64;
        assert!(
            max / mean <= max_over_mean + 1e-9,
            "max/mean load ratio {} too high (loads {loads:?})",
            max / mean
        );
    }

    #[test]
    fn block_covers_everything_exactly_once() {
        for n in [0usize, 1, 7, 100, 101] {
            for ntasks in [1usize, 2, 3, 8, 150] {
                let mut seen = vec![0u32; n];
                for tid in 0..ntasks {
                    for i in block(n, ntasks, tid) {
                        seen[i] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "n={n} ntasks={ntasks}");
            }
        }
    }

    #[test]
    fn block_is_balanced() {
        for tid in 0..4 {
            let r = block(10, 4, tid);
            let len = r.end - r.start;
            assert!(len == 2 || len == 3);
        }
    }

    #[test]
    fn block_more_tasks_than_items() {
        let mut nonempty = 0;
        for tid in 0..10 {
            let r = block(3, 10, tid);
            if !r.is_empty() {
                nonempty += 1;
                assert_eq!(r.end - r.start, 1);
            }
        }
        assert_eq!(nonempty, 3);
    }

    #[test]
    fn block_single_task_owns_all() {
        assert_eq!(block(42, 1, 0), 0..42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_bad_tid_panics() {
        let _ = block(5, 2, 2);
    }

    #[test]
    fn prefix_sum_basic() {
        assert_eq!(prefix_sum(&[3, 1, 4]), vec![0, 3, 4, 8]);
        assert_eq!(prefix_sum(&[]), vec![0]);
    }

    #[test]
    fn weighted_boundaries_are_monotonic_and_cover() {
        let w = [5usize, 1, 1, 1, 1, 1, 10, 1, 1, 1];
        let p = prefix_sum(&w);
        let b = weighted(&p, 3);
        assert_eq!(b.len(), 4);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), w.len());
        for k in 1..b.len() {
            assert!(b[k] >= b[k - 1]);
        }
    }

    #[test]
    fn weighted_balances_skewed_weights() {
        // one heavy item among light ones: the heavy item must not share a
        // part with many light ones on both sides
        let w = [1usize, 1, 1, 100, 1, 1, 1, 1];
        let p = prefix_sum(&w);
        let b = weighted(&p, 2);
        // the split should land right after or at the heavy item
        let part0: usize = w[b[0]..b[1]].iter().sum();
        let part1: usize = w[b[1]..b[2]].iter().sum();
        assert!(part0.max(part1) <= 103, "parts {part0}/{part1}");
    }

    #[test]
    fn weighted_uniform_weights_match_block() {
        let w = vec![1usize; 100];
        let p = prefix_sum(&w);
        let b = weighted(&p, 4);
        assert_eq!(b, vec![0, 25, 50, 75, 100]);
    }

    #[test]
    fn weighted_more_parts_than_items() {
        let w = [7usize, 7];
        let p = prefix_sum(&w);
        let b = weighted(&p, 5);
        assert_eq!(b.len(), 6);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 2);
        for k in 1..b.len() {
            assert!(b[k] >= b[k - 1]);
        }
    }

    #[test]
    fn weighted_heavy_boundary_slice_takes_closer_cut() {
        // The old code always took the forward cut, handing one task 80%
        // of the load (see `skewed_boundary_weights`).
        let w = skewed_boundary_weights();
        let p = prefix_sum(&w);
        let b = weighted(&p, 2);
        assert_eq!(b, vec![0, 30, 51]);
        assert_balanced_cut(&b, &w, 2, 1.4);
    }

    #[test]
    fn recursive_weighted_heavy_boundary_slice_takes_closer_cut() {
        // The ALTO-style recursive partitioner hits the identical edge
        // case at its top-level bisection: the same skewed fixture must
        // take the closer cut, not the forward one.
        let w = skewed_boundary_weights();
        let p = prefix_sum(&w);
        let b = recursive_weighted(&p, 2);
        assert_eq!(b, vec![0, 30, 51]);
        assert_balanced_cut(&b, &w, 2, 1.4);
    }

    #[test]
    fn recursive_weighted_nested_heavy_slices_stay_balanced() {
        // heavy items in both halves: the closer-cut rule must apply at
        // every recursion depth, not just the first split
        let mut w = vec![1usize; 10];
        w.push(20);
        w.extend(std::iter::repeat_n(1, 10));
        w.push(20);
        w.extend(std::iter::repeat_n(1, 10));
        let p = prefix_sum(&w);
        let b = recursive_weighted(&p, 4);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), w.len());
        for k in 1..b.len() {
            assert!(b[k] >= b[k - 1]);
        }
        assert_balanced_cut(&b, &w, 4, 1.5);
    }

    #[test]
    fn recursive_weighted_uniform_weights_match_block() {
        let w = vec![1usize; 100];
        let p = prefix_sum(&w);
        let b = recursive_weighted(&p, 4);
        assert_eq!(b, vec![0, 25, 50, 75, 100]);
    }

    #[test]
    fn recursive_weighted_covers_and_is_monotonic() {
        let w = [5usize, 1, 1, 1, 1, 1, 10, 1, 1, 1];
        let p = prefix_sum(&w);
        for nparts in [1usize, 2, 3, 5, 8, 16] {
            let b = recursive_weighted(&p, nparts);
            assert_eq!(b.len(), nparts + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), w.len());
            for k in 1..b.len() {
                assert!(b[k] >= b[k - 1], "nparts {nparts}: {b:?}");
            }
        }
    }

    #[test]
    fn recursive_weighted_more_parts_than_items() {
        let w = [7usize, 7];
        let p = prefix_sum(&w);
        let b = recursive_weighted(&p, 5);
        assert_eq!(b.len(), 6);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 2);
        for k in 1..b.len() {
            assert!(b[k] >= b[k - 1]);
        }
    }

    #[test]
    fn recursive_weighted_all_zero_weights_and_empty() {
        let p = prefix_sum(&[0usize; 6]);
        let b = recursive_weighted(&p, 3);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 6);
        assert_eq!(recursive_weighted(&prefix_sum(&[]), 4), vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn weighted_exact_targets_keep_forward_cut() {
        // uniform weights hit every target exactly; the closer-cut rule
        // must not move those boundaries
        let w = vec![2usize; 50];
        let p = prefix_sum(&w);
        assert_eq!(weighted(&p, 5), vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn weighted_all_zero_weights() {
        let w = [0usize; 6];
        let p = prefix_sum(&w);
        let b = weighted(&p, 3);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 6);
    }

    #[test]
    fn weighted_empty_items() {
        let p = prefix_sum(&[]);
        let b = weighted(&p, 4);
        assert_eq!(b, vec![0, 0, 0, 0, 0]);
    }
}
