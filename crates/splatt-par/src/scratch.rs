//! Per-thread scratch buffers (SPLATT's `thd_info`).
//!
//! The work-sharing pattern in the paper's Listing 7 — every thread owns a
//! private accumulation buffer, iterates its slice of the shared data, then
//! the buffers are reduced — needs per-thread storage that (a) is reused
//! across many parallel regions (allocation inside hot loops was one of the
//! paper's sorting bottlenecks) and (b) does not false-share cache lines
//! between threads.

use splatt_rt::sync::{CachePadded, Mutex};

/// A set of `ntasks` equally-sized `f64` buffers, one per task, padded to
/// cache-line boundaries.
///
/// Buffers are wrapped in uncontended mutexes: each task locks only its own
/// buffer (`tid`-indexed), so acquisition is a single uncontended atomic —
/// negligible next to the buffer-sized work done under it — while keeping
/// the API safe for use inside [`crate::TaskTeam::coforall`].
pub struct ThreadScratch {
    bufs: Vec<CachePadded<Mutex<Vec<f64>>>>,
    len: usize,
}

impl ThreadScratch {
    /// Allocate `ntasks` zeroed buffers of `len` elements each.
    pub fn new(ntasks: usize, len: usize) -> Self {
        ThreadScratch {
            bufs: (0..ntasks)
                .map(|_| CachePadded::new(Mutex::new(vec![0.0; len])))
                .collect(),
            len,
        }
    }

    /// Number of per-task buffers.
    pub fn ntasks(&self) -> usize {
        self.bufs.len()
    }

    /// Length of each buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if buffers have zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Run `f` with mutable access to task `tid`'s buffer.
    pub fn with_mut<R>(&self, tid: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let mut guard = self.bufs[tid].lock();
        f(&mut guard)
    }

    /// Zero every buffer.
    pub fn reset(&self) {
        for b in &self.bufs {
            b.lock().fill(0.0);
        }
    }

    /// Ensure each buffer holds at least `len` elements, growing (zeroed)
    /// if needed. Shrinks never happen, mirroring SPLATT's grow-only
    /// `thd_info` reallocation.
    ///
    /// Returns the number of bytes newly allocated across all task
    /// buffers — `0` when the buffers were already large enough — so
    /// callers can feed allocation accounting only on actual growth and
    /// verify the steady state allocates nothing.
    pub fn ensure_len(&mut self, len: usize) -> usize {
        if len > self.len {
            for b in &mut self.bufs {
                b.get_mut().resize(len, 0.0);
            }
            let grown = (len - self.len) * self.bufs.len() * std::mem::size_of::<f64>();
            self.len = len;
            grown
        } else {
            0
        }
    }

    /// Element-wise sum of all task buffers into `out`
    /// (`out[i] = sum_t buf[t][i]`). `out` is overwritten.
    ///
    /// # Panics
    /// Panics if `out.len() > self.len()`.
    pub fn reduce_sum_into(&self, out: &mut [f64]) {
        assert!(
            out.len() <= self.len,
            "reduce_sum_into: out length {} exceeds buffer length {}",
            out.len(),
            self.len
        );
        out.fill(0.0);
        for b in &self.bufs {
            let buf = b.lock();
            for (o, &v) in out.iter_mut().zip(buf.iter()) {
                *o += v;
            }
        }
    }

    /// Sum all *other* task buffers into task 0's buffer and return a copy
    /// of the result prefix of length `n` — SPLATT's post-`omp parallel`
    /// reduction step.
    pub fn reduce_to_first(&self, n: usize) -> Vec<f64> {
        let mut acc = self.bufs[0].lock().clone();
        for b in &self.bufs[1..] {
            let buf = b.lock();
            for (a, &v) in acc.iter_mut().zip(buf.iter()) {
                *a += v;
            }
        }
        acc.truncate(n);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskTeam;

    #[test]
    fn buffers_start_zeroed() {
        let s = ThreadScratch::new(3, 8);
        let mut out = vec![1.0; 8];
        s.reduce_sum_into(&mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn with_mut_isolates_tasks() {
        let s = ThreadScratch::new(2, 4);
        s.with_mut(0, |b| b.fill(1.0));
        s.with_mut(1, |b| b.fill(2.0));
        let mut out = vec![0.0; 4];
        s.reduce_sum_into(&mut out);
        assert_eq!(out, vec![3.0; 4]);
    }

    #[test]
    fn reset_clears_all() {
        let s = ThreadScratch::new(2, 4);
        s.with_mut(0, |b| b.fill(5.0));
        s.reset();
        let mut out = vec![0.0; 4];
        s.reduce_sum_into(&mut out);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn ensure_len_grows_and_preserves() {
        let mut s = ThreadScratch::new(2, 2);
        s.with_mut(0, |b| b[1] = 3.0);
        // growth reports the newly allocated bytes across both buffers
        assert_eq!(s.ensure_len(5), 3 * 2 * std::mem::size_of::<f64>());
        assert_eq!(s.len(), 5);
        s.with_mut(0, |b| {
            assert_eq!(b.len(), 5);
            assert_eq!(b[1], 3.0);
            assert_eq!(b[4], 0.0);
        });
        // shrink request is ignored and allocates nothing
        assert_eq!(s.ensure_len(1), 0);
        assert_eq!(s.len(), 5);
        // re-requesting the current size is also allocation-free
        assert_eq!(s.ensure_len(5), 0);
    }

    #[test]
    fn reduce_to_first_sums_everything() {
        let s = ThreadScratch::new(3, 3);
        for tid in 0..3 {
            s.with_mut(tid, |b| b.fill((tid + 1) as f64));
        }
        assert_eq!(s.reduce_to_first(3), vec![6.0, 6.0, 6.0]);
        assert_eq!(s.reduce_to_first(2), vec![6.0, 6.0]);
    }

    #[test]
    fn concurrent_accumulation_under_coforall() {
        let ntasks = 4;
        let team = TaskTeam::new(ntasks);
        let s = ThreadScratch::new(ntasks, 16);
        team.coforall(|tid| {
            s.with_mut(tid, |b| {
                for v in b.iter_mut() {
                    *v += (tid + 1) as f64;
                }
            });
        });
        let mut out = vec![0.0; 16];
        s.reduce_sum_into(&mut out);
        assert!(out.iter().all(|&v| v == 10.0)); // 1+2+3+4
    }

    #[test]
    #[should_panic(expected = "exceeds buffer length")]
    fn reduce_into_oversized_out_panics() {
        let s = ThreadScratch::new(1, 2);
        let mut out = vec![0.0; 3];
        s.reduce_sum_into(&mut out);
    }
}
