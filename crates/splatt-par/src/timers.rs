//! Per-routine timer registry (SPLATT's `timers[TIMER_*]` table).
//!
//! Every number in the paper's Table III and Figures 5–8 is the accumulated
//! wall time of one CP-ALS routine over 20 iterations: MTTKRP, Sort,
//! `Mat A^TA`, `Mat norm`, `CPD fit`, and Inverse. [`TimerRegistry`] is the
//! instrument that produces those rows.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The routines SPLATT (and the paper) time individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routine {
    /// The matricized tensor times Khatri-Rao product — the critical kernel.
    Mttkrp,
    /// Pre-processing sort of the tensor's nonzeros.
    Sort,
    /// Gram matrix products `A^T A` (Algorithm 1 lines 4/7/10).
    AtA,
    /// Column normalization of factor matrices (lines 6/9/12).
    MatNorm,
    /// Decomposition fit computation (line 13).
    Fit,
    /// Moore-Penrose inverse / normal-equation solve (`V†`).
    Inverse,
    /// Whole CP-ALS iteration loop (excludes I/O and CSF construction).
    CpdTotal,
}

impl Routine {
    /// All routines, in the column order of the paper's Table III.
    pub const ALL: [Routine; 7] = [
        Routine::Mttkrp,
        Routine::Sort,
        Routine::AtA,
        Routine::MatNorm,
        Routine::Fit,
        Routine::Inverse,
        Routine::CpdTotal,
    ];

    /// Column label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Routine::Mttkrp => "MTTKRP",
            Routine::Sort => "Sort",
            Routine::AtA => "Mat A^TA",
            Routine::MatNorm => "Mat norm",
            Routine::Fit => "CPD fit",
            Routine::Inverse => "Inverse",
            Routine::CpdTotal => "CPD total",
        }
    }

    fn index(self) -> usize {
        match self {
            Routine::Mttkrp => 0,
            Routine::Sort => 1,
            Routine::AtA => 2,
            Routine::MatNorm => 3,
            Routine::Fit => 4,
            Routine::Inverse => 5,
            Routine::CpdTotal => 6,
        }
    }
}

/// Accumulating wall-clock timers, one per [`Routine`].
///
/// Nanosecond totals live in atomics so the registry is freely shared
/// (`&self`) across threads; individual routine sections are timed on the
/// calling thread only, like SPLATT's master-thread timers.
#[derive(Debug, Default)]
pub struct TimerRegistry {
    nanos: [AtomicU64; 7],
}

impl TimerRegistry {
    /// A registry with all timers at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f`, attributing its wall time to `which`, and return its result.
    pub fn time<R>(&self, which: Routine, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(which, start.elapsed());
        out
    }

    /// Add a pre-measured duration to `which`.
    pub fn add(&self, which: Routine, d: Duration) {
        self.nanos[which.index()].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Accumulated time for `which`.
    pub fn get(&self, which: Routine) -> Duration {
        Duration::from_nanos(self.nanos[which.index()].load(Ordering::Relaxed))
    }

    /// Accumulated seconds for `which` (convenience for reports).
    pub fn seconds(&self, which: Routine) -> f64 {
        self.get(which).as_secs_f64()
    }

    /// Zero every timer.
    pub fn reset(&self) {
        for n in &self.nanos {
            n.store(0, Ordering::Relaxed);
        }
    }
}

impl fmt::Display for TimerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<10} {:>12}", "routine", "seconds")?;
        for r in Routine::ALL {
            writeln!(f, "{:<10} {:>12.4}", r.label(), self.seconds(r))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_start_at_zero() {
        let t = TimerRegistry::new();
        for r in Routine::ALL {
            assert_eq!(t.get(r), Duration::ZERO);
        }
    }

    #[test]
    fn time_accumulates_and_returns_value() {
        let t = TimerRegistry::new();
        let v = t.time(Routine::Sort, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(t.get(Routine::Sort) >= Duration::from_millis(4));
        assert_eq!(t.get(Routine::Mttkrp), Duration::ZERO);
    }

    #[test]
    fn add_accumulates_across_calls() {
        let t = TimerRegistry::new();
        t.add(Routine::Fit, Duration::from_millis(3));
        t.add(Routine::Fit, Duration::from_millis(4));
        assert_eq!(t.get(Routine::Fit), Duration::from_millis(7));
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = TimerRegistry::new();
        t.add(Routine::Inverse, Duration::from_secs(1));
        t.reset();
        assert_eq!(t.get(Routine::Inverse), Duration::ZERO);
    }

    #[test]
    fn concurrent_adds_are_summed() {
        let t = TimerRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        t.add(Routine::Mttkrp, Duration::from_nanos(10));
                    }
                });
            }
        });
        assert_eq!(t.get(Routine::Mttkrp), Duration::from_nanos(4000));
    }

    #[test]
    fn display_mentions_all_labels() {
        let t = TimerRegistry::new();
        let s = format!("{t}");
        for r in Routine::ALL {
            assert!(s.contains(r.label()), "missing {}", r.label());
        }
    }
}
