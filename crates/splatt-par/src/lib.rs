//! Tasking substrate for the splatt-rs workspace.
//!
//! The Chapel-port paper's performance story is as much about the *tasking
//! layer* as about the algorithm: Qthreads workers spin-wait for new work
//! before suspending (tunable via `QT_SPINCOUNT`), the `fifo` layer parks
//! immediately on POSIX threads, and OpenMP teams use static work sharing
//! (`omp parallel` / `omp for`). This crate provides the equivalent
//! machinery natively:
//!
//! * [`TaskTeam`] — a persistent team of worker threads with a
//!   `coforall`-style broadcast API ([`TaskTeam::coforall`]) and a
//!   configurable spin-before-park count ([`TeamConfig::spin_count`],
//!   the `QT_SPINCOUNT` analogue).
//! * [`partition`] — static block partitioning (`omp for` analogue) and
//!   SPLATT's weight-balanced partitioning of nonzeros across tasks.
//! * [`ThreadScratch`] — per-thread, cache-line-padded scratch buffers
//!   (SPLATT's `thd_info`) with flat reductions.
//! * [`TaskLocal`] — the generic per-task slot container underneath that
//!   pattern, for richer per-task state (e.g. serving-query arenas).
//! * [`TimerRegistry`] — the per-routine timer table behind every number in
//!   the paper's Table III and Figures 5–8.

mod arena;
mod scratch;
mod team;
mod timers;

pub mod partition;

pub use arena::TaskLocal;
pub use scratch::ThreadScratch;
pub use team::{TaskTeam, TeamConfig, TeamError};
pub use timers::{Routine, TimerRegistry};
