//! A persistent task team with Chapel-`coforall` semantics.
//!
//! `coforall tid in 0..numTasks-1 { body(tid) }` (paper Listing 1) creates
//! exactly `numTasks` concurrent tasks and waits for all of them; the OpenMP
//! analogue is `#pragma omp parallel num_threads(n)` (Listing 2).
//! [`TaskTeam::coforall`] reproduces this: the calling thread runs task 0,
//! `n - 1` persistent workers run tasks `1..n`, and the call returns only
//! after every task finished.
//!
//! Workers waiting for the next broadcast first *spin* on an atomic
//! generation counter for [`TeamConfig::spin_count`] iterations and only
//! then park on a condition variable — the same policy Qthreads applies
//! (default 300 000 iterations, tuned down to 300 in the paper's Section
//! V-E to stop idle spinning from starving OpenBLAS threads). Setting
//! `spin_count = 0` gives the `fifo` tasking layer's park-immediately
//! behaviour.

use splatt_probe::TaskTimes;
use splatt_rt::sync::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for a [`TaskTeam`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamConfig {
    /// How many times an idle worker polls the generation counter before
    /// parking on a condition variable. Qthreads' `QT_SPINCOUNT` analogue.
    pub spin_count: u32,
}

impl Default for TeamConfig {
    fn default() -> Self {
        // Qthreads' default spin-wait interval (see paper Section V-E).
        TeamConfig {
            spin_count: 300_000,
        }
    }
}

impl TeamConfig {
    /// Park immediately on idle, like the `fifo` (POSIX threads) layer.
    pub fn fifo() -> Self {
        TeamConfig { spin_count: 0 }
    }

    /// The shortened spin the paper lands on (`QT_SPINCOUNT=300`).
    pub fn short_spin() -> Self {
        TeamConfig { spin_count: 300 }
    }
}

/// Why a `coforall` broadcast failed.
///
/// Replaces the old untyped `panic!("a task in TaskTeam::coforall
/// panicked")`: the error carries which task failed and the panic
/// payload's message, so callers can attribute a kernel failure to a
/// worker instead of unwinding with a context-free string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeamError {
    /// A task panicked while running the broadcast body.
    Panicked {
        /// The task id (`tid`) whose body panicked. When several tasks
        /// panic in one broadcast, the first to be recorded wins.
        worker: usize,
        /// The panic payload's message (`&str` / `String` payloads are
        /// preserved verbatim; anything else is summarized).
        payload: String,
    },
    /// The broadcast was abandoned because its cancellation predicate
    /// fired (only returned by [`TaskTeam::coforall_cancellable`]).
    Cancelled,
}

impl TeamError {
    fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    }
}

impl std::fmt::Display for TeamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeamError::Panicked { worker, payload } => {
                write!(f, "task {worker} in TaskTeam::coforall panicked: {payload}")
            }
            TeamError::Cancelled => write!(f, "coforall cancelled before completion"),
        }
    }
}

impl std::error::Error for TeamError {}

/// Internal broadcast outcome: a caller (task 0) panic keeps its
/// original payload so `coforall` can resume it unchanged.
enum Broadcast {
    Caller(Box<dyn std::any::Any + Send>),
    Worker(TeamError),
}

/// Type-erased reference to the closure being broadcast. Only valid while
/// the owning `coforall` frame is alive; see the safety notes in
/// [`TaskTeam::coforall`].
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    call: fn(*const (), usize),
}

// SAFETY: JobRef is only ever dereferenced while the closure it points to is
// kept alive (and not moved) by the blocked `coforall` caller, and the
// closure is required to be `Sync`.
unsafe impl Send for JobRef {}
unsafe impl Sync for JobRef {}

struct Shared {
    /// Bumped once per broadcast; workers detect new work by comparing
    /// against the last generation they executed.
    generation: AtomicU64,
    /// Current job for the current generation. Written before the
    /// generation bump (release) and read after observing it (acquire).
    job: Mutex<Option<JobRef>>,
    /// Tasks still running in the current generation.
    remaining: AtomicUsize,
    /// Set when the team is being dropped.
    shutdown: AtomicBool,
    /// Any worker panicked while running the current job.
    panicked: AtomicBool,
    /// First (worker id, panic message) of the current job.
    panic_info: Mutex<Option<(usize, String)>>,
    /// Workers park here while idle.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// The caller parks here while waiting for completion.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    config: TeamConfig,
}

/// A persistent team of threads executing `coforall`-style broadcasts.
///
/// ```
/// use splatt_par::TaskTeam;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let team = TaskTeam::new(4);
/// let hits = AtomicUsize::new(0);
/// team.coforall(|tid| {
///     assert!(tid < 4);
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct TaskTeam {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    ntasks: usize,
}

impl TaskTeam {
    /// Create a team that runs `ntasks` tasks per broadcast with the
    /// default (Qthreads-like) configuration.
    ///
    /// # Panics
    /// Panics if `ntasks == 0`.
    pub fn new(ntasks: usize) -> Self {
        Self::with_config(ntasks, TeamConfig::default())
    }

    /// Create a team with an explicit [`TeamConfig`].
    ///
    /// # Panics
    /// Panics if `ntasks == 0`.
    pub fn with_config(ntasks: usize, config: TeamConfig) -> Self {
        assert!(ntasks > 0, "TaskTeam requires at least one task");
        let shared = Arc::new(Shared {
            generation: AtomicU64::new(0),
            job: Mutex::new(None),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            panic_info: Mutex::new(None),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            config,
        });
        let workers = (1..ntasks)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("splatt-task-{tid}"))
                    .spawn(move || worker_loop(shared, tid))
                    .expect("failed to spawn task team worker")
            })
            .collect();
        TaskTeam {
            shared,
            workers,
            ntasks,
        }
    }

    /// Number of tasks each broadcast runs.
    pub fn ntasks(&self) -> usize {
        self.ntasks
    }

    /// The team's configuration.
    pub fn config(&self) -> TeamConfig {
        self.shared.config
    }

    /// Run `f(tid)` for every `tid in 0..ntasks` concurrently and wait for
    /// all of them. The calling thread executes task 0.
    ///
    /// # Panics
    /// Panics (after all tasks finish or unwind) if any task panicked: a
    /// task-0 panic resumes its original payload on the caller, a worker
    /// panic raises the [`TeamError`] message naming the worker.
    pub fn coforall<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        match self.broadcast(&f) {
            Ok(()) => {}
            Err(Broadcast::Caller(payload)) => std::panic::resume_unwind(payload),
            Err(Broadcast::Worker(err)) => panic!("{err}"),
        }
    }

    /// Fallible [`TaskTeam::coforall`]: every task still runs to
    /// completion (or unwinds), but a panic anywhere in the team comes
    /// back as a typed [`TeamError`] instead of unwinding the caller.
    pub fn try_coforall<F>(&self, f: F) -> Result<(), TeamError>
    where
        F: Fn(usize) + Sync,
    {
        match self.broadcast(&f) {
            Ok(()) => Ok(()),
            Err(Broadcast::Caller(payload)) => Err(TeamError::Panicked {
                worker: 0,
                payload: TeamError::panic_message(payload.as_ref()),
            }),
            Err(Broadcast::Worker(err)) => Err(err),
        }
    }

    /// Cancellable [`TaskTeam::try_coforall`]: each task consults
    /// `is_cancelled` before running its body (and the whole broadcast
    /// is skipped when it is already set), so a tripped run guard stops
    /// scheduling new task bodies. Returns [`TeamError::Cancelled`] when
    /// the predicate was set before or during the broadcast; bodies that
    /// did run ran to completion.
    ///
    /// The predicate is a plain `Fn() -> bool` rather than a guard type
    /// so this crate stays independent of `splatt-guard`; pass
    /// `|| guard.is_cancelled()`.
    pub fn coforall_cancellable<F, C>(&self, is_cancelled: &C, f: F) -> Result<(), TeamError>
    where
        F: Fn(usize) + Sync,
        C: Fn() -> bool + Sync,
    {
        if is_cancelled() {
            return Err(TeamError::Cancelled);
        }
        self.try_coforall(|tid| {
            if !is_cancelled() {
                f(tid);
            }
        })?;
        if is_cancelled() {
            return Err(TeamError::Cancelled);
        }
        Ok(())
    }

    /// The broadcast core shared by the `coforall` variants.
    fn broadcast<F>(&self, f: &F) -> Result<(), Broadcast>
    where
        F: Fn(usize) + Sync,
    {
        fn call_impl<F: Fn(usize) + Sync>(data: *const (), tid: usize) {
            // SAFETY: `data` points at the `f` borrowed by the enclosing
            // `broadcast` frame, which blocks until `remaining == 0`; thus
            // the referent is alive for every invocation.
            let f = unsafe { &*(data as *const F) };
            f(tid);
        }

        if self.ntasks == 1 {
            return catch_unwind(AssertUnwindSafe(|| f(0))).map_err(Broadcast::Caller);
        }

        let job = JobRef {
            data: f as *const F as *const (),
            call: call_impl::<F>,
        };

        self.shared.panicked.store(false, Ordering::Relaxed);
        *self.shared.panic_info.lock() = None;
        self.shared
            .remaining
            .store(self.ntasks - 1, Ordering::Relaxed);
        {
            let mut slot = self.shared.job.lock();
            *slot = Some(job);
        }
        // Publish the new generation and wake any parked workers.
        self.shared.generation.fetch_add(1, Ordering::Release);
        {
            let _guard = self.shared.idle_lock.lock();
            self.shared.idle_cv.notify_all();
        }

        // Task 0 runs on the caller.
        let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        // Wait for the workers: spin briefly, then park.
        let mut spins = 0u32;
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            if spins < self.shared.config.spin_count {
                spins += 1;
                std::hint::spin_loop();
            } else {
                let mut guard = self.shared.done_lock.lock();
                if self.shared.remaining.load(Ordering::Acquire) != 0 {
                    self.shared.done_cv.wait(&mut guard);
                }
            }
        }

        if let Err(payload) = caller_result {
            return Err(Broadcast::Caller(payload));
        }
        if self.shared.panicked.load(Ordering::Relaxed) {
            let (worker, payload) = self
                .shared
                .panic_info
                .lock()
                .take()
                .unwrap_or_else(|| (0, "<panic message lost>".to_string()));
            return Err(Broadcast::Worker(TeamError::Panicked { worker, payload }));
        }
        Ok(())
    }

    /// [`TaskTeam::coforall`] with per-thread busy-time recording: each
    /// task's wall time in `f` is accumulated into `times[tid]`, making
    /// load imbalance across the team observable. `f` returns the number
    /// of work items it processed (any caller-defined unit), recorded
    /// alongside the time.
    ///
    /// The timing happens inside the broadcast closure, so it measures the
    /// task body only — not spin-up, park/unpark, or the completion wait.
    ///
    /// # Panics
    /// Panics if `times` has fewer slots than the team has tasks, or if
    /// any task panicked.
    pub fn coforall_timed<F>(&self, times: &TaskTimes, f: F)
    where
        F: Fn(usize) -> u64 + Sync,
    {
        assert!(
            times.ntasks() >= self.ntasks,
            "TaskTimes has {} slots for a {}-task team",
            times.ntasks(),
            self.ntasks
        );
        self.coforall(|tid| {
            let start = Instant::now();
            let items = f(tid);
            times.record(tid, start.elapsed(), items);
        });
    }
}

impl Drop for TaskTeam {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // bump the generation so spinning workers notice, and wake parked ones
        self.shared.generation.fetch_add(1, Ordering::Release);
        {
            let _guard = self.shared.idle_lock.lock();
            self.shared.idle_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, tid: usize) {
    let mut seen_gen = 0u64;
    loop {
        // Wait for a generation newer than the last one we executed:
        // spin `spin_count` times, then park (the Qthreads policy).
        let mut spins = 0u32;
        let new_gen = loop {
            let g = shared.generation.load(Ordering::Acquire);
            if g != seen_gen {
                break g;
            }
            if spins < shared.config.spin_count {
                spins += 1;
                std::hint::spin_loop();
            } else {
                let mut guard = shared.idle_lock.lock();
                let g = shared.generation.load(Ordering::Acquire);
                if g != seen_gen {
                    break g;
                }
                shared.idle_cv.wait(&mut guard);
            }
        };
        seen_gen = new_gen;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let job = {
            let slot = shared.job.lock();
            match *slot {
                Some(job) => job,
                // Spurious generation bump without a job (shutdown race).
                None => continue,
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| (job.call)(job.data, tid)));
        if let Err(payload) = result {
            let mut info = shared.panic_info.lock();
            if info.is_none() {
                *info = Some((tid, TeamError::panic_message(payload.as_ref())));
            }
            drop(info);
            shared.panicked.store(true, Ordering::Relaxed);
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = shared.done_lock.lock();
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_tid_exactly_once() {
        let team = TaskTeam::new(8);
        let counts: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        team.coforall(|tid| {
            counts[tid].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_task_team_runs_inline() {
        let team = TaskTeam::new(1);
        let flag = AtomicBool::new(false);
        team.coforall(|tid| {
            assert_eq!(tid, 0);
            flag.store(true, Ordering::Relaxed);
        });
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn repeated_broadcasts_reuse_workers() {
        let team = TaskTeam::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            team.coforall(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn results_are_visible_after_coforall() {
        // coforall must establish happens-before for plain (non-atomic)
        // writes partitioned by tid.
        let team = TaskTeam::new(4);
        let mut data = vec![0usize; 4000];
        let chunks: Vec<Mutex<&mut [usize]>> = data.chunks_mut(1000).map(Mutex::new).collect();
        team.coforall(|tid| {
            for v in chunks[tid].lock().iter_mut() {
                *v = tid + 1;
            }
        });
        drop(chunks);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 1000 + 1);
        }
    }

    #[test]
    fn fifo_config_parks_immediately_and_still_works() {
        let team = TaskTeam::with_config(3, TeamConfig::fifo());
        let total = AtomicUsize::new(0);
        for _ in 0..20 {
            team.coforall(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
            // let workers actually park between broadcasts
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(total.load(Ordering::Relaxed), 60);
    }

    #[test]
    fn short_spin_config_works() {
        let team = TaskTeam::with_config(2, TeamConfig::short_spin());
        let total = AtomicUsize::new(0);
        for _ in 0..10 {
            team.coforall(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let team = TaskTeam::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            team.coforall(|tid| {
                if tid == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // team must still be usable afterwards
        let total = AtomicUsize::new(0);
        team.coforall(|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn try_coforall_returns_typed_error_with_worker_and_payload() {
        let team = TaskTeam::new(4);
        let err = team
            .try_coforall(|tid| {
                if tid == 2 {
                    panic!("kernel exploded on tile {tid}");
                }
            })
            .unwrap_err();
        assert_eq!(
            err,
            TeamError::Panicked {
                worker: 2,
                payload: "kernel exploded on tile 2".to_string(),
            }
        );
        assert!(err.to_string().contains("task 2"));
        // team must still be usable afterwards
        team.try_coforall(|_| {}).unwrap();
    }

    #[test]
    fn try_coforall_reports_caller_panic_as_worker_zero() {
        let team = TaskTeam::new(2);
        let err = team
            .try_coforall(|tid| {
                if tid == 0 {
                    panic!("driver-side failure");
                }
            })
            .unwrap_err();
        assert_eq!(
            err,
            TeamError::Panicked {
                worker: 0,
                payload: "driver-side failure".to_string(),
            }
        );
    }

    #[test]
    fn try_coforall_single_task_team_is_fallible_too() {
        let team = TaskTeam::new(1);
        let err = team.try_coforall(|_| panic!("inline")).unwrap_err();
        assert!(matches!(err, TeamError::Panicked { worker: 0, .. }));
        team.try_coforall(|_| {}).unwrap();
    }

    #[test]
    fn coforall_panic_message_names_the_worker() {
        let team = TaskTeam::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            team.coforall(|tid| {
                if tid == 3 {
                    panic!("boom");
                }
            });
        }));
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("task 3"), "message was: {msg}");
        assert!(msg.contains("boom"), "message was: {msg}");
    }

    #[test]
    fn coforall_cancellable_skips_bodies_once_cancelled() {
        let team = TaskTeam::new(4);
        let ran = AtomicUsize::new(0);

        // Already cancelled: no body runs at all.
        let err = team
            .coforall_cancellable(&|| true, |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert_eq!(err, TeamError::Cancelled);
        assert_eq!(ran.load(Ordering::Relaxed), 0);

        // Not cancelled: all bodies run.
        team.coforall_cancellable(&|| false, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 4);

        // Cancelled mid-broadcast: the error surfaces even though some
        // bodies ran.
        let flag = AtomicBool::new(false);
        let err = team
            .coforall_cancellable(&|| flag.load(Ordering::Relaxed), |tid| {
                if tid == 0 {
                    flag.store(true, Ordering::Relaxed);
                }
            })
            .unwrap_err();
        assert_eq!(err, TeamError::Cancelled);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        let _ = TaskTeam::new(0);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        for _ in 0..5 {
            let team = TaskTeam::new(3);
            team.coforall(|_| {});
            drop(team); // must not hang or leak
        }
    }

    #[test]
    fn coforall_timed_records_each_task() {
        let team = TaskTeam::new(4);
        let times = TaskTimes::new(4);
        for _ in 0..3 {
            team.coforall_timed(&times, |tid| {
                std::hint::black_box(tid);
                (tid + 1) as u64
            });
        }
        let snap = times.snapshot();
        for (tid, row) in snap.threads.iter().enumerate() {
            assert_eq!(row.invocations, 3, "tid {tid}");
            assert_eq!(row.items, 3 * (tid as u64 + 1), "tid {tid}");
        }
    }

    #[test]
    #[should_panic(expected = "slots for a")]
    fn coforall_timed_rejects_undersized_times() {
        let team = TaskTeam::new(4);
        let times = TaskTimes::new(2);
        team.coforall_timed(&times, |_| 0);
    }
}
