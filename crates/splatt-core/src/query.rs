//! Query kernels over a decomposed Kruskal model — the compute layer of
//! the serving subsystem.
//!
//! Three query kinds, all brute-force dense reconstruction from the
//! factors (the downstream counterpart of the paper's pattern-extraction
//! use case):
//!
//! * [`entry_values`] — reconstruct the modeled value at a batch of
//!   coordinates.
//! * [`slice_values`] — reconstruct the full dense slice obtained by
//!   fixing one `(mode, index)` pair, row-major over the remaining modes.
//! * [`top_k`] — score every index along one mode against fixed
//!   coordinates in all other modes and return the `k` best, ties broken
//!   toward the lower index.
//!
//! Every value is produced by the same scalar evaluation as
//! [`crate::reference::kruskal_value`] — same association, same summation
//! order — so batched answers are **bit-identical** to the unbatched
//! dense-reconstruction oracle, the invariant the serving property tests
//! pin down.
//!
//! Kernels take a [`QueryArena`]: a grow-only scratch (the PR 4 kernel
//! discipline) so the steady-state query hot path allocates nothing once
//! warmed up per shape. Growth is reported to `splatt-probe`'s
//! kernel-scratch counters and to the arena's own monotonic counters,
//! which the serving stats surface for allocation-free certification.

use crate::kruskal::KruskalModel;
use crate::reference::kruskal_value;

/// Why a query cannot be answered against a given model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Mode index `mode` out of range for a model of order `order`.
    ModeOutOfRange { mode: usize, order: usize },
    /// Coordinate `index` out of range for mode `mode` of size `dim`.
    CoordOutOfRange { mode: usize, index: u32, dim: usize },
    /// A coordinate tuple of the wrong length for the model's order.
    OrderMismatch { got: usize, order: usize },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ModeOutOfRange { mode, order } => {
                write!(f, "mode {mode} out of range for order-{order} model")
            }
            QueryError::CoordOutOfRange { mode, index, dim } => {
                write!(
                    f,
                    "coordinate {index} out of range for mode {mode} (dim {dim})"
                )
            }
            QueryError::OrderMismatch { got, order } => {
                write!(f, "{got} coordinates for an order-{order} model")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Grow-only scratch for the query kernels: one coordinate buffer, one
/// score buffer, one candidate-index buffer. Buffers never shrink; after
/// the first query of each shape the kernels allocate nothing.
#[derive(Debug, Default)]
pub struct QueryArena {
    coord: Vec<u32>,
    scores: Vec<f64>,
    ranked: Vec<u32>,
    growth_allocs: u64,
    growth_bytes: u64,
}

impl QueryArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        QueryArena::default()
    }

    /// Number of times any buffer grew (monotonic).
    pub fn growth_allocs(&self) -> u64 {
        self.growth_allocs
    }

    /// Total bytes of growth (monotonic).
    pub fn growth_bytes(&self) -> u64 {
        self.growth_bytes
    }

    fn record(&mut self, bytes: usize) {
        if bytes > 0 {
            self.growth_allocs += 1;
            self.growth_bytes += bytes as u64;
            splatt_probe::alloc::record_kernel_scratch(bytes);
        }
    }

    fn coord_buf(&mut self, order: usize) -> &mut [u32] {
        if self.coord.len() < order {
            let bytes = (order - self.coord.len()) * std::mem::size_of::<u32>();
            self.coord.resize(order, 0);
            self.record(bytes);
        }
        &mut self.coord[..order]
    }

    fn score_bufs(&mut self, order: usize, dim: usize) -> (&mut [u32], &mut [f64], &mut [u32]) {
        if self.coord.len() < order {
            let bytes = (order - self.coord.len()) * std::mem::size_of::<u32>();
            self.coord.resize(order, 0);
            self.record(bytes);
        }
        if self.scores.len() < dim {
            let bytes = (dim - self.scores.len()) * std::mem::size_of::<f64>();
            self.scores.resize(dim, 0.0);
            self.record(bytes);
        }
        if self.ranked.len() < dim {
            let bytes = (dim - self.ranked.len()) * std::mem::size_of::<u32>();
            self.ranked.resize(dim, 0);
            self.record(bytes);
        }
        (
            &mut self.coord[..order],
            &mut self.scores[..dim],
            &mut self.ranked[..dim],
        )
    }
}

fn check_coord(model: &KruskalModel, coord: &[u32]) -> Result<(), QueryError> {
    let order = model.order();
    if coord.len() != order {
        return Err(QueryError::OrderMismatch {
            got: coord.len(),
            order,
        });
    }
    for (m, (&i, f)) in coord.iter().zip(&model.factors).enumerate() {
        if i as usize >= f.rows() {
            return Err(QueryError::CoordOutOfRange {
                mode: m,
                index: i,
                dim: f.rows(),
            });
        }
    }
    Ok(())
}

/// Reconstruct the modeled value at each coordinate tuple of `coords`
/// (flat, `order` entries per tuple) into `out`.
///
/// # Errors
/// Rejects coordinate tuples that do not tile `coords` exactly or fall
/// outside the model's dimensions; `out` is only fully written on `Ok`.
///
/// # Panics
/// Panics if `out.len() != coords.len() / order`.
pub fn entry_values(
    model: &KruskalModel,
    coords: &[u32],
    out: &mut [f64],
) -> Result<(), QueryError> {
    let order = model.order();
    if order == 0 || !coords.len().is_multiple_of(order) {
        return Err(QueryError::OrderMismatch {
            got: coords.len(),
            order,
        });
    }
    let count = coords.len() / order;
    assert_eq!(out.len(), count, "entry_values: output length mismatch");
    for (slot, coord) in out.iter_mut().zip(coords.chunks_exact(order)) {
        check_coord(model, coord)?;
        *slot = kruskal_value(&model.lambda, &model.factors, coord);
    }
    Ok(())
}

/// Number of entries in the dense slice obtained by fixing `mode`.
pub fn slice_len(model: &KruskalModel, mode: usize) -> Result<usize, QueryError> {
    let order = model.order();
    if mode >= order {
        return Err(QueryError::ModeOutOfRange { mode, order });
    }
    Ok(model
        .factors
        .iter()
        .enumerate()
        .filter(|(m, _)| *m != mode)
        .map(|(_, f)| f.rows())
        .product())
}

/// Reconstruct the dense slice `X[.., index, ..]` (fixing `mode` at
/// `index`) into `out`, row-major over the remaining modes in ascending
/// mode order.
///
/// # Errors
/// Rejects out-of-range `mode`/`index`.
///
/// # Panics
/// Panics if `out.len() != slice_len(model, mode)`.
pub fn slice_values(
    model: &KruskalModel,
    mode: usize,
    index: u32,
    arena: &mut QueryArena,
    out: &mut [f64],
) -> Result<(), QueryError> {
    let len = slice_len(model, mode)?;
    let dim = model.factors[mode].rows();
    if index as usize >= dim {
        return Err(QueryError::CoordOutOfRange { mode, index, dim });
    }
    assert_eq!(out.len(), len, "slice_values: output length mismatch");
    let order = model.order();
    let coord = arena.coord_buf(order);
    coord[mode] = index;
    // Mixed-radix walk over the remaining modes: the *last* free mode
    // varies fastest (row-major).
    for (m, c) in coord.iter_mut().enumerate() {
        if m != mode {
            *c = 0;
        }
    }
    for slot in out.iter_mut() {
        *slot = kruskal_value(&model.lambda, &model.factors, coord);
        // increment the free-mode odometer
        for m in (0..order).rev() {
            if m == mode {
                continue;
            }
            coord[m] += 1;
            if (coord[m] as usize) < model.factors[m].rows() {
                break;
            }
            coord[m] = 0;
        }
    }
    Ok(())
}

/// Score every index along `mode` against `fixed` (coordinates for the
/// other modes, ascending mode order) and append the `k` best
/// `(index, score)` pairs to `out`, scores descending, ties broken
/// toward the lower index. `k` is clamped to the mode's dimension.
///
/// Each score is the full dense-reconstruction value at the assembled
/// coordinate, so rankings are bit-consistent with [`entry_values`].
///
/// # Errors
/// Rejects out-of-range `mode` and malformed or out-of-range `fixed`.
pub fn top_k(
    model: &KruskalModel,
    mode: usize,
    k: usize,
    fixed: &[u32],
    arena: &mut QueryArena,
    out: &mut Vec<(u32, f64)>,
) -> Result<(), QueryError> {
    let order = model.order();
    if mode >= order {
        return Err(QueryError::ModeOutOfRange { mode, order });
    }
    if fixed.len() + 1 != order {
        return Err(QueryError::OrderMismatch {
            got: fixed.len(),
            order,
        });
    }
    let dim = model.factors[mode].rows();
    let (coord, scores, ranked) = arena.score_bufs(order, dim);
    {
        let mut fx = fixed.iter();
        for (m, c) in coord.iter_mut().enumerate() {
            if m != mode {
                *c = *fx.next().expect("fixed length checked above");
            }
        }
    }
    for (m, &c) in coord.iter().enumerate() {
        if m != mode && c as usize >= model.factors[m].rows() {
            return Err(QueryError::CoordOutOfRange {
                mode: m,
                index: c,
                dim: model.factors[m].rows(),
            });
        }
    }
    for (i, score) in scores.iter_mut().enumerate() {
        coord[mode] = i as u32;
        *score = kruskal_value(&model.lambda, &model.factors, coord);
    }
    for (i, r) in ranked.iter_mut().enumerate() {
        *r = i as u32;
    }
    // total_cmp gives a deterministic order even for NaN scores
    // (degenerate models); index ascends within equal scores.
    ranked.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    let take = k.min(dim);
    out.reserve(take);
    for &i in &ranked[..take] {
        out.push((i, scores[i as usize]));
    }
    Ok(())
}

/// Shard-restricted [`top_k`]: score only the mode-`mode` indices in
/// `rows` (each scored exactly as `top_k` scores it, so partial answers
/// are bit-identical to the full kernel on the covered rows) and append
/// the `k` best `(global index, score)` pairs to `out`, scores
/// descending, ties broken toward the lower global index. `k` is clamped
/// to `rows.len()`.
///
/// A cluster router merges these per-shard partial heaps with the same
/// comparator to reproduce the single-process oracle bit-for-bit.
///
/// # Errors
/// Rejects out-of-range `mode`, malformed or out-of-range `fixed`, and
/// out-of-range entries of `rows`.
pub fn top_k_rows(
    model: &KruskalModel,
    mode: usize,
    k: usize,
    fixed: &[u32],
    rows: &[u32],
    arena: &mut QueryArena,
    out: &mut Vec<(u32, f64)>,
) -> Result<(), QueryError> {
    let order = model.order();
    if mode >= order {
        return Err(QueryError::ModeOutOfRange { mode, order });
    }
    if fixed.len() + 1 != order {
        return Err(QueryError::OrderMismatch {
            got: fixed.len(),
            order,
        });
    }
    let dim = model.factors[mode].rows();
    for &r in rows {
        if r as usize >= dim {
            return Err(QueryError::CoordOutOfRange {
                mode,
                index: r,
                dim,
            });
        }
    }
    let (coord, scores, ranked) = arena.score_bufs(order, rows.len());
    {
        let mut fx = fixed.iter();
        for (m, c) in coord.iter_mut().enumerate() {
            if m != mode {
                *c = *fx.next().expect("fixed length checked above");
            }
        }
    }
    for (m, &c) in coord.iter().enumerate() {
        if m != mode && c as usize >= model.factors[m].rows() {
            return Err(QueryError::CoordOutOfRange {
                mode: m,
                index: c,
                dim: model.factors[m].rows(),
            });
        }
    }
    for (&r, score) in rows.iter().zip(scores.iter_mut()) {
        coord[mode] = r;
        *score = kruskal_value(&model.lambda, &model.factors, coord);
    }
    for (i, slot) in ranked.iter_mut().enumerate() {
        *slot = i as u32;
    }
    // Same total order as `top_k`, with ties on the *global* index so a
    // merge across shards reproduces the oracle ordering.
    ranked.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(rows[a as usize].cmp(&rows[b as usize]))
    });
    let take = k.min(rows.len());
    out.reserve(take);
    for &i in &ranked[..take] {
        out.push((rows[i as usize], scores[i as usize]));
    }
    Ok(())
}

/// Shard-restricted [`slice_values`] for `mode != 0`: reconstruct only
/// the sub-blocks of the slice whose mode-0 coordinate is in `rows`,
/// concatenated in the given row order. In the full slice layout (free
/// modes ascending, last fastest) mode 0 is the slowest free mode, so
/// the block for mode-0 index `i` occupies
/// `out_full[i * block .. (i + 1) * block]` where
/// `block = slice_len / dim0`; each block here is bit-identical to the
/// full kernel's, which is what lets a router stitch per-shard partials
/// into the oracle answer.
///
/// # Errors
/// Rejects `mode == 0` (the sharded mode cannot also be the fixed one),
/// out-of-range `mode`/`index`, and out-of-range entries of `rows`.
///
/// # Panics
/// Panics if `out.len() != rows.len() * block`.
pub fn slice_values_rows(
    model: &KruskalModel,
    mode: usize,
    index: u32,
    rows: &[u32],
    arena: &mut QueryArena,
    out: &mut [f64],
) -> Result<(), QueryError> {
    let order = model.order();
    if mode == 0 || mode >= order {
        return Err(QueryError::ModeOutOfRange { mode, order });
    }
    let dim = model.factors[mode].rows();
    if index as usize >= dim {
        return Err(QueryError::CoordOutOfRange { mode, index, dim });
    }
    let dim0 = model.factors[0].rows();
    for &r in rows {
        if r as usize >= dim0 {
            return Err(QueryError::CoordOutOfRange {
                mode: 0,
                index: r,
                dim: dim0,
            });
        }
    }
    let block: usize = model
        .factors
        .iter()
        .enumerate()
        .filter(|(m, _)| *m != mode && *m != 0)
        .map(|(_, f)| f.rows())
        .product();
    assert_eq!(
        out.len(),
        rows.len() * block,
        "slice_values_rows: output length mismatch"
    );
    let coord = arena.coord_buf(order);
    coord[mode] = index;
    for (&row, chunk) in rows.iter().zip(out.chunks_exact_mut(block.max(1))) {
        coord[0] = row;
        for (m, c) in coord.iter_mut().enumerate() {
            if m != mode && m != 0 {
                *c = 0;
            }
        }
        for slot in chunk.iter_mut() {
            *slot = kruskal_value(&model.lambda, &model.factors, coord);
            // Same odometer as the full kernel, minus the pinned mode 0.
            for m in (1..order).rev() {
                if m == mode {
                    continue;
                }
                coord[m] += 1;
                if (coord[m] as usize) < model.factors[m].rows() {
                    break;
                }
                coord[m] = 0;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_dense::Matrix;

    fn model() -> KruskalModel {
        KruskalModel {
            lambda: vec![2.0, 0.5],
            factors: vec![
                Matrix::random(4, 2, 10),
                Matrix::random(3, 2, 11),
                Matrix::random(5, 2, 12),
            ],
        }
    }

    #[test]
    fn entries_match_the_scalar_oracle_bit_for_bit() {
        let m = model();
        let coords: Vec<u32> = vec![0, 0, 0, 3, 2, 4, 1, 1, 2];
        let mut out = vec![0.0; 3];
        entry_values(&m, &coords, &mut out).unwrap();
        for (chunk, &got) in coords.chunks_exact(3).zip(&out) {
            let want = kruskal_value(&m.lambda, &m.factors, chunk);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn entry_rejects_bad_coords() {
        let m = model();
        let mut out = vec![0.0; 1];
        assert!(matches!(
            entry_values(&m, &[0, 0], &mut out),
            Err(QueryError::OrderMismatch { .. })
        ));
        assert!(matches!(
            entry_values(&m, &[0, 3, 0], &mut out),
            Err(QueryError::CoordOutOfRange { mode: 1, .. })
        ));
    }

    #[test]
    fn slice_walks_row_major_over_free_modes() {
        let m = model();
        let mut arena = QueryArena::new();
        for mode in 0..3 {
            let len = slice_len(&m, mode).unwrap();
            let mut out = vec![0.0; len];
            slice_values(&m, mode, 1, &mut arena, &mut out).unwrap();
            // spot-check via explicit coordinates
            let dims = [4usize, 3, 5];
            let free: Vec<usize> = (0..3).filter(|&x| x != mode).collect();
            let mut j = 0usize;
            let mut c0 = 0usize;
            while c0 < dims[free[0]] {
                for c1 in 0..dims[free[1]] {
                    let mut coord = [0u32; 3];
                    coord[mode] = 1;
                    coord[free[0]] = c0 as u32;
                    coord[free[1]] = c1 as u32;
                    let want = kruskal_value(&m.lambda, &m.factors, &coord);
                    assert_eq!(out[j].to_bits(), want.to_bits(), "mode {mode} j {j}");
                    j += 1;
                }
                c0 += 1;
            }
        }
    }

    #[test]
    fn slice_rejects_out_of_range() {
        let m = model();
        let mut arena = QueryArena::new();
        let mut out = vec![0.0; 15];
        assert!(matches!(
            slice_values(&m, 3, 0, &mut arena, &mut out),
            Err(QueryError::ModeOutOfRange { .. })
        ));
        assert!(matches!(
            slice_values(&m, 0, 9, &mut arena, &mut out),
            Err(QueryError::CoordOutOfRange { .. })
        ));
    }

    #[test]
    fn top_k_ranks_descending_with_index_ties() {
        // Factor rows 0 and 2 identical -> tied scores -> index order.
        let m = KruskalModel {
            lambda: vec![1.0],
            factors: vec![
                Matrix::from_vec(4, 1, vec![0.5, 0.9, 0.5, 0.1]),
                Matrix::from_vec(2, 1, vec![1.0, 0.0]),
            ],
        };
        let mut arena = QueryArena::new();
        let mut out = Vec::new();
        top_k(&m, 0, 4, &[0], &mut arena, &mut out).unwrap();
        let idx: Vec<u32> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![1, 0, 2, 3]);
        assert_eq!(out[1].1.to_bits(), out[2].1.to_bits());
    }

    #[test]
    fn top_k_clamps_and_validates() {
        let m = model();
        let mut arena = QueryArena::new();
        let mut out = Vec::new();
        top_k(&m, 1, 100, &[0, 0], &mut arena, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        out.clear();
        assert!(matches!(
            top_k(&m, 1, 2, &[0], &mut arena, &mut out),
            Err(QueryError::OrderMismatch { .. })
        ));
        assert!(matches!(
            top_k(&m, 1, 2, &[9, 0], &mut arena, &mut out),
            Err(QueryError::CoordOutOfRange { mode: 0, .. })
        ));
    }

    #[test]
    fn rank_zero_model_scores_zero_everywhere() {
        let m = KruskalModel {
            lambda: vec![],
            factors: vec![Matrix::zeros(3, 0), Matrix::zeros(2, 0)],
        };
        let mut out = vec![1.0; 2];
        entry_values(&m, &[0, 0, 2, 1], &mut out).unwrap();
        assert_eq!(out, vec![0.0, 0.0]);
        let mut arena = QueryArena::new();
        let mut ranked = Vec::new();
        top_k(&m, 0, 2, &[1], &mut arena, &mut ranked).unwrap();
        assert_eq!(ranked, vec![(0, 0.0), (1, 0.0)]);
    }

    #[test]
    fn top_k_rows_partials_merge_into_the_full_answer() {
        let m = model();
        let mut arena = QueryArena::new();
        // Full answer over mode 0 (dim 4).
        let mut full = Vec::new();
        top_k(&m, 0, 4, &[1, 2], &mut arena, &mut full).unwrap();
        // Two disjoint "shards" of rows, deliberately unsorted partitions.
        let mut merged = Vec::new();
        for rows in [[0u32, 2].as_slice(), [1u32, 3].as_slice()] {
            top_k_rows(&m, 0, 4, &[1, 2], rows, &mut arena, &mut merged).unwrap();
        }
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(4);
        assert_eq!(full.len(), merged.len());
        for (f, g) in full.iter().zip(&merged) {
            assert_eq!(f.0, g.0);
            assert_eq!(f.1.to_bits(), g.1.to_bits());
        }
        // Per-shard answers clamp k to the shard's row count.
        let mut part = Vec::new();
        top_k_rows(&m, 0, 10, &[0, 0], &[2], &mut arena, &mut part).unwrap();
        assert_eq!(part.len(), 1);
        assert_eq!(part[0].0, 2);
    }

    #[test]
    fn top_k_rows_validates_rows_and_fixed() {
        let m = model();
        let mut arena = QueryArena::new();
        let mut out = Vec::new();
        assert!(matches!(
            top_k_rows(&m, 0, 2, &[0, 0], &[9], &mut arena, &mut out),
            Err(QueryError::CoordOutOfRange { mode: 0, .. })
        ));
        assert!(matches!(
            top_k_rows(&m, 0, 2, &[0], &[1], &mut arena, &mut out),
            Err(QueryError::OrderMismatch { .. })
        ));
        assert!(matches!(
            top_k_rows(&m, 5, 2, &[0, 0], &[1], &mut arena, &mut out),
            Err(QueryError::ModeOutOfRange { .. })
        ));
    }

    #[test]
    fn slice_rows_blocks_stitch_into_the_full_slice() {
        let m = model(); // dims 4 x 3 x 5
        let mut arena = QueryArena::new();
        for mode in 1..3usize {
            let len = slice_len(&m, mode).unwrap();
            let mut full = vec![0.0; len];
            slice_values(&m, mode, 1, &mut arena, &mut full).unwrap();
            let dim0 = 4usize;
            let block = len / dim0;
            // Owned rows {0, 2} and {1, 3} stitched by global row index.
            let mut stitched = vec![f64::NAN; len];
            for rows in [[0u32, 2].as_slice(), [1u32, 3].as_slice()] {
                let mut part = vec![0.0; rows.len() * block];
                slice_values_rows(&m, mode, 1, rows, &mut arena, &mut part).unwrap();
                for (j, &r) in rows.iter().enumerate() {
                    let dst = r as usize * block;
                    stitched[dst..dst + block].copy_from_slice(&part[j * block..(j + 1) * block]);
                }
            }
            for (a, b) in full.iter().zip(&stitched) {
                assert_eq!(a.to_bits(), b.to_bits(), "mode {mode}");
            }
        }
    }

    #[test]
    fn slice_rows_rejects_mode_zero_and_bad_rows() {
        let m = model();
        let mut arena = QueryArena::new();
        let mut out = vec![0.0; 5];
        assert!(matches!(
            slice_values_rows(&m, 0, 1, &[0], &mut arena, &mut out),
            Err(QueryError::ModeOutOfRange { .. })
        ));
        assert!(matches!(
            slice_values_rows(&m, 1, 9, &[0], &mut arena, &mut out),
            Err(QueryError::CoordOutOfRange { mode: 1, .. })
        ));
        assert!(matches!(
            slice_values_rows(&m, 1, 1, &[7], &mut arena, &mut out),
            Err(QueryError::CoordOutOfRange { mode: 0, .. })
        ));
    }

    #[test]
    fn arena_growth_is_warmup_only() {
        let m = model();
        let mut arena = QueryArena::new();
        let mut out = Vec::new();
        top_k(&m, 0, 2, &[0, 0], &mut arena, &mut out).unwrap();
        let mut slice = vec![0.0; slice_len(&m, 2).unwrap()];
        slice_values(&m, 2, 0, &mut arena, &mut slice).unwrap();
        let (allocs, bytes) = (arena.growth_allocs(), arena.growth_bytes());
        assert!(allocs > 0 && bytes > 0);
        for _ in 0..10 {
            out.clear();
            top_k(&m, 0, 2, &[1, 1], &mut arena, &mut out).unwrap();
            slice_values(&m, 2, 3, &mut arena, &mut slice).unwrap();
            let mut vals = [0.0];
            entry_values(&m, &[1, 1, 1], &mut vals).unwrap();
        }
        assert_eq!(arena.growth_allocs(), allocs, "steady state grew the arena");
        assert_eq!(arena.growth_bytes(), bytes);
    }
}
