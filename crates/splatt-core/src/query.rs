//! Query kernels over a decomposed Kruskal model — the compute layer of
//! the serving subsystem.
//!
//! Three query kinds, all brute-force dense reconstruction from the
//! factors (the downstream counterpart of the paper's pattern-extraction
//! use case):
//!
//! * [`entry_values`] — reconstruct the modeled value at a batch of
//!   coordinates.
//! * [`slice_values`] — reconstruct the full dense slice obtained by
//!   fixing one `(mode, index)` pair, row-major over the remaining modes.
//! * [`top_k`] — score every index along one mode against fixed
//!   coordinates in all other modes and return the `k` best, ties broken
//!   toward the lower index.
//!
//! Every value is produced by the same scalar evaluation as
//! [`crate::reference::kruskal_value`] — same association, same summation
//! order — so batched answers are **bit-identical** to the unbatched
//! dense-reconstruction oracle, the invariant the serving property tests
//! pin down.
//!
//! Kernels take a [`QueryArena`]: a grow-only scratch (the PR 4 kernel
//! discipline) so the steady-state query hot path allocates nothing once
//! warmed up per shape. Growth is reported to `splatt-probe`'s
//! kernel-scratch counters and to the arena's own monotonic counters,
//! which the serving stats surface for allocation-free certification.

use crate::kruskal::KruskalModel;
use crate::reference::kruskal_value;

/// Why a query cannot be answered against a given model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Mode index `mode` out of range for a model of order `order`.
    ModeOutOfRange { mode: usize, order: usize },
    /// Coordinate `index` out of range for mode `mode` of size `dim`.
    CoordOutOfRange { mode: usize, index: u32, dim: usize },
    /// A coordinate tuple of the wrong length for the model's order.
    OrderMismatch { got: usize, order: usize },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ModeOutOfRange { mode, order } => {
                write!(f, "mode {mode} out of range for order-{order} model")
            }
            QueryError::CoordOutOfRange { mode, index, dim } => {
                write!(
                    f,
                    "coordinate {index} out of range for mode {mode} (dim {dim})"
                )
            }
            QueryError::OrderMismatch { got, order } => {
                write!(f, "{got} coordinates for an order-{order} model")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Grow-only scratch for the query kernels: one coordinate buffer, one
/// score buffer, one candidate-index buffer. Buffers never shrink; after
/// the first query of each shape the kernels allocate nothing.
#[derive(Debug, Default)]
pub struct QueryArena {
    coord: Vec<u32>,
    scores: Vec<f64>,
    ranked: Vec<u32>,
    growth_allocs: u64,
    growth_bytes: u64,
}

impl QueryArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        QueryArena::default()
    }

    /// Number of times any buffer grew (monotonic).
    pub fn growth_allocs(&self) -> u64 {
        self.growth_allocs
    }

    /// Total bytes of growth (monotonic).
    pub fn growth_bytes(&self) -> u64 {
        self.growth_bytes
    }

    fn record(&mut self, bytes: usize) {
        if bytes > 0 {
            self.growth_allocs += 1;
            self.growth_bytes += bytes as u64;
            splatt_probe::alloc::record_kernel_scratch(bytes);
        }
    }

    fn coord_buf(&mut self, order: usize) -> &mut [u32] {
        if self.coord.len() < order {
            let bytes = (order - self.coord.len()) * std::mem::size_of::<u32>();
            self.coord.resize(order, 0);
            self.record(bytes);
        }
        &mut self.coord[..order]
    }

    fn score_bufs(&mut self, order: usize, dim: usize) -> (&mut [u32], &mut [f64], &mut [u32]) {
        if self.coord.len() < order {
            let bytes = (order - self.coord.len()) * std::mem::size_of::<u32>();
            self.coord.resize(order, 0);
            self.record(bytes);
        }
        if self.scores.len() < dim {
            let bytes = (dim - self.scores.len()) * std::mem::size_of::<f64>();
            self.scores.resize(dim, 0.0);
            self.record(bytes);
        }
        if self.ranked.len() < dim {
            let bytes = (dim - self.ranked.len()) * std::mem::size_of::<u32>();
            self.ranked.resize(dim, 0);
            self.record(bytes);
        }
        (
            &mut self.coord[..order],
            &mut self.scores[..dim],
            &mut self.ranked[..dim],
        )
    }
}

fn check_coord(model: &KruskalModel, coord: &[u32]) -> Result<(), QueryError> {
    let order = model.order();
    if coord.len() != order {
        return Err(QueryError::OrderMismatch {
            got: coord.len(),
            order,
        });
    }
    for (m, (&i, f)) in coord.iter().zip(&model.factors).enumerate() {
        if i as usize >= f.rows() {
            return Err(QueryError::CoordOutOfRange {
                mode: m,
                index: i,
                dim: f.rows(),
            });
        }
    }
    Ok(())
}

/// Reconstruct the modeled value at each coordinate tuple of `coords`
/// (flat, `order` entries per tuple) into `out`.
///
/// # Errors
/// Rejects coordinate tuples that do not tile `coords` exactly or fall
/// outside the model's dimensions; `out` is only fully written on `Ok`.
///
/// # Panics
/// Panics if `out.len() != coords.len() / order`.
pub fn entry_values(
    model: &KruskalModel,
    coords: &[u32],
    out: &mut [f64],
) -> Result<(), QueryError> {
    let order = model.order();
    if order == 0 || !coords.len().is_multiple_of(order) {
        return Err(QueryError::OrderMismatch {
            got: coords.len(),
            order,
        });
    }
    let count = coords.len() / order;
    assert_eq!(out.len(), count, "entry_values: output length mismatch");
    for (slot, coord) in out.iter_mut().zip(coords.chunks_exact(order)) {
        check_coord(model, coord)?;
        *slot = kruskal_value(&model.lambda, &model.factors, coord);
    }
    Ok(())
}

/// Number of entries in the dense slice obtained by fixing `mode`.
pub fn slice_len(model: &KruskalModel, mode: usize) -> Result<usize, QueryError> {
    let order = model.order();
    if mode >= order {
        return Err(QueryError::ModeOutOfRange { mode, order });
    }
    Ok(model
        .factors
        .iter()
        .enumerate()
        .filter(|(m, _)| *m != mode)
        .map(|(_, f)| f.rows())
        .product())
}

/// Reconstruct the dense slice `X[.., index, ..]` (fixing `mode` at
/// `index`) into `out`, row-major over the remaining modes in ascending
/// mode order.
///
/// # Errors
/// Rejects out-of-range `mode`/`index`.
///
/// # Panics
/// Panics if `out.len() != slice_len(model, mode)`.
pub fn slice_values(
    model: &KruskalModel,
    mode: usize,
    index: u32,
    arena: &mut QueryArena,
    out: &mut [f64],
) -> Result<(), QueryError> {
    let len = slice_len(model, mode)?;
    let dim = model.factors[mode].rows();
    if index as usize >= dim {
        return Err(QueryError::CoordOutOfRange { mode, index, dim });
    }
    assert_eq!(out.len(), len, "slice_values: output length mismatch");
    let order = model.order();
    let coord = arena.coord_buf(order);
    coord[mode] = index;
    // Mixed-radix walk over the remaining modes: the *last* free mode
    // varies fastest (row-major).
    for (m, c) in coord.iter_mut().enumerate() {
        if m != mode {
            *c = 0;
        }
    }
    for slot in out.iter_mut() {
        *slot = kruskal_value(&model.lambda, &model.factors, coord);
        // increment the free-mode odometer
        for m in (0..order).rev() {
            if m == mode {
                continue;
            }
            coord[m] += 1;
            if (coord[m] as usize) < model.factors[m].rows() {
                break;
            }
            coord[m] = 0;
        }
    }
    Ok(())
}

/// Score every index along `mode` against `fixed` (coordinates for the
/// other modes, ascending mode order) and append the `k` best
/// `(index, score)` pairs to `out`, scores descending, ties broken
/// toward the lower index. `k` is clamped to the mode's dimension.
///
/// Each score is the full dense-reconstruction value at the assembled
/// coordinate, so rankings are bit-consistent with [`entry_values`].
///
/// # Errors
/// Rejects out-of-range `mode` and malformed or out-of-range `fixed`.
pub fn top_k(
    model: &KruskalModel,
    mode: usize,
    k: usize,
    fixed: &[u32],
    arena: &mut QueryArena,
    out: &mut Vec<(u32, f64)>,
) -> Result<(), QueryError> {
    let order = model.order();
    if mode >= order {
        return Err(QueryError::ModeOutOfRange { mode, order });
    }
    if fixed.len() + 1 != order {
        return Err(QueryError::OrderMismatch {
            got: fixed.len(),
            order,
        });
    }
    let dim = model.factors[mode].rows();
    let (coord, scores, ranked) = arena.score_bufs(order, dim);
    {
        let mut fx = fixed.iter();
        for (m, c) in coord.iter_mut().enumerate() {
            if m != mode {
                *c = *fx.next().expect("fixed length checked above");
            }
        }
    }
    for (m, &c) in coord.iter().enumerate() {
        if m != mode && c as usize >= model.factors[m].rows() {
            return Err(QueryError::CoordOutOfRange {
                mode: m,
                index: c,
                dim: model.factors[m].rows(),
            });
        }
    }
    for (i, score) in scores.iter_mut().enumerate() {
        coord[mode] = i as u32;
        *score = kruskal_value(&model.lambda, &model.factors, coord);
    }
    for (i, r) in ranked.iter_mut().enumerate() {
        *r = i as u32;
    }
    // total_cmp gives a deterministic order even for NaN scores
    // (degenerate models); index ascends within equal scores.
    ranked.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    let take = k.min(dim);
    out.reserve(take);
    for &i in &ranked[..take] {
        out.push((i, scores[i as usize]));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_dense::Matrix;

    fn model() -> KruskalModel {
        KruskalModel {
            lambda: vec![2.0, 0.5],
            factors: vec![
                Matrix::random(4, 2, 10),
                Matrix::random(3, 2, 11),
                Matrix::random(5, 2, 12),
            ],
        }
    }

    #[test]
    fn entries_match_the_scalar_oracle_bit_for_bit() {
        let m = model();
        let coords: Vec<u32> = vec![0, 0, 0, 3, 2, 4, 1, 1, 2];
        let mut out = vec![0.0; 3];
        entry_values(&m, &coords, &mut out).unwrap();
        for (chunk, &got) in coords.chunks_exact(3).zip(&out) {
            let want = kruskal_value(&m.lambda, &m.factors, chunk);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn entry_rejects_bad_coords() {
        let m = model();
        let mut out = vec![0.0; 1];
        assert!(matches!(
            entry_values(&m, &[0, 0], &mut out),
            Err(QueryError::OrderMismatch { .. })
        ));
        assert!(matches!(
            entry_values(&m, &[0, 3, 0], &mut out),
            Err(QueryError::CoordOutOfRange { mode: 1, .. })
        ));
    }

    #[test]
    fn slice_walks_row_major_over_free_modes() {
        let m = model();
        let mut arena = QueryArena::new();
        for mode in 0..3 {
            let len = slice_len(&m, mode).unwrap();
            let mut out = vec![0.0; len];
            slice_values(&m, mode, 1, &mut arena, &mut out).unwrap();
            // spot-check via explicit coordinates
            let dims = [4usize, 3, 5];
            let free: Vec<usize> = (0..3).filter(|&x| x != mode).collect();
            let mut j = 0usize;
            let mut c0 = 0usize;
            while c0 < dims[free[0]] {
                for c1 in 0..dims[free[1]] {
                    let mut coord = [0u32; 3];
                    coord[mode] = 1;
                    coord[free[0]] = c0 as u32;
                    coord[free[1]] = c1 as u32;
                    let want = kruskal_value(&m.lambda, &m.factors, &coord);
                    assert_eq!(out[j].to_bits(), want.to_bits(), "mode {mode} j {j}");
                    j += 1;
                }
                c0 += 1;
            }
        }
    }

    #[test]
    fn slice_rejects_out_of_range() {
        let m = model();
        let mut arena = QueryArena::new();
        let mut out = vec![0.0; 15];
        assert!(matches!(
            slice_values(&m, 3, 0, &mut arena, &mut out),
            Err(QueryError::ModeOutOfRange { .. })
        ));
        assert!(matches!(
            slice_values(&m, 0, 9, &mut arena, &mut out),
            Err(QueryError::CoordOutOfRange { .. })
        ));
    }

    #[test]
    fn top_k_ranks_descending_with_index_ties() {
        // Factor rows 0 and 2 identical -> tied scores -> index order.
        let m = KruskalModel {
            lambda: vec![1.0],
            factors: vec![
                Matrix::from_vec(4, 1, vec![0.5, 0.9, 0.5, 0.1]),
                Matrix::from_vec(2, 1, vec![1.0, 0.0]),
            ],
        };
        let mut arena = QueryArena::new();
        let mut out = Vec::new();
        top_k(&m, 0, 4, &[0], &mut arena, &mut out).unwrap();
        let idx: Vec<u32> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![1, 0, 2, 3]);
        assert_eq!(out[1].1.to_bits(), out[2].1.to_bits());
    }

    #[test]
    fn top_k_clamps_and_validates() {
        let m = model();
        let mut arena = QueryArena::new();
        let mut out = Vec::new();
        top_k(&m, 1, 100, &[0, 0], &mut arena, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        out.clear();
        assert!(matches!(
            top_k(&m, 1, 2, &[0], &mut arena, &mut out),
            Err(QueryError::OrderMismatch { .. })
        ));
        assert!(matches!(
            top_k(&m, 1, 2, &[9, 0], &mut arena, &mut out),
            Err(QueryError::CoordOutOfRange { mode: 0, .. })
        ));
    }

    #[test]
    fn rank_zero_model_scores_zero_everywhere() {
        let m = KruskalModel {
            lambda: vec![],
            factors: vec![Matrix::zeros(3, 0), Matrix::zeros(2, 0)],
        };
        let mut out = vec![1.0; 2];
        entry_values(&m, &[0, 0, 2, 1], &mut out).unwrap();
        assert_eq!(out, vec![0.0, 0.0]);
        let mut arena = QueryArena::new();
        let mut ranked = Vec::new();
        top_k(&m, 0, 2, &[1], &mut arena, &mut ranked).unwrap();
        assert_eq!(ranked, vec![(0, 0.0), (1, 0.0)]);
    }

    #[test]
    fn arena_growth_is_warmup_only() {
        let m = model();
        let mut arena = QueryArena::new();
        let mut out = Vec::new();
        top_k(&m, 0, 2, &[0, 0], &mut arena, &mut out).unwrap();
        let mut slice = vec![0.0; slice_len(&m, 2).unwrap()];
        slice_values(&m, 2, 0, &mut arena, &mut slice).unwrap();
        let (allocs, bytes) = (arena.growth_allocs(), arena.growth_bytes());
        assert!(allocs > 0 && bytes > 0);
        for _ in 0..10 {
            out.clear();
            top_k(&m, 0, 2, &[1, 1], &mut arena, &mut out).unwrap();
            slice_values(&m, 2, 3, &mut arena, &mut slice).unwrap();
            let mut vals = [0.0];
            entry_values(&m, &[1, 1, 1], &mut vals).unwrap();
        }
        assert_eq!(arena.growth_allocs(), allocs, "steady state grew the arena");
        assert_eq!(arena.growth_bytes(), bytes);
    }
}
