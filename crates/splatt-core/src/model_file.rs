//! Standalone, bit-exact Kruskal model files — the serving layer's
//! on-disk model format.
//!
//! A CP-ALS checkpoint ([`crate::Checkpoint`]) carries *solver* state:
//! iteration count, fit history, and the factors. Serving needs only the
//! model — `lambda` plus the factor matrices — so this module extracts
//! that payload into its own magic-tagged container. Like checkpoints,
//! values are serialized as IEEE-754 bit patterns (`f64::to_bits` hex),
//! so `load(save(m)) ≡ m` holds **bit for bit**: a model exported on one
//! machine scores identically everywhere it is served.
//!
//! [`load_model_path`] additionally sniffs the other two formats the
//! workspace produces — a full checkpoint (the model is extracted) and
//! the decimal-text `splatt-kruskal` format ([`KruskalModel::read`],
//! *not* bit-exact) — so `splatt export-model` and `splatt serve` accept
//! whatever a pipeline already has on disk.

use crate::checkpoint::Checkpoint;
use crate::kruskal::KruskalModel;
use splatt_dense::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Error, ErrorKind, Read, Write};
use std::path::Path;

/// Magic/format header; bump only with a format change.
pub const MODEL_HEADER: &str = "splatt-model-v1";

fn bad(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

fn hex_line<'a>(
    out: &mut impl Write,
    values: impl Iterator<Item = &'a f64>,
) -> std::io::Result<()> {
    let mut first = true;
    for v in values {
        if !first {
            write!(out, " ")?;
        }
        write!(out, "{:016x}", v.to_bits())?;
        first = false;
    }
    writeln!(out)
}

fn parse_hex_line(line: &str, expect: usize) -> std::io::Result<Vec<f64>> {
    let vals: Vec<f64> = line
        .split_whitespace()
        .map(|t| {
            u64::from_str_radix(t, 16)
                .map(f64::from_bits)
                .map_err(|_| bad(format!("invalid f64 bit pattern '{t}'")))
        })
        .collect::<Result<_, _>>()?;
    if vals.len() != expect {
        return Err(bad(format!(
            "expected {expect} values, found {}",
            vals.len()
        )));
    }
    Ok(vals)
}

/// Serialize `model` in the bit-exact `splatt-model-v1` format.
///
/// # Errors
/// Propagates I/O failures.
pub fn save_model(model: &KruskalModel, w: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "{MODEL_HEADER} rank {} order {}",
        model.rank(),
        model.order()
    )?;
    hex_line(&mut w, model.lambda.iter())?;
    for f in &model.factors {
        writeln!(w, "factor {} {}", f.rows(), f.cols())?;
        for i in 0..f.rows() {
            hex_line(&mut w, f.row(i).iter())?;
        }
    }
    w.flush()
}

/// Parse a model written by [`save_model`].
///
/// # Errors
/// Returns `InvalidData` on malformed content.
pub fn load_model(r: impl Read) -> std::io::Result<KruskalModel> {
    let mut lines = BufReader::new(r).lines();
    let mut next = || -> std::io::Result<String> {
        lines
            .next()
            .ok_or_else(|| bad("unexpected end of model file"))?
    };

    let header = next()?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 5 || parts[0] != MODEL_HEADER || parts[1] != "rank" || parts[3] != "order" {
        return Err(bad(format!("missing {MODEL_HEADER} header")));
    }
    let rank: usize = parts[2].parse().map_err(|_| bad("bad rank"))?;
    let order: usize = parts[4].parse().map_err(|_| bad("bad order"))?;

    let lambda = parse_hex_line(&next()?, rank)?;
    let mut factors = Vec::with_capacity(order);
    for _ in 0..order {
        let head = next()?;
        let parts: Vec<&str> = head.split_whitespace().collect();
        if parts.len() != 3 || parts[0] != "factor" {
            return Err(bad("missing factor header"));
        }
        let rows: usize = parts[1].parse().map_err(|_| bad("bad row count"))?;
        let cols: usize = parts[2].parse().map_err(|_| bad("bad col count"))?;
        if cols != rank {
            return Err(bad(format!("factor has {cols} columns but rank is {rank}")));
        }
        // Cap the up-front reservation: `rows` comes from untrusted
        // bytes, and a corrupt header must fail at the first missing
        // line, not reserve rows*cols floats here.
        let mut data = Vec::with_capacity(rows.saturating_mul(cols).min(1 << 22));
        for _ in 0..rows {
            data.extend(parse_hex_line(&next()?, cols)?);
        }
        factors.push(Matrix::from_vec(rows, cols, data));
    }
    Ok(KruskalModel { lambda, factors })
}

/// Serialize `model` to `path` as a CRC-framed artifact published
/// atomically (`write temp → fsync → rename → fsync dir`): a crash at
/// any point leaves either the previous file or the complete new one,
/// and any later torn/flipped bytes fail the checksum instead of
/// parsing. `generation` stamps the frame (e.g. a refresh counter).
///
/// # Errors
/// Propagates I/O failures; injected-fault and corruption errors from
/// the store are converted to `InvalidData`.
pub fn save_model_path(model: &KruskalModel, path: &Path, generation: u64) -> std::io::Result<()> {
    let mut payload = Vec::new();
    save_model(model, &mut payload)?;
    splatt_store::publish_artifact(path, generation, &payload, None).map_err(std::io::Error::from)
}

/// Extract the model payload from a checkpoint: the serving layer does
/// not need the iteration count or fit history.
pub fn model_from_checkpoint(ckpt: Checkpoint) -> KruskalModel {
    KruskalModel {
        lambda: ckpt.lambda,
        factors: ckpt.factors,
    }
}

/// Load a model from any on-disk format the workspace produces, sniffed
/// by header line: `splatt-model-v1` (bit-exact), `splatt-checkpoint-v1`
/// (model extracted from the solver state), or the decimal-text
/// `splatt-kruskal` format.
///
/// # Errors
/// Returns `InvalidData` for unrecognized or malformed content and
/// propagates I/O failures.
pub fn load_model_path(path: &Path) -> std::io::Result<KruskalModel> {
    let raw = std::fs::read(path)?;
    // Framed artifacts (written by `save_model_path` / checkpoint
    // saves) are checksum-verified before any parsing; the payload is
    // then sniffed like a bare file.
    let bytes = if splatt_store::is_framed(&raw) {
        splatt_store::unwrap_artifact(&raw, path)
            .map_err(std::io::Error::from)?
            .payload
    } else {
        raw
    };
    let first_line = bytes
        .split(|&b| b == b'\n')
        .next()
        .map(String::from_utf8_lossy)
        .unwrap_or_default();
    if first_line.starts_with(MODEL_HEADER) {
        load_model(bytes.as_slice())
    } else if first_line.starts_with(crate::checkpoint::CHECKPOINT_HEADER) {
        let ckpt = Checkpoint::read(bytes.as_slice())
            .map_err(|e| bad(format!("checkpoint parse: {e}")))?;
        Ok(model_from_checkpoint(ckpt))
    } else if first_line.starts_with("splatt-kruskal") {
        KruskalModel::read(bytes.as_slice())
    } else {
        Err(bad(format!(
            "'{}' is not a splatt model, checkpoint, or kruskal file",
            path.display()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KruskalModel {
        KruskalModel {
            lambda: vec![1.5, -0.0, f64::MIN_POSITIVE],
            factors: vec![
                Matrix::random(5, 3, 1),
                Matrix::random(4, 3, 2),
                Matrix::random(6, 3, 3),
            ],
        }
    }

    fn bits(m: &KruskalModel) -> (Vec<u64>, Vec<Vec<u64>>) {
        (
            m.lambda.iter().map(|v| v.to_bits()).collect(),
            m.factors
                .iter()
                .map(|f| f.as_slice().iter().map(|v| v.to_bits()).collect())
                .collect(),
        )
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let model = sample();
        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        let back = load_model(buf.as_slice()).unwrap();
        assert_eq!(bits(&back), bits(&model));
        for (a, b) in back.factors.iter().zip(&model.factors) {
            assert_eq!(a.shape(), b.shape());
        }
    }

    #[test]
    fn nan_and_inf_survive_roundtrip() {
        let mut model = sample();
        model.lambda = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        let back = load_model(buf.as_slice()).unwrap();
        assert!(back.lambda[0].is_nan());
        assert_eq!(back.lambda[1], f64::INFINITY);
        assert_eq!(back.lambda[2], f64::NEG_INFINITY);
    }

    #[test]
    fn empty_and_singleton_models_roundtrip() {
        for model in [
            KruskalModel {
                lambda: vec![],
                factors: vec![Matrix::zeros(3, 0), Matrix::zeros(2, 0)],
            },
            KruskalModel {
                lambda: vec![2.0],
                factors: vec![Matrix::filled(1, 1, 0.5), Matrix::filled(1, 1, -0.25)],
            },
        ] {
            let mut buf = Vec::new();
            save_model(&model, &mut buf).unwrap();
            let back = load_model(buf.as_slice()).unwrap();
            assert_eq!(bits(&back), bits(&model));
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load_model("not a model".as_bytes()).is_err());
        assert!(load_model("".as_bytes()).is_err());
        let mut buf = Vec::new();
        save_model(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(load_model(truncated.as_bytes()).is_err());
        let corrupt = text.replacen("factor", "fractal", 1);
        assert!(load_model(corrupt.as_bytes()).is_err());
    }

    #[test]
    fn path_loader_sniffs_all_three_formats() {
        let dir = std::env::temp_dir().join("splatt_model_file_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let model = sample();

        let model_path = dir.join("m.splatt");
        save_model(&model, std::fs::File::create(&model_path).unwrap()).unwrap();
        assert_eq!(bits(&load_model_path(&model_path).unwrap()), bits(&model));

        let ckpt = Checkpoint {
            iteration: 4,
            lambda: model.lambda.clone(),
            fits: vec![0.5; 4],
            factors: model.factors.clone(),
        };
        let ckpt_path = ckpt.write_to_dir(&dir).unwrap();
        assert_eq!(bits(&load_model_path(&ckpt_path).unwrap()), bits(&model));

        let text_path = dir.join("m.kruskal");
        model
            .write(std::fs::File::create(&text_path).unwrap())
            .unwrap();
        let back = load_model_path(&text_path).unwrap();
        assert_eq!(back.rank(), model.rank());
        assert_eq!(back.order(), model.order());

        let junk_path = dir.join("junk.txt");
        std::fs::write(&junk_path, "hello world\n").unwrap();
        assert!(load_model_path(&junk_path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn framed_save_round_trips_and_detects_damage() {
        let dir = std::env::temp_dir().join("splatt_model_framed_unit");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let model = sample();
        let path = dir.join("m.splatt");
        save_model_path(&model, &path, 3).unwrap();

        let bytes = std::fs::read(&path).unwrap();
        assert!(splatt_store::is_framed(&bytes), "model must be framed");
        assert_eq!(bits(&load_model_path(&path).unwrap()), bits(&model));

        // Truncations and bit flips must be typed errors, never a
        // silently wrong model.
        for cut in [1usize, bytes.len() / 3, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(load_model_path(&path).is_err(), "cut at {cut}");
        }
        let mut damaged = bytes.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x01;
        std::fs::write(&path, &damaged).unwrap();
        assert!(load_model_path(&path).is_err(), "bit flip undetected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_factor_header_is_an_error_not_an_allocation_bomb() {
        let mut buf = Vec::new();
        save_model(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let huge = text.replacen("factor 5 3", "factor 99999999999 3", 1);
        assert!(load_model(huge.as_bytes()).is_err());
    }
}
