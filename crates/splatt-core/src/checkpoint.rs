//! Per-iteration CP-ALS checkpoints with **bit-exact** round-tripping.
//!
//! A checkpoint captures the complete solver state at an iteration
//! boundary: the iteration count, the column-norm weights `lambda`, the
//! fit history, and every factor matrix. Gram matrices are *not* stored —
//! they are recomputed from the factors on resume, and since `mat_ata` is
//! deterministic the recomputed values are bit-identical to what the
//! uninterrupted run held.
//!
//! Values are serialized as IEEE-754 bit patterns (`f64::to_bits` hex),
//! not decimal text, so `resume(checkpoint(k)) ≡ run-through` holds
//! **bit for bit** — the invariant the fault-tolerance tests pin down.

use splatt_dense::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic/format header; bump only with a format change.
pub const CHECKPOINT_HEADER: &str = "splatt-checkpoint-v1";

/// Errors produced while writing or reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed checkpoint content (line number is 1-based).
    Parse { line: usize, message: String },
    /// A structurally valid checkpoint that does not match the run it
    /// was asked to resume (wrong dims, rank, or iteration count).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint line {line}: {message}")
            }
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Complete CP-ALS state at an iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Number of *completed* iterations (resume starts at this index).
    pub iteration: usize,
    /// Column-norm weights after the last completed iteration.
    pub lambda: Vec<f64>,
    /// Fit after each completed iteration (`fits.len() == iteration`
    /// for checkpoints produced by the driver).
    pub fits: Vec<f64>,
    /// One factor matrix per mode.
    pub factors: Vec<Matrix>,
}

fn hex_line<'a>(
    out: &mut impl Write,
    values: impl Iterator<Item = &'a f64>,
) -> std::io::Result<()> {
    let mut first = true;
    for v in values {
        if !first {
            write!(out, " ")?;
        }
        write!(out, "{:016x}", v.to_bits())?;
        first = false;
    }
    writeln!(out)
}

fn parse_hex_line(line: &str, lineno: usize, expect: usize) -> Result<Vec<f64>, CheckpointError> {
    let vals: Vec<f64> = line
        .split_whitespace()
        .map(|t| {
            u64::from_str_radix(t, 16)
                .map(f64::from_bits)
                .map_err(|_| CheckpointError::Parse {
                    line: lineno,
                    message: format!("invalid f64 bit pattern '{t}'"),
                })
        })
        .collect::<Result<_, _>>()?;
    if vals.len() != expect {
        return Err(CheckpointError::Parse {
            line: lineno,
            message: format!("expected {expect} values, found {}", vals.len()),
        });
    }
    Ok(vals)
}

impl Checkpoint {
    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.lambda.len()
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.factors.len()
    }

    /// Serialize to a writer (text lines, hex bit patterns for floats).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write(&self, w: impl Write) -> Result<(), CheckpointError> {
        let mut w = BufWriter::new(w);
        writeln!(
            w,
            "{CHECKPOINT_HEADER} iteration {} rank {} order {} fits {}",
            self.iteration,
            self.rank(),
            self.order(),
            self.fits.len()
        )?;
        hex_line(&mut w, self.lambda.iter())?;
        hex_line(&mut w, self.fits.iter())?;
        for f in &self.factors {
            writeln!(w, "factor {} {}", f.rows(), f.cols())?;
            for i in 0..f.rows() {
                hex_line(&mut w, f.row(i).iter())?;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Parse a checkpoint written by [`Checkpoint::write`].
    ///
    /// # Errors
    /// [`CheckpointError::Parse`] on malformed content, [`CheckpointError::Io`]
    /// on read failures.
    pub fn read(r: impl Read) -> Result<Checkpoint, CheckpointError> {
        let mut lines = BufReader::new(r).lines();
        let mut lineno = 0usize;
        let mut next = |lineno: &mut usize| -> Result<String, CheckpointError> {
            *lineno += 1;
            lines
                .next()
                .ok_or(CheckpointError::Parse {
                    line: *lineno,
                    message: "unexpected end of checkpoint".to_string(),
                })?
                .map_err(CheckpointError::Io)
        };

        let header = next(&mut lineno)?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 9
            || parts[0] != CHECKPOINT_HEADER
            || parts[1] != "iteration"
            || parts[3] != "rank"
            || parts[5] != "order"
            || parts[7] != "fits"
        {
            return Err(CheckpointError::Parse {
                line: 1,
                message: format!("missing {CHECKPOINT_HEADER} header"),
            });
        }
        let field = |s: &str, what: &str| -> Result<usize, CheckpointError> {
            s.parse().map_err(|_| CheckpointError::Parse {
                line: 1,
                message: format!("bad {what} '{s}'"),
            })
        };
        let iteration = field(parts[2], "iteration")?;
        let rank = field(parts[4], "rank")?;
        let order = field(parts[6], "order")?;
        let nfits = field(parts[8], "fit count")?;

        let lambda = parse_hex_line(&next(&mut lineno)?, lineno, rank)?;
        let fits = parse_hex_line(&next(&mut lineno)?, lineno, nfits)?;

        let mut factors = Vec::with_capacity(order);
        for _ in 0..order {
            let head = next(&mut lineno)?;
            let parts: Vec<&str> = head.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "factor" {
                return Err(CheckpointError::Parse {
                    line: lineno,
                    message: "missing factor header".to_string(),
                });
            }
            let rows: usize = parts[1].parse().map_err(|_| CheckpointError::Parse {
                line: lineno,
                message: format!("bad row count '{}'", parts[1]),
            })?;
            let cols: usize = parts[2].parse().map_err(|_| CheckpointError::Parse {
                line: lineno,
                message: format!("bad col count '{}'", parts[2]),
            })?;
            if cols != rank {
                return Err(CheckpointError::Parse {
                    line: lineno,
                    message: format!("factor has {cols} columns but rank is {rank}"),
                });
            }
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows {
                data.extend(parse_hex_line(&next(&mut lineno)?, lineno, cols)?);
            }
            factors.push(Matrix::from_vec(rows, cols, data));
        }
        Ok(Checkpoint {
            iteration,
            lambda,
            fits,
            factors,
        })
    }

    /// Write to `dir/ckpt-{iteration:05}.splatt`, returning the path.
    ///
    /// # Errors
    /// Propagates I/O failures (the directory is created if missing).
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("ckpt-{:05}.splatt", self.iteration));
        self.write(std::fs::File::create(&path)?)?;
        Ok(path)
    }

    /// Read a checkpoint file from disk.
    ///
    /// # Errors
    /// See [`Checkpoint::read`].
    pub fn read_from(path: &Path) -> Result<Checkpoint, CheckpointError> {
        Self::read(std::fs::File::open(path)?)
    }

    /// The highest-iteration `ckpt-*.splatt` in `dir`, if any.
    ///
    /// # Errors
    /// Propagates directory-listing failures.
    pub fn latest_in(dir: &Path) -> Result<Option<PathBuf>, CheckpointError> {
        let mut best: Option<PathBuf> = None;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n,
                None => continue,
            };
            if name.starts_with("ckpt-")
                && name.ends_with(".splatt")
                && best
                    .as_ref()
                    .is_none_or(|b| b.file_name().and_then(|n| n.to_str()).unwrap_or("") < name)
            {
                best = Some(path);
            }
        }
        Ok(best)
    }

    /// Validate this checkpoint against the run about to resume from it.
    ///
    /// # Errors
    /// [`CheckpointError::Mismatch`] naming the first discrepancy.
    pub fn validate(
        &self,
        dims: &[usize],
        rank: usize,
        max_iters: usize,
    ) -> Result<(), CheckpointError> {
        if self.rank() != rank {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint rank {} vs requested rank {rank}",
                self.rank()
            )));
        }
        if self.order() != dims.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint order {} vs tensor order {}",
                self.order(),
                dims.len()
            )));
        }
        for (m, (f, &d)) in self.factors.iter().zip(dims).enumerate() {
            if f.rows() != d {
                return Err(CheckpointError::Mismatch(format!(
                    "mode {m}: checkpoint factor has {} rows, tensor dim is {d}",
                    f.rows()
                )));
            }
        }
        if self.iteration >= max_iters {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint already at iteration {} of max_iters {max_iters}",
                self.iteration
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            iteration: 7,
            lambda: vec![1.5, -0.0, f64::MIN_POSITIVE],
            fits: vec![0.1, 0.25, 0.3, 0.999999999999, 0.5, 0.6, 0.7],
            factors: vec![
                Matrix::random(5, 3, 1),
                Matrix::random(4, 3, 2),
                Matrix::random(6, 3, 3),
            ],
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        let back = Checkpoint::read(buf.as_slice()).unwrap();
        assert_eq!(back.iteration, ck.iteration);
        assert_eq!(
            back.lambda.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ck.lambda.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            back.fits.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ck.fits.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        for (a, b) in back.factors.iter().zip(&ck.factors) {
            assert_eq!(a.shape(), b.shape());
            let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn nan_and_inf_survive_roundtrip() {
        let mut ck = sample();
        ck.lambda = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        let back = Checkpoint::read(buf.as_slice()).unwrap();
        assert!(back.lambda[0].is_nan());
        assert_eq!(back.lambda[1], f64::INFINITY);
        assert_eq!(back.lambda[2], f64::NEG_INFINITY);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Checkpoint::read("not a checkpoint".as_bytes()).is_err());
        assert!(Checkpoint::read("".as_bytes()).is_err());
        // truncated factor section
        let mut buf = Vec::new();
        sample().write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            Checkpoint::read(truncated.as_bytes()),
            Err(CheckpointError::Parse { .. })
        ));
        // corrupt hex
        let corrupt = text.replacen("factor", "fractal", 1);
        assert!(Checkpoint::read(corrupt.as_bytes()).is_err());
    }

    #[test]
    fn validate_catches_mismatches() {
        let ck = sample();
        assert!(ck.validate(&[5, 4, 6], 3, 20).is_ok());
        assert!(matches!(
            ck.validate(&[5, 4, 6], 4, 20),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(ck.validate(&[5, 4], 3, 20).is_err());
        assert!(ck.validate(&[5, 4, 7], 3, 20).is_err());
        assert!(
            ck.validate(&[5, 4, 6], 3, 7).is_err(),
            "iteration >= max_iters"
        );
    }

    #[test]
    fn dir_write_and_latest() {
        let dir = std::env::temp_dir().join("splatt_ckpt_unit");
        std::fs::remove_dir_all(&dir).ok();
        let mut ck = sample();
        ck.iteration = 3;
        let p3 = ck.write_to_dir(&dir).unwrap();
        ck.iteration = 11;
        let p11 = ck.write_to_dir(&dir).unwrap();
        assert!(p3.exists() && p11.exists());
        assert_eq!(Checkpoint::latest_in(&dir).unwrap(), Some(p11.clone()));
        let back = Checkpoint::read_from(&p11).unwrap();
        assert_eq!(back.iteration, 11);
        std::fs::remove_dir_all(&dir).ok();
    }
}
