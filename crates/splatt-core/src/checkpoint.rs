//! Per-iteration CP-ALS checkpoints with **bit-exact** round-tripping.
//!
//! A checkpoint captures the complete solver state at an iteration
//! boundary: the iteration count, the column-norm weights `lambda`, the
//! fit history, and every factor matrix. Gram matrices are *not* stored —
//! they are recomputed from the factors on resume, and since `mat_ata` is
//! deterministic the recomputed values are bit-identical to what the
//! uninterrupted run held.
//!
//! Values are serialized as IEEE-754 bit patterns (`f64::to_bits` hex),
//! not decimal text, so `resume(checkpoint(k)) ≡ run-through` holds
//! **bit for bit** — the invariant the fault-tolerance tests pin down.
//!
//! On disk, [`Checkpoint::write_to_dir`] wraps the text payload in a
//! `splatt-store` CRC-framed artifact and publishes it atomically
//! (`write temp → fsync → rename → fsync dir`), so a crash mid-save
//! leaves either the previous checkpoint or the complete new one —
//! never a parseable-but-truncated file. [`Checkpoint::read_from`]
//! verifies the frame checksum before parsing and still accepts the
//! legacy unframed format for files written by older builds.

use splatt_dense::Matrix;
use splatt_store::StoreError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic/format header; bump only with a format change.
pub const CHECKPOINT_HEADER: &str = "splatt-checkpoint-v1";

/// Errors produced while writing or reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed checkpoint content (line number is 1-based).
    Parse { line: usize, message: String },
    /// A structurally valid checkpoint that does not match the run it
    /// was asked to resume (wrong dims, rank, or iteration count).
    Mismatch(String),
    /// The CRC-framed container failed verification (torn file, bit
    /// flip, trailing junk) — the payload was never parsed.
    Corrupt(StoreError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint line {line}: {message}")
            }
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::Corrupt(e) => write!(f, "checkpoint container corrupt: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<StoreError> for CheckpointError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => CheckpointError::Io(io),
            other => CheckpointError::Corrupt(other),
        }
    }
}

/// Complete CP-ALS state at an iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Number of *completed* iterations (resume starts at this index).
    pub iteration: usize,
    /// Column-norm weights after the last completed iteration.
    pub lambda: Vec<f64>,
    /// Fit after each completed iteration (`fits.len() == iteration`
    /// for checkpoints produced by the driver).
    pub fits: Vec<f64>,
    /// One factor matrix per mode.
    pub factors: Vec<Matrix>,
}

fn hex_line<'a>(
    out: &mut impl Write,
    values: impl Iterator<Item = &'a f64>,
) -> std::io::Result<()> {
    let mut first = true;
    for v in values {
        if !first {
            write!(out, " ")?;
        }
        write!(out, "{:016x}", v.to_bits())?;
        first = false;
    }
    writeln!(out)
}

fn parse_hex_line(line: &str, lineno: usize, expect: usize) -> Result<Vec<f64>, CheckpointError> {
    let vals: Vec<f64> = line
        .split_whitespace()
        .map(|t| {
            u64::from_str_radix(t, 16)
                .map(f64::from_bits)
                .map_err(|_| CheckpointError::Parse {
                    line: lineno,
                    message: format!("invalid f64 bit pattern '{t}'"),
                })
        })
        .collect::<Result<_, _>>()?;
    if vals.len() != expect {
        return Err(CheckpointError::Parse {
            line: lineno,
            message: format!("expected {expect} values, found {}", vals.len()),
        });
    }
    Ok(vals)
}

impl Checkpoint {
    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.lambda.len()
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.factors.len()
    }

    /// Serialize to a writer (text lines, hex bit patterns for floats).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write(&self, w: impl Write) -> Result<(), CheckpointError> {
        let mut w = BufWriter::new(w);
        writeln!(
            w,
            "{CHECKPOINT_HEADER} iteration {} rank {} order {} fits {}",
            self.iteration,
            self.rank(),
            self.order(),
            self.fits.len()
        )?;
        hex_line(&mut w, self.lambda.iter())?;
        hex_line(&mut w, self.fits.iter())?;
        for f in &self.factors {
            writeln!(w, "factor {} {}", f.rows(), f.cols())?;
            for i in 0..f.rows() {
                hex_line(&mut w, f.row(i).iter())?;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Parse a checkpoint written by [`Checkpoint::write`].
    ///
    /// # Errors
    /// [`CheckpointError::Parse`] on malformed content, [`CheckpointError::Io`]
    /// on read failures.
    pub fn read(r: impl Read) -> Result<Checkpoint, CheckpointError> {
        let mut lines = BufReader::new(r).lines();
        let mut lineno = 0usize;
        let mut next = |lineno: &mut usize| -> Result<String, CheckpointError> {
            *lineno += 1;
            lines
                .next()
                .ok_or(CheckpointError::Parse {
                    line: *lineno,
                    message: "unexpected end of checkpoint".to_string(),
                })?
                .map_err(CheckpointError::Io)
        };

        let header = next(&mut lineno)?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 9
            || parts[0] != CHECKPOINT_HEADER
            || parts[1] != "iteration"
            || parts[3] != "rank"
            || parts[5] != "order"
            || parts[7] != "fits"
        {
            return Err(CheckpointError::Parse {
                line: 1,
                message: format!("missing {CHECKPOINT_HEADER} header"),
            });
        }
        let field = |s: &str, what: &str| -> Result<usize, CheckpointError> {
            s.parse().map_err(|_| CheckpointError::Parse {
                line: 1,
                message: format!("bad {what} '{s}'"),
            })
        };
        let iteration = field(parts[2], "iteration")?;
        let rank = field(parts[4], "rank")?;
        let order = field(parts[6], "order")?;
        let nfits = field(parts[8], "fit count")?;

        let lambda = parse_hex_line(&next(&mut lineno)?, lineno, rank)?;
        let fits = parse_hex_line(&next(&mut lineno)?, lineno, nfits)?;

        let mut factors = Vec::with_capacity(order);
        for _ in 0..order {
            let head = next(&mut lineno)?;
            let parts: Vec<&str> = head.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "factor" {
                return Err(CheckpointError::Parse {
                    line: lineno,
                    message: "missing factor header".to_string(),
                });
            }
            let rows: usize = parts[1].parse().map_err(|_| CheckpointError::Parse {
                line: lineno,
                message: format!("bad row count '{}'", parts[1]),
            })?;
            let cols: usize = parts[2].parse().map_err(|_| CheckpointError::Parse {
                line: lineno,
                message: format!("bad col count '{}'", parts[2]),
            })?;
            if cols != rank {
                return Err(CheckpointError::Parse {
                    line: lineno,
                    message: format!("factor has {cols} columns but rank is {rank}"),
                });
            }
            // Cap the up-front reservation: `rows` comes from untrusted
            // bytes, and a corrupt header must produce a Parse error at
            // the first missing line, not an allocation bomb here.
            let mut data = Vec::with_capacity(rows.saturating_mul(cols).min(1 << 22));
            for _ in 0..rows {
                data.extend(parse_hex_line(&next(&mut lineno)?, lineno, cols)?);
            }
            factors.push(Matrix::from_vec(rows, cols, data));
        }
        Ok(Checkpoint {
            iteration,
            lambda,
            fits,
            factors,
        })
    }

    /// Write to `dir/ckpt-{iteration:05}.splatt`, returning the path.
    ///
    /// The text payload is wrapped in a CRC-framed artifact stamped
    /// with the iteration number and published atomically: a crash at
    /// any point leaves either the previous file or the complete new
    /// one.
    ///
    /// # Errors
    /// Propagates I/O failures (the directory is created if missing).
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("ckpt-{:05}.splatt", self.iteration));
        let mut payload = Vec::new();
        self.write(&mut payload)?;
        splatt_store::publish_artifact(&path, self.iteration as u64, &payload, None)?;
        Ok(path)
    }

    /// Read a checkpoint file from disk: a framed artifact (checksum
    /// verified before parsing) or the legacy unframed text format.
    ///
    /// # Errors
    /// [`CheckpointError::Corrupt`] when the frame fails verification;
    /// otherwise see [`Checkpoint::read`].
    pub fn read_from(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = std::fs::read(path)?;
        if splatt_store::is_framed(&bytes) {
            let frame = splatt_store::unwrap_artifact(&bytes, path)?;
            Self::read(frame.payload.as_slice())
        } else {
            Self::read(bytes.as_slice())
        }
    }

    /// The highest-iteration `ckpt-*.splatt` in `dir`, if any.
    ///
    /// # Errors
    /// Propagates directory-listing failures.
    pub fn latest_in(dir: &Path) -> Result<Option<PathBuf>, CheckpointError> {
        let mut best: Option<PathBuf> = None;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n,
                None => continue,
            };
            if name.starts_with("ckpt-")
                && name.ends_with(".splatt")
                && best
                    .as_ref()
                    .is_none_or(|b| b.file_name().and_then(|n| n.to_str()).unwrap_or("") < name)
            {
                best = Some(path);
            }
        }
        Ok(best)
    }

    /// Validate this checkpoint against the run about to resume from it.
    ///
    /// # Errors
    /// [`CheckpointError::Mismatch`] naming the first discrepancy.
    pub fn validate(
        &self,
        dims: &[usize],
        rank: usize,
        max_iters: usize,
    ) -> Result<(), CheckpointError> {
        if self.rank() != rank {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint rank {} vs requested rank {rank}",
                self.rank()
            )));
        }
        if self.order() != dims.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint order {} vs tensor order {}",
                self.order(),
                dims.len()
            )));
        }
        for (m, (f, &d)) in self.factors.iter().zip(dims).enumerate() {
            if f.rows() != d {
                return Err(CheckpointError::Mismatch(format!(
                    "mode {m}: checkpoint factor has {} rows, tensor dim is {d}",
                    f.rows()
                )));
            }
        }
        if self.iteration >= max_iters {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint already at iteration {} of max_iters {max_iters}",
                self.iteration
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            iteration: 7,
            lambda: vec![1.5, -0.0, f64::MIN_POSITIVE],
            fits: vec![0.1, 0.25, 0.3, 0.999999999999, 0.5, 0.6, 0.7],
            factors: vec![
                Matrix::random(5, 3, 1),
                Matrix::random(4, 3, 2),
                Matrix::random(6, 3, 3),
            ],
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        let back = Checkpoint::read(buf.as_slice()).unwrap();
        assert_eq!(back.iteration, ck.iteration);
        assert_eq!(
            back.lambda.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ck.lambda.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            back.fits.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ck.fits.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        for (a, b) in back.factors.iter().zip(&ck.factors) {
            assert_eq!(a.shape(), b.shape());
            let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn nan_and_inf_survive_roundtrip() {
        let mut ck = sample();
        ck.lambda = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        let back = Checkpoint::read(buf.as_slice()).unwrap();
        assert!(back.lambda[0].is_nan());
        assert_eq!(back.lambda[1], f64::INFINITY);
        assert_eq!(back.lambda[2], f64::NEG_INFINITY);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Checkpoint::read("not a checkpoint".as_bytes()).is_err());
        assert!(Checkpoint::read("".as_bytes()).is_err());
        // truncated factor section
        let mut buf = Vec::new();
        sample().write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            Checkpoint::read(truncated.as_bytes()),
            Err(CheckpointError::Parse { .. })
        ));
        // corrupt hex
        let corrupt = text.replacen("factor", "fractal", 1);
        assert!(Checkpoint::read(corrupt.as_bytes()).is_err());
    }

    #[test]
    fn validate_catches_mismatches() {
        let ck = sample();
        assert!(ck.validate(&[5, 4, 6], 3, 20).is_ok());
        assert!(matches!(
            ck.validate(&[5, 4, 6], 4, 20),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(ck.validate(&[5, 4], 3, 20).is_err());
        assert!(ck.validate(&[5, 4, 7], 3, 20).is_err());
        assert!(
            ck.validate(&[5, 4, 6], 3, 7).is_err(),
            "iteration >= max_iters"
        );
    }

    #[test]
    fn dir_write_and_latest() {
        let dir = std::env::temp_dir().join("splatt_ckpt_unit");
        std::fs::remove_dir_all(&dir).ok();
        let mut ck = sample();
        ck.iteration = 3;
        let p3 = ck.write_to_dir(&dir).unwrap();
        ck.iteration = 11;
        let p11 = ck.write_to_dir(&dir).unwrap();
        assert!(p3.exists() && p11.exists());
        assert_eq!(Checkpoint::latest_in(&dir).unwrap(), Some(p11.clone()));
        let back = Checkpoint::read_from(&p11).unwrap();
        assert_eq!(back.iteration, 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_checkpoints_are_framed_and_verified() {
        let dir = std::env::temp_dir().join("splatt_ckpt_framed_unit");
        std::fs::remove_dir_all(&dir).ok();
        let ck = sample();
        let path = ck.write_to_dir(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(splatt_store::is_framed(&bytes), "checkpoint must be framed");

        // A flip inside the frame must surface as Corrupt; a flip in
        // the file magic demotes the file to the legacy path, where it
        // must still fail typed. Either way: never a parsed checkpoint.
        for probe in [bytes.len() / 2, bytes.len() - 1] {
            let mut damaged = bytes.clone();
            damaged[probe] ^= 0x10;
            std::fs::write(&path, &damaged).unwrap();
            match Checkpoint::read_from(&path) {
                Err(CheckpointError::Corrupt(_)) => {}
                other => panic!("flip at {probe}: expected Corrupt, got {other:?}"),
            }
        }
        let mut damaged = bytes.clone();
        damaged[0] ^= 0x10;
        std::fs::write(&path, &damaged).unwrap();
        assert!(Checkpoint::read_from(&path).is_err(), "magic flip parsed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_unframed_checkpoint_still_reads() {
        let dir = std::env::temp_dir().join("splatt_ckpt_legacy_unit");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let ck = sample();
        let path = dir.join("ckpt-00007.splatt");
        // Old builds wrote the bare text payload.
        let mut payload = Vec::new();
        ck.write(&mut payload).unwrap();
        std::fs::write(&path, &payload).unwrap();
        let back = Checkpoint::read_from(&path).unwrap();
        assert_eq!(back, ck);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_factor_header_is_an_error_not_an_allocation_bomb() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Claim an absurd row count; the reader must fail at the first
        // missing line instead of reserving rows*cols floats.
        let huge = text.replacen("factor 5 3", "factor 99999999999 3", 1);
        assert!(matches!(
            Checkpoint::read(huge.as_bytes()),
            Err(CheckpointError::Parse { .. })
        ));
    }
}
