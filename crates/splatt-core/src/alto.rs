//! Parallel MTTKRP kernels over the ALTO linearized format.
//!
//! One stream, every mode: where the CSF kernels walk a per-root fiber
//! tree, the ALTO kernel walks the single sorted stream of bit-packed
//! coordinates ([`splatt_tensor::AltoTensor`]) and *reconstructs* the
//! fiber boundaries on the fly by XOR-comparing adjacent words
//! ([`splatt_tensor::alto::open_level`]). Because the stream is sorted by
//! the same mode permutation as the `CsfAlloc::One` tree and processed in
//! the same order, the sequence of floating-point operations — every
//! gather, prefix-product extension, subtree combine, and scatter — is
//! *identical* to the CSF recursion's, making the two formats
//! bit-identical under the deterministic execution configurations (root
//! kernel at any task count; privatized/locked paths at one task). The
//! `tests/format_differential.rs` harness pins this equivalence.
//!
//! Kernel roles mirror CSF's by packed level: output mode at level 0 runs
//! the synchronization-free **root** kernel (the recursive coordinate
//! partition is root-slice aligned); interior levels run the **internal**
//! kernel; the last level runs the **leaf** kernel. The privatize-vs-lock
//! decision, rank specialization (R ∈ {8,16,32}), [`MatrixAccess`]
//! strategies, run-guard polling cadence, and workspace reuse all share
//! the CSF implementation's machinery.

use crate::mttkrp::{
    arena_len, use_privatization, Access, Index2DAccess, MatrixAccess, MttkrpConfig,
    MttkrpWorkspace, OutTarget, PointerCheckedAccess, PointerZipAccess, RowCopyAccess, SharedOut,
    GUARD_CHUNK,
};
use splatt_dense::Matrix;
use splatt_par::TaskTeam;
use splatt_tensor::alto::{open_level, AltoStream, AltoWord};
use splatt_tensor::AltoTensor;

/// Compute the MTTKRP for `mode` into `out` (`dims[mode] x rank`) from an
/// ALTO stream. Drop-in counterpart of [`crate::mttkrp::mttkrp`]: same
/// privatization heuristic, lock pool, specialization dispatch, probe and
/// guard integration through the shared [`MttkrpWorkspace`].
///
/// ```
/// use splatt_core::alto::mttkrp_alto;
/// use splatt_core::mttkrp::{MttkrpConfig, MttkrpWorkspace};
/// use splatt_dense::Matrix;
/// use splatt_par::TaskTeam;
/// use splatt_tensor::{synth, AltoTensor, SortVariant};
///
/// let tensor = synth::random_uniform(&[20, 15, 25], 500, 7);
/// let team = TaskTeam::new(2);
/// let alto = AltoTensor::build(&tensor, &team, SortVariant::AllOpts);
/// let factors: Vec<Matrix> = tensor.dims().iter().enumerate()
///     .map(|(m, &d)| Matrix::random(d, 4, m as u64))
///     .collect();
/// let cfg = MttkrpConfig::default();
/// let mut ws = MttkrpWorkspace::new(&cfg, 2);
/// let mut out = Matrix::zeros(20, 4);
/// mttkrp_alto(&alto, &factors, 0, &mut out, &mut ws, &team, &cfg);
/// let expect = splatt_core::reference::mttkrp_coo(&tensor, &factors, 0);
/// assert!(out.approx_eq(&expect, 1e-9));
/// ```
///
/// # Panics
/// Panics if shapes disagree (`out` must be `dims[mode] x rank`, factors
/// must be `dims[m] x rank`).
pub fn mttkrp_alto(
    alto: &AltoTensor,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
    ws: &mut MttkrpWorkspace,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
) {
    assert_eq!(
        out.rows(),
        alto.dims()[mode],
        "output rows must match mode dim"
    );
    for (m, f) in factors.iter().enumerate() {
        assert_eq!(f.rows(), alto.dims()[m], "factor {m} rows mismatch");
        assert_eq!(f.cols(), out.cols(), "factor {m} rank mismatch");
    }
    // Leaf-role modes (deepest packed level) at R = 32 are retired to
    // the generic path, mirroring the CSF driver — same register-spill
    // regression, same fix (see `mttkrp::SPECIALIZED_RANKS`).
    let leaf32_retired = alto.level_of_mode(mode) == alto.order() - 1;
    macro_rules! dispatch {
        ($A:ty) => {
            match out.cols() {
                8 if cfg.specialize => run_alto::<$A, 8>(alto, factors, mode, out, ws, team, cfg),
                16 if cfg.specialize => run_alto::<$A, 16>(alto, factors, mode, out, ws, team, cfg),
                32 if cfg.specialize && !leaf32_retired => {
                    run_alto::<$A, 32>(alto, factors, mode, out, ws, team, cfg)
                }
                _ => run_alto::<$A, 0>(alto, factors, mode, out, ws, team, cfg),
            }
        };
    }
    match cfg.access {
        MatrixAccess::RowCopy => dispatch!(RowCopyAccess),
        MatrixAccess::Index2D => dispatch!(Index2DAccess),
        MatrixAccess::PointerChecked => dispatch!(PointerCheckedAccess),
        MatrixAccess::PointerZip => dispatch!(PointerZipAccess),
    }
}

/// Does an ALTO MTTKRP on `mode` under this configuration take the
/// lock-based path? The counterpart of [`crate::mttkrp::uses_locks`]:
/// level-0 (root) modes never lock; other modes lock exactly when the
/// privatization heuristic declines.
pub fn uses_locks_alto(alto: &AltoTensor, mode: usize, ntasks: usize, cfg: &MttkrpConfig) -> bool {
    alto.level_of_mode(mode) != 0
        && !use_privatization(alto.dims()[mode], ntasks, alto.nnz(), cfg.priv_threshold)
}

#[allow(clippy::too_many_arguments)]
fn run_alto<A: Access, const R: usize>(
    alto: &AltoTensor,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
    ws: &mut MttkrpWorkspace,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
) {
    out.fill(0.0);
    let rank = out.cols();
    if rank == 0 || alto.nnz() == 0 {
        return;
    }
    let order = alto.order();
    let od = alto.level_of_mode(mode);

    let ntasks = team.ntasks();
    // recursive coordinate-space partition, aligned to root slices
    let bounds = alto.partition(ntasks);

    let needs_sync = od != 0;
    let privatize =
        needs_sync && use_privatization(alto.dims()[mode], ntasks, alto.nnz(), cfg.priv_threshold);

    let grown = ws.kernel.ensure_len(arena_len(order, rank));
    if grown > 0 {
        splatt_probe::alloc::record_kernel_scratch(grown);
    }

    let guard = ws.guard.clone();
    let guard = guard.as_ref();

    if privatize {
        let grown = ws.replicas.ensure_len(out.rows() * rank);
        if grown > 0 {
            splatt_probe::alloc::record_replica_growth(grown);
        }
        ws.replicas.reset();
        splatt_probe::alloc::record_replica_reduction();
        let replicas = &ws.replicas;
        let kernel = &ws.kernel;
        let bounds = &bounds;
        let body = |tid: usize| {
            let _lane = splatt_guard::LaneSpan::enter(guard, tid);
            replicas.with_mut(tid, |buf| {
                kernel.with_mut(tid, |arena| {
                    let mut target = OutTarget::Replica { buf, rank };
                    task_span::<A, R>(
                        alto,
                        od,
                        factors,
                        rank,
                        &mut target,
                        arena,
                        bounds[tid]..bounds[tid + 1],
                        guard.map(|g| (g, tid)),
                    );
                });
            });
        };
        match &ws.probe {
            None => team.coforall(body),
            Some(probe) => team.coforall_timed(&probe.tasks, |tid| {
                body(tid);
                (bounds[tid + 1] - bounds[tid]) as u64
            }),
        }
        ws.replicas.reduce_sum_into(out.as_mut_slice());
    } else {
        let shared = SharedOut::new(out);
        let shared = &shared;
        let pool = needs_sync.then_some(&ws.pool);
        let kernel = &ws.kernel;
        let bounds = &bounds;
        let body = |tid: usize| {
            let _lane = splatt_guard::LaneSpan::enter(guard, tid);
            kernel.with_mut(tid, |arena| {
                let mut target = OutTarget::Shared { out: shared, pool };
                task_span::<A, R>(
                    alto,
                    od,
                    factors,
                    rank,
                    &mut target,
                    arena,
                    bounds[tid]..bounds[tid + 1],
                    guard.map(|g| (g, tid)),
                );
            });
        };
        match &ws.probe {
            None => team.coforall(body),
            Some(probe) => team.coforall_timed(&probe.tasks, |tid| {
                body(tid);
                (bounds[tid + 1] - bounds[tid]) as u64
            }),
        }
    }
}

/// Process a contiguous range of root *slices* for one task, resolving
/// the stream width once so the walk monomorphizes over the word type.
#[allow(clippy::too_many_arguments)]
fn task_span<A: Access, const R: usize>(
    alto: &AltoTensor,
    od: usize,
    factors: &[Matrix],
    rank: usize,
    target: &mut OutTarget<'_>,
    arena: &mut [f64],
    slices: std::ops::Range<usize>,
    guard: Option<(&splatt_guard::RunGuard, usize)>,
) {
    if slices.is_empty() {
        return;
    }
    let start = alto.slice_ptr()[slices.start];
    let end = alto.slice_ptr()[slices.end];
    match alto.stream() {
        AltoStream::U64(words) => walk::<A, R, u64>(
            alto,
            &words[start..end],
            &alto.vals()[start..end],
            od,
            factors,
            rank,
            target,
            arena,
            guard,
        ),
        AltoStream::U128(words) => walk::<A, R, u128>(
            alto,
            &words[start..end],
            &alto.vals()[start..end],
            od,
            factors,
            rank,
            target,
            arena,
            guard,
        ),
    }
}

/// The linearized walk: a single pass over the packed words that emulates
/// the CSF `descend`/`compute_up` recursion exactly.
///
/// State per task (carved from the grow-only arena in the same
/// `[ones | up | down]` layout as the CSF kernels, indexed by absolute
/// level): `down[l]` is the running prefix product of factor rows at
/// levels `..=l` (maintained for levels `< od`); `up[l]` is the partial
/// subtree product of the open fiber at level `l` (maintained for levels
/// `od..order-1`). Fiber boundaries come from [`open_level`]; closing
/// fibers combine deepest-first (`fma_row`), the output-level fiber
/// scatters on close (`add_product`), and the leaf kernel scatters every
/// nonzero directly (`add_scaled`) — the identical operation sequence the
/// recursion performs, which is what makes the formats bit-identical.
#[allow(clippy::too_many_arguments)]
fn walk<A: Access, const R: usize, W: AltoWord>(
    alto: &AltoTensor,
    words: &[W],
    vals: &[f64],
    od: usize,
    factors: &[Matrix],
    rank: usize,
    target: &mut OutTarget<'_>,
    arena: &mut [f64],
    guard: Option<(&splatt_guard::RunGuard, usize)>,
) {
    let order = alto.order();
    let perm = alto.dim_perm();
    let shifts = alto.shifts();
    let masks = alto.masks();
    let leaf = order - 1;

    let (ones, rest) = arena.split_at_mut(rank);
    ones.fill(1.0);
    let (up_bufs, down_bufs) = rest.split_at_mut(order * rank);

    // `row(bufs, l)` = the rank-length row for absolute level `l`
    #[inline(always)]
    fn field<W: AltoWord>(w: W, l: usize, shifts: &[u32], masks: &[u64]) -> usize {
        w.field(shifts[l], masks[l]) as usize
    }

    let mut nslice = 0usize; // root slices entered (guard cadence)
    for x in 0..words.len() {
        let w = words[x];
        let ol = if x == 0 {
            0
        } else {
            open_level(words[x - 1], w, shifts)
        };

        if ol == 0 {
            if let Some((g, lane)) = guard {
                if nslice.is_multiple_of(GUARD_CHUNK) && g.poll(lane) {
                    return;
                }
            }
            nslice += 1;
        }

        // close the fibers the previous nonzero leaves behind
        if x > 0 && od < leaf {
            close::<A, R, W>(
                words[x - 1],
                ol,
                od,
                factors,
                perm,
                shifts,
                masks,
                rank,
                target,
                ones,
                up_bufs,
                down_bufs,
            );
        }

        // open the new path: extend down-products above the output level,
        // reset up-accumulators at and below it
        for l in ol..leaf {
            if l < od {
                let (lo, hi) = down_bufs.split_at_mut(l * rank);
                let prev: &[f64] = if l == 0 {
                    ones
                } else {
                    &lo[(l - 1) * rank..l * rank]
                };
                A::mul_row::<R>(
                    &factors[perm[l]],
                    field(w, l, shifts, masks),
                    prev,
                    &mut hi[..rank],
                );
            } else if od < leaf {
                up_bufs[l * rank..(l + 1) * rank].fill(0.0);
            }
        }

        // consume the nonzero
        if od == leaf {
            let cur = &down_bufs[(leaf - 1) * rank..leaf * rank];
            target.add_scaled::<R>(field(w, leaf, shifts, masks), vals[x], cur);
        } else {
            A::axpy_row::<R>(
                &factors[perm[leaf]],
                field(w, leaf, shifts, masks),
                vals[x],
                &mut up_bufs[(leaf - 1) * rank..leaf * rank],
            );
        }
    }

    // close everything still open at the end of the span
    if od < leaf {
        close::<A, R, W>(
            words[words.len() - 1],
            0,
            od,
            factors,
            perm,
            shifts,
            masks,
            rank,
            target,
            ones,
            up_bufs,
            down_bufs,
        );
    }
}

/// Close the open fibers at levels `ol..` for the path of `prev`:
/// combine subtree products deepest-first, then scatter the output-level
/// fiber's row if it closes too. Mirrors the unwinding of the CSF
/// recursion at a fiber boundary.
#[allow(clippy::too_many_arguments)]
#[inline]
fn close<A: Access, const R: usize, W: AltoWord>(
    prev: W,
    ol: usize,
    od: usize,
    factors: &[Matrix],
    perm: &[usize],
    shifts: &[u32],
    masks: &[u64],
    rank: usize,
    target: &mut OutTarget<'_>,
    ones: &[f64],
    up_bufs: &mut [f64],
    down_bufs: &[f64],
) {
    let order = perm.len();
    // deepest-first: the fiber at level l folds into its parent at l-1
    for l in (ol.max(od + 1)..=order - 2).rev() {
        let (lo, hi) = up_bufs.split_at_mut(l * rank);
        let fid = (prev.field(shifts[l], masks[l])) as usize;
        A::fma_row::<R>(
            &factors[perm[l]],
            fid,
            &hi[..rank],
            &mut lo[(l - 1) * rank..l * rank],
        );
    }
    if ol <= od {
        let fid = (prev.field(shifts[od], masks[od])) as usize;
        let down: &[f64] = if od == 0 {
            ones
        } else {
            &down_bufs[(od - 1) * rank..od * rank]
        };
        target.add_product::<R>(fid, down, &up_bufs[od * rank..(od + 1) * rank]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csf::{CsfAlloc, CsfSet};
    use crate::mttkrp::{mttkrp, SPECIALIZED_RANKS};
    use crate::reference::mttkrp_coo;
    use splatt_tensor::{synth, SortVariant, SparseTensor};

    const ALL_ACCESS: [MatrixAccess; 4] = [
        MatrixAccess::RowCopy,
        MatrixAccess::Index2D,
        MatrixAccess::PointerChecked,
        MatrixAccess::PointerZip,
    ];

    fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Matrix> {
        t.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| Matrix::random(d, rank, seed + m as u64))
            .collect()
    }

    /// ALTO output must equal the One-tree CSF output to the bit under
    /// deterministic execution (root at any ntasks; scatter at 1 task or
    /// privatized with a task-ordered reduction covered separately).
    fn assert_bit_identical(t: &SparseTensor, rank: usize, cfg: &MttkrpConfig, ntasks: usize) {
        let team = TaskTeam::new(ntasks);
        let set = CsfSet::build(t, CsfAlloc::One, &team, SortVariant::AllOpts);
        let alto = AltoTensor::build(t, &team, SortVariant::AllOpts);
        let factors = factors_for(t, rank, 7);
        let mut ws_c = MttkrpWorkspace::new(cfg, ntasks);
        let mut ws_a = MttkrpWorkspace::new(cfg, ntasks);
        for mode in 0..t.order() {
            let mut c = Matrix::zeros(t.dims()[mode], rank);
            let mut a = Matrix::zeros(t.dims()[mode], rank);
            mttkrp(&set, &factors, mode, &mut c, &mut ws_c, &team, cfg);
            mttkrp_alto(&alto, &factors, mode, &mut a, &mut ws_a, &team, cfg);
            assert_eq!(
                c.as_slice(),
                a.as_slice(),
                "mode {mode} rank {rank} ntasks {ntasks} cfg {cfg:?}"
            );
        }
    }

    #[test]
    fn bit_identical_to_csf_one_tree_single_task() {
        let t = synth::power_law(&[30, 14, 40], 2_500, 1.8, 3);
        for access in ALL_ACCESS {
            let cfg = MttkrpConfig {
                access,
                // force privatization so the scatter paths are
                // deterministic at any task count
                priv_threshold: 1e12,
                ..Default::default()
            };
            assert_bit_identical(&t, 5, &cfg, 1);
        }
    }

    #[test]
    fn bit_identical_privatized_multi_task() {
        // Privatized replicas reduce in task order, but CSF and ALTO
        // partition differently, so multi-task grouping could differ;
        // the root mode however is always bit-exact (rows are owned).
        // Privatized at 1 task is exact everywhere.
        let t = synth::power_law(&[25, 18, 33], 2_000, 2.0, 11);
        let cfg = MttkrpConfig {
            priv_threshold: 1e12,
            ..Default::default()
        };
        assert_bit_identical(&t, 4, &cfg, 1);
    }

    #[test]
    fn root_mode_bit_identical_at_any_ntasks() {
        let t = synth::power_law(&[30, 14, 40], 2_000, 1.8, 5);
        let rank = 4;
        let factors = factors_for(&t, rank, 7);
        let cfg = MttkrpConfig {
            priv_threshold: 1e12,
            ..Default::default()
        };
        // the root of the shared perm: the shortest mode
        let root_mode = AltoTensor::mode_perm(t.dims())[0];
        let mut reference: Option<Vec<f64>> = None;
        for ntasks in [1usize, 2, 3] {
            let team = TaskTeam::new(ntasks);
            let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
            let mut ws = MttkrpWorkspace::new(&cfg, ntasks);
            let mut out = Matrix::zeros(t.dims()[root_mode], rank);
            mttkrp_alto(&alto, &factors, root_mode, &mut out, &mut ws, &team, &cfg);
            match &reference {
                None => reference = Some(out.as_slice().to_vec()),
                Some(r) => assert_eq!(r.as_slice(), out.as_slice(), "ntasks {ntasks}"),
            }
        }
    }

    #[test]
    fn matches_reference_multi_task_scatter() {
        // Multi-task lock/privatized scatter interleaves across a
        // different partition than CSF's, so compare against the COO
        // reference within tolerance.
        let t = synth::power_law(&[20, 12, 28], 1_500, 1.5, 5);
        let team = TaskTeam::new(4);
        let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
        let factors = factors_for(&t, 3, 7);
        for priv_threshold in [0.0, 1e9] {
            let cfg = MttkrpConfig {
                priv_threshold,
                ..Default::default()
            };
            let mut ws = MttkrpWorkspace::new(&cfg, 4);
            for mode in 0..t.order() {
                let mut out = Matrix::zeros(t.dims()[mode], 3);
                mttkrp_alto(&alto, &factors, mode, &mut out, &mut ws, &team, &cfg);
                let expect = mttkrp_coo(&t, &factors, mode);
                assert!(
                    out.approx_eq(&expect, 1e-9),
                    "mode {mode} priv {priv_threshold}: diff {}",
                    out.max_abs_diff(&expect)
                );
            }
        }
    }

    #[test]
    fn specialized_is_bit_identical_to_generic() {
        for rank in SPECIALIZED_RANKS {
            let t = synth::power_law(&[30, 14, 40], 1_500, 1.8, rank as u64);
            let team = TaskTeam::new(2);
            let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
            let factors = factors_for(&t, rank, 3);
            let generic = MttkrpConfig {
                specialize: false,
                priv_threshold: 1e12,
                ..Default::default()
            };
            let special = MttkrpConfig {
                specialize: true,
                ..generic
            };
            let mut ws_g = MttkrpWorkspace::new(&generic, 2);
            let mut ws_s = MttkrpWorkspace::new(&special, 2);
            for mode in 0..t.order() {
                let mut a = Matrix::zeros(t.dims()[mode], rank);
                let mut b = Matrix::zeros(t.dims()[mode], rank);
                mttkrp_alto(&alto, &factors, mode, &mut a, &mut ws_g, &team, &generic);
                mttkrp_alto(&alto, &factors, mode, &mut b, &mut ws_s, &team, &special);
                assert_eq!(a.as_slice(), b.as_slice(), "rank {rank} mode {mode}");
            }
        }
    }

    #[test]
    fn four_and_five_mode_tensors_match_reference() {
        for (dims, nnz) in [(vec![8usize, 12, 6, 9], 900), (vec![6, 5, 9, 4, 7], 700)] {
            let t = synth::random_uniform(&dims, nnz, 13);
            let team = TaskTeam::new(2);
            let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
            let factors = factors_for(&t, 4, 5);
            let cfg = MttkrpConfig::default();
            let mut ws = MttkrpWorkspace::new(&cfg, 2);
            for mode in 0..t.order() {
                let mut out = Matrix::zeros(t.dims()[mode], 4);
                mttkrp_alto(&alto, &factors, mode, &mut out, &mut ws, &team, &cfg);
                assert!(
                    out.approx_eq(&mttkrp_coo(&t, &factors, mode), 1e-9),
                    "order {} mode {mode}",
                    dims.len()
                );
            }
        }
    }

    #[test]
    fn duplicates_singleton_and_empty_edge_cases() {
        let cases = vec![
            SparseTensor::from_entries(
                vec![3, 3, 3],
                &[
                    (vec![1, 1, 1], 2.0),
                    (vec![1, 1, 1], 3.0),
                    (vec![0, 2, 1], 1.0),
                ],
            ),
            SparseTensor::from_entries(vec![4, 5, 6], &[(vec![1, 2, 3], 2.0)]),
            SparseTensor::new(vec![3, 4, 5]),
            SparseTensor::from_entries(vec![1, 6, 4], &[(vec![0, 3, 2], 1.5)]),
        ];
        let cfg = MttkrpConfig {
            priv_threshold: 1e12,
            ..Default::default()
        };
        for t in &cases {
            assert_bit_identical(t, 3, &cfg, 1);
            // output zeroed even when pre-filled
            let team = TaskTeam::new(2);
            let alto = AltoTensor::build(t, &team, SortVariant::AllOpts);
            let factors = factors_for(t, 3, 1);
            let mut ws = MttkrpWorkspace::new(&cfg, 2);
            let mut out = Matrix::filled(t.dims()[1], 3, 9.0);
            mttkrp_alto(&alto, &factors, 1, &mut out, &mut ws, &team, &cfg);
            assert!(out.approx_eq(&mttkrp_coo(t, &factors, 1), 1e-9));
        }
    }

    #[test]
    fn u128_stream_matches_reference() {
        let dims = vec![20_000usize, 18_000, 19_000, 17_000, 16_000];
        let t = synth::random_uniform(&dims, 400, 23);
        let team = TaskTeam::new(2);
        let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
        assert!(matches!(
            alto.stream(),
            splatt_tensor::alto::AltoStream::U128(_)
        ));
        let factors = factors_for(&t, 3, 9);
        let cfg = MttkrpConfig::default();
        let mut ws = MttkrpWorkspace::new(&cfg, 2);
        for mode in 0..t.order() {
            let mut out = Matrix::zeros(t.dims()[mode], 3);
            mttkrp_alto(&alto, &factors, mode, &mut out, &mut ws, &team, &cfg);
            assert!(
                out.approx_eq(&mttkrp_coo(&t, &factors, mode), 1e-9),
                "mode {mode}"
            );
        }
    }

    #[test]
    fn lock_strategy_reporting() {
        let t = synth::power_law(&[400, 150, 500], 2_000, 1.5, 2);
        let team = TaskTeam::new(4);
        let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
        let cfg = MttkrpConfig::default();
        // level-0 mode (the shortest) never locks
        let root_mode = AltoTensor::mode_perm(t.dims())[0];
        assert!(!uses_locks_alto(&alto, root_mode, 4, &cfg));
        // deeper small-ish modes: dim * tasks > threshold * nnz => locks
        let leaf_mode = *AltoTensor::mode_perm(t.dims()).last().unwrap();
        assert!(uses_locks_alto(&alto, leaf_mode, 4, &cfg));
        let cfg2 = MttkrpConfig {
            priv_threshold: 1e9,
            ..cfg
        };
        assert!(!uses_locks_alto(&alto, leaf_mode, 4, &cfg2));
    }
}
