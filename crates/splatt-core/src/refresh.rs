//! Online CP refresh: stream the ingest WAL into a living model.
//!
//! The batch pipeline the workspace grew up with — `ingest` appends
//! delta batches to the WAL, `recover` replays the whole log, `cpd`
//! refits from scratch — hides three costs that only show up once the
//! tensor is *alive*: every refresh re-coalesces the full tensor
//! (`O(N log N)` per batch instead of `O(N + d)`), every refit restarts
//! from random factors (paying the full iteration budget to rediscover
//! a solution one delta away), and every republish is a full pipeline
//! restart. [`RefreshEngine`] is the streaming driver that removes all
//! three:
//!
//! 1. **Tail, don't replay** — [`RefreshEngine::refresh_once`] scans the
//!    WAL ([`Wal::recover`]) and applies only records past the durably
//!    committed *watermark*. The watermark is exclusive: every WAL
//!    sequence **below** it is folded into the committed state recorded
//!    in the store manifest (WAL sequences start at 0, so watermark
//!    `k` means "the first `k` records are in").
//! 2. **Merge, don't re-coalesce** — each delta batch goes through
//!    [`SparseTensor::merge_entries`], the linear two-way merge; the
//!    accumulated [`MergeStats::compare_ops`] are the auditable
//!    asymptotic-cost evidence, surfaced in the probe report's
//!    `refresh` row.
//! 3. **Warm-start, don't restart** — the refit seeds
//!    [`CpalsOptions::warm_start`] with the previous model, runs under a
//!    [`GovernancePolicy`] (deadline / overrun ladder), and publishes
//!    the result with the atomic artifact protocol.
//!
//! # Commit protocol (crash safety)
//!
//! A refresh round performs, in order: model artifact publish
//! (`write temp → fsync → rename → fsync dir`), then manifest publish
//! recording the new watermark. The manifest publish is the **commit
//! point**. A crash anywhere before it leaves the old manifest — and
//! thus the old watermark — in place, so a re-opened engine rebuilds
//! the pre-crash tensor and re-applies the same records: the round is
//! idempotent. A crash after the model publish but before the manifest
//! publish leaves a *newer* model artifact than the watermark claims;
//! that is benign (the artifact is complete and checksummed, and the
//! redo round overwrites it atomically). No interleaving leaves a torn
//! model or a watermark ahead of the data it claims.
//!
//! The whole path threads an optional [`IoFaultPlan`], so the recovery
//! storm test can crash a refresh at every injected I/O op and pin
//! watermark-consistent recovery.
//!
//! The engine deliberately stops below the serving layer: it returns
//! the published model path and round number, and the caller (CLI,
//! serving loop, tests) hands the path to `ModelRegistry::publish_path`
//! for zero-downtime republish.

use crate::cpals::{CpalsError, CpalsOutput};
use crate::governed::{try_cp_als_governed, GovernancePolicy};
use crate::kruskal::KruskalModel;
use crate::model_file::{load_model_path, save_model};
use crate::options::CpalsOptions;
use splatt_faults::IoFaultPlan;
use splatt_probe::RefreshRow;
use splatt_store::{decode_delta, publish_artifact, Manifest, StoreError, Wal, WalRecord};
use splatt_tensor::{MergeStats, SparseTensor};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Default file name of the published model artifact inside the store.
pub const REFRESH_MODEL_FILE: &str = "model.splatt";
/// Manifest key recording the committed watermark (exclusive: records
/// with `seq < watermark` are applied).
pub const KEY_REFRESH_SEQ: &str = "refresh_seq";
/// Manifest key recording the published model artifact's file name.
pub const KEY_REFRESH_MODEL: &str = "refresh_model";
/// Manifest key recording the refresh round counter.
pub const KEY_REFRESH_ROUND: &str = "refresh_round";

/// Why a refresh round (or engine open) failed.
#[derive(Debug)]
pub enum RefreshError {
    /// The durability layer refused an operation (injected crash/fault,
    /// corruption, or a real I/O error).
    Store(StoreError),
    /// Reading or parsing the previous model artifact failed.
    Model(std::io::Error),
    /// A WAL record's delta payload would not decode.
    Decode { seq: u64, detail: String },
    /// A WAL record carries a different tensor order than the store.
    OrderMismatch {
        seq: u64,
        expected: usize,
        found: usize,
    },
    /// The store has neither an `order` manifest key nor any WAL
    /// records — there is nothing to size the resident tensor from.
    EmptyStore,
    /// The warm-started refit itself failed (aborted, exhausted
    /// recovery budget, …).
    Solver(CpalsError),
}

impl std::fmt::Display for RefreshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefreshError::Store(e) => write!(f, "store: {e}"),
            RefreshError::Model(e) => write!(f, "model artifact: {e}"),
            RefreshError::Decode { seq, detail } => {
                write!(f, "WAL record seq {seq}: {detail}")
            }
            RefreshError::OrderMismatch {
                seq,
                expected,
                found,
            } => write!(
                f,
                "WAL record seq {seq} is order-{found} but the store is order-{expected}"
            ),
            RefreshError::EmptyStore => {
                write!(
                    f,
                    "store has no order key and no WAL records to infer it from"
                )
            }
            RefreshError::Solver(e) => write!(f, "refit: {e}"),
        }
    }
}

impl std::error::Error for RefreshError {}

impl From<StoreError> for RefreshError {
    fn from(e: StoreError) -> Self {
        RefreshError::Store(e)
    }
}

/// Configuration for a [`RefreshEngine`].
#[derive(Debug, Clone, Default)]
pub struct RefreshOptions {
    /// Solver configuration for each refit. `warm_start` is managed by
    /// the engine (overwritten every round); setting it here has no
    /// effect.
    pub cpals: CpalsOptions,
    /// Governance limits applied to each refit (deadline, overrun
    /// ladder).
    pub policy: GovernancePolicy,
    /// Disk-fault plan threaded through every store operation the
    /// engine performs (WAL scan, model publish, manifest publish).
    pub plan: Option<Arc<IoFaultPlan>>,
    /// Also run a cold (random-init) refit each round and record
    /// `|warm fit − cold fit|` as `warm_fit_gap`. Doubles refit cost;
    /// meant for parity audits and tests, not production loops.
    pub audit_cold: bool,
    /// File name (inside the store directory) of the published model
    /// artifact. Empty means [`REFRESH_MODEL_FILE`].
    pub model_file: String,
}

/// What one successful [`RefreshEngine::refresh_once`] round did.
#[derive(Debug)]
pub struct RefreshOutcome {
    /// WAL records applied this round.
    pub applied: u64,
    /// Individual delta entries merged this round.
    pub entries: u64,
    /// Merge statistics summed over this round's batches.
    pub merge: MergeStats,
    /// Fit of the refreshed model.
    pub fit: f64,
    /// ALS iterations the warm-started refit ran.
    pub iterations: usize,
    /// `|warm fit − cold fit|` when `audit_cold` is set, else `0.0`.
    pub warm_fit_gap: f64,
    /// The committed watermark after this round.
    pub watermark: u64,
    /// The refresh round number (also the model artifact generation).
    pub round: u64,
    /// Path of the atomically published model artifact.
    pub model_path: PathBuf,
    /// Degradation rungs the governed refit applied, in order.
    pub degradations: Vec<String>,
}

/// The online refresh driver. See the module docs for the protocol.
#[derive(Debug)]
pub struct RefreshEngine {
    dir: PathBuf,
    opts: RefreshOptions,
    tensor: SparseTensor,
    model: Option<KruskalModel>,
    watermark: u64,
    round: u64,
    counters: RefreshRow,
}

impl RefreshEngine {
    /// Open a store directory for refreshing.
    ///
    /// Rebuilds the resident tensor as `base` (or an all-ones-dims
    /// empty tensor of the store's order) plus every WAL record at or
    /// below the committed watermark, and loads the previously
    /// published model for warm starts. Records *past* the watermark
    /// are left for [`Self::refresh_once`].
    ///
    /// # Errors
    /// Store/decode errors, and [`RefreshError::EmptyStore`] when the
    /// tensor order cannot be determined.
    pub fn open(
        dir: &Path,
        base: Option<SparseTensor>,
        opts: RefreshOptions,
    ) -> Result<RefreshEngine, RefreshError> {
        let plan = opts.plan.clone();
        let manifest = Manifest::load(dir, plan.as_deref())?.unwrap_or_default();
        let watermark: u64 = manifest
            .get(KEY_REFRESH_SEQ)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let round: u64 = manifest
            .get(KEY_REFRESH_ROUND)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);

        let recovery = Wal::recover(dir, plan.clone())?;

        let mut tensor = match base {
            Some(t) => t,
            None => {
                let order = manifest
                    .get("order")
                    .and_then(|v| v.parse::<usize>().ok())
                    .or_else(|| {
                        recovery
                            .records
                            .first()
                            .and_then(|r| decode_delta(&r.payload).ok())
                            .map(|(o, _)| o)
                    })
                    .ok_or(RefreshError::EmptyStore)?;
                SparseTensor::new(vec![1; order])
            }
        };

        // Redo: everything below the watermark is already part of the
        // committed state, so fold it back into the resident tensor.
        for rec in recovery.records.iter().filter(|r| r.seq < watermark) {
            apply_record(&mut tensor, rec)?;
        }

        let model_file = manifest
            .get(KEY_REFRESH_MODEL)
            .map(str::to_string)
            .unwrap_or_else(|| {
                if opts.model_file.is_empty() {
                    REFRESH_MODEL_FILE.to_string()
                } else {
                    opts.model_file.clone()
                }
            });
        let model_path = dir.join(&model_file);
        let model = if watermark > 0 && model_path.is_file() {
            Some(load_model_path(&model_path).map_err(RefreshError::Model)?)
        } else {
            None
        };

        let counters = RefreshRow {
            watermark,
            ..Default::default()
        };
        Ok(RefreshEngine {
            dir: dir.to_path_buf(),
            opts,
            tensor,
            model,
            watermark,
            round,
            counters,
        })
    }

    /// Apply every WAL record past the watermark, warm-refit, and
    /// publish. Returns `Ok(None)` when the WAL holds nothing new.
    ///
    /// On error the engine's resident state is untouched (the round
    /// works on a copy and installs it only after the manifest commit
    /// succeeds), so a caller may retry or reopen without
    /// double-applying deltas.
    ///
    /// # Errors
    /// Store, decode, and solver errors; injected crashes surface as
    /// [`RefreshError::Store`].
    pub fn refresh_once(&mut self) -> Result<Option<RefreshOutcome>, RefreshError> {
        let plan = self.opts.plan.clone();
        let recovery = Wal::recover(&self.dir, plan.clone())?;
        let pending: Vec<&WalRecord> = recovery
            .records
            .iter()
            .filter(|r| r.seq >= self.watermark)
            .collect();
        if pending.is_empty() {
            return Ok(None);
        }

        // Work on a copy so a crash mid-round leaves the resident
        // tensor consistent with the committed watermark.
        let mut work = self.tensor.clone();
        let mut merge = MergeStats {
            base_was_canonical: true,
            ..Default::default()
        };
        let mut entries = 0u64;
        let merge_started = Instant::now();
        for (i, rec) in pending.iter().enumerate() {
            let stats = apply_record(&mut work, rec)?;
            if i == 0 {
                merge.base_nnz = stats.base_nnz;
            }
            merge.out_nnz = stats.out_nnz;
            merge.delta_nnz += stats.delta_nnz;
            merge.compare_ops += stats.compare_ops;
            merge.base_was_canonical &= stats.base_was_canonical;
            entries += stats.delta_nnz as u64;
        }
        let merge_ns = merge_started.elapsed().as_nanos() as u64;
        let new_watermark = pending.last().expect("non-empty").seq + 1;

        // Warm-started, governed refit. The CSF/ALTO rebuild inside
        // draws on the merged (canonical, strictly sorted) tensor, so
        // the sort-skip fast path fires; we snapshot the global counter
        // around the solve to attribute skips to this round.
        let sorts_before = splatt_tensor::sort::sorts_skipped();
        let mut cpals = self.opts.cpals.clone();
        cpals.warm_start = self
            .model
            .as_ref()
            .filter(|m| warm_start_compatible(m, &work, cpals.rank))
            .cloned();
        let run = try_cp_als_governed(&work, &cpals, None, &self.opts.policy)
            .map_err(RefreshError::Solver)?;
        let warm_fit_gap = if self.opts.audit_cold {
            let mut cold = cpals.clone();
            cold.warm_start = None;
            let cold_run = try_cp_als_governed(&work, &cold, None, &self.opts.policy)
                .map_err(RefreshError::Solver)?;
            (run.output.fit - cold_run.output.fit).abs()
        } else {
            0.0
        };
        let sorts_skipped = splatt_tensor::sort::sorts_skipped() - sorts_before;

        // Publish: model artifact first, then the manifest commit point.
        let round = self.round + 1;
        let model_file = if self.opts.model_file.is_empty() {
            REFRESH_MODEL_FILE.to_string()
        } else {
            self.opts.model_file.clone()
        };
        let model_path = self.dir.join(&model_file);
        let publish_started = Instant::now();
        let mut payload = Vec::new();
        save_model(&run.output.model, &mut payload).map_err(RefreshError::Model)?;
        publish_artifact(&model_path, round, &payload, plan.as_deref())?;

        let mut manifest = Manifest::load(&self.dir, plan.as_deref())?.unwrap_or_default();
        manifest.set("order", &work.order().to_string());
        manifest.set(KEY_REFRESH_SEQ, &new_watermark.to_string());
        manifest.set(KEY_REFRESH_MODEL, &model_file);
        manifest.set(KEY_REFRESH_ROUND, &round.to_string());
        manifest.publish(&self.dir, plan.as_deref())?;
        let publish_ns = publish_started.elapsed().as_nanos() as u64;

        // Committed: install the round's state and counters.
        let CpalsOutput {
            model,
            fit,
            iterations,
            ..
        } = run.output;
        self.tensor = work;
        self.model = Some(model);
        self.watermark = new_watermark;
        self.round = round;
        self.counters.rounds += 1;
        self.counters.deltas_applied += pending.len() as u64;
        self.counters.entries_merged += entries;
        self.counters.merge_compare_ops += merge.compare_ops;
        self.counters.merge_ns += merge_ns;
        self.counters.sorts_skipped += sorts_skipped;
        self.counters.refit_iterations += iterations as u64;
        self.counters.warm_fit = fit;
        self.counters.warm_fit_gap = warm_fit_gap;
        self.counters.publish_ns += publish_ns;
        self.counters.watermark = new_watermark;

        Ok(Some(RefreshOutcome {
            applied: pending.len() as u64,
            entries,
            merge,
            fit,
            iterations,
            warm_fit_gap,
            watermark: new_watermark,
            round,
            model_path,
            degradations: run.degradations,
        }))
    }

    /// The committed watermark (exclusive: WAL records with
    /// `seq < watermark` are folded into the store).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Completed refresh rounds (equals the model artifact generation).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The resident canonical tensor.
    pub fn tensor(&self) -> &SparseTensor {
        &self.tensor
    }

    /// The most recently published model, if any round has committed
    /// (or a model artifact was found at open).
    pub fn model(&self) -> Option<&KruskalModel> {
        self.model.as_ref()
    }

    /// Cumulative counters in probe-report form (schema v9 `refresh`).
    pub fn refresh_row(&self) -> RefreshRow {
        self.counters
    }

    /// The store directory this engine refreshes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Can `model` seed a warm start for `tensor` at `rank`? Modes may only
/// have *grown* since the model was fit.
fn warm_start_compatible(model: &KruskalModel, tensor: &SparseTensor, rank: usize) -> bool {
    model.rank() == rank
        && model.order() == tensor.order()
        && model
            .factors
            .iter()
            .zip(tensor.dims())
            .all(|(f, &d)| f.rows() <= d)
}

/// Decode one WAL record and merge it into `tensor`.
fn apply_record(tensor: &mut SparseTensor, rec: &WalRecord) -> Result<MergeStats, RefreshError> {
    let (order, entries) = decode_delta(&rec.payload).map_err(|e| RefreshError::Decode {
        seq: rec.seq,
        detail: e.to_string(),
    })?;
    if order != tensor.order() {
        return Err(RefreshError::OrderMismatch {
            seq: rec.seq,
            expected: tensor.order(),
            found: order,
        });
    }
    Ok(tensor.merge_entries(&entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_store::{encode_delta, WalOptions};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("splatt_refresh_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    type Batch = Vec<(Vec<u32>, f64)>;

    /// Entries of a small planted tensor, split into `chunks` batches.
    fn planted_batches(chunks: usize) -> (Vec<Batch>, SparseTensor) {
        let (tensor, _truth) = splatt_tensor::synth::planted_dense(&[8, 7, 6], 2, 0.0, 11);
        let all = tensor.canonical_entries();
        let per = all.len().div_ceil(chunks);
        let batches = all.chunks(per).map(<[_]>::to_vec).collect();
        (batches, tensor)
    }

    fn ingest(dir: &Path, batches: &[Batch], order: usize) {
        let (mut wal, _rec) = Wal::open(dir, WalOptions::default()).unwrap();
        for b in batches {
            wal.append(&encode_delta(order, b)).unwrap();
            wal.commit().unwrap();
        }
        let mut manifest = Manifest::load(dir, None).unwrap().unwrap_or_default();
        manifest.set("order", &order.to_string());
        manifest.publish(dir, None).unwrap();
    }

    fn quick_opts() -> RefreshOptions {
        RefreshOptions {
            cpals: CpalsOptions {
                rank: 2,
                max_iters: 12,
                tolerance: 1e-9,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn refresh_applies_tail_and_commits_watermark() {
        let dir = temp_dir("tail");
        let (batches, full) = planted_batches(3);
        ingest(&dir, &batches, full.order());

        let mut eng = RefreshEngine::open(&dir, None, quick_opts()).unwrap();
        assert_eq!(eng.watermark(), 0);
        let out = eng.refresh_once().unwrap().expect("pending records");
        assert_eq!(out.applied, 3);
        assert_eq!(out.watermark, 3);
        assert_eq!(out.round, 1);
        assert!(
            out.fit > 0.8,
            "planted rank-2 refit should fit, got {}",
            out.fit
        );
        assert!(out.model_path.is_file());
        // Resident tensor equals the fully coalesced original.
        let mut expect = full.clone();
        expect.coalesce();
        assert_eq!(eng.tensor().nnz(), expect.nnz());

        // Nothing new → no-op round, state unchanged.
        assert!(eng.refresh_once().unwrap().is_none());
        assert_eq!(eng.watermark(), 3);
        assert_eq!(eng.round(), 1);

        // Manifest carries the commit.
        let m = Manifest::load(&dir, None).unwrap().unwrap();
        assert_eq!(m.get(KEY_REFRESH_SEQ), Some("3"));
        assert_eq!(m.get(KEY_REFRESH_ROUND), Some("1"));
        assert_eq!(m.get(KEY_REFRESH_MODEL), Some(REFRESH_MODEL_FILE));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_resumes_from_watermark_and_warm_model() {
        let dir = temp_dir("reopen");
        let (batches, full) = planted_batches(4);
        let order = full.order();
        ingest(&dir, &batches[..2], order);

        let mut eng = RefreshEngine::open(&dir, None, quick_opts()).unwrap();
        eng.refresh_once().unwrap().unwrap();
        let nnz_after_two = eng.tensor().nnz();
        drop(eng);

        // More data arrives; a fresh engine must replay only the
        // committed prefix, then apply the new tail.
        {
            let (mut wal, _r) = Wal::open(&dir, WalOptions::default()).unwrap();
            for b in &batches[2..] {
                wal.append(&encode_delta(order, b)).unwrap();
                wal.commit().unwrap();
            }
        }
        let mut eng2 = RefreshEngine::open(&dir, None, quick_opts()).unwrap();
        assert_eq!(eng2.watermark(), 2);
        assert_eq!(eng2.tensor().nnz(), nnz_after_two);
        assert!(
            eng2.model().is_some(),
            "previous model must load for warm start"
        );
        let out = eng2.refresh_once().unwrap().unwrap();
        assert_eq!(out.applied, 2);
        assert_eq!(out.watermark, 4);
        assert_eq!(out.round, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_store_without_order_is_a_typed_error() {
        let dir = temp_dir("empty");
        let err = RefreshEngine::open(&dir, None, quick_opts()).unwrap_err();
        assert!(matches!(err, RefreshError::EmptyStore), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn order_mismatch_is_rejected_with_seq() {
        let dir = temp_dir("order");
        let (batches, full) = planted_batches(1);
        ingest(&dir, &batches, full.order());
        {
            let (mut wal, _r) = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.append(&encode_delta(4, &[(vec![0, 0, 0, 0], 1.0)]))
                .unwrap();
            wal.commit().unwrap();
        }
        let mut eng = RefreshEngine::open(&dir, None, quick_opts()).unwrap();
        let err = eng.refresh_once().unwrap_err();
        match err {
            RefreshError::OrderMismatch {
                seq,
                expected,
                found,
            } => {
                assert_eq!(seq, 1, "second WAL record (seqs start at 0)");
                assert_eq!(expected, 3);
                assert_eq!(found, 4);
            }
            other => panic!("expected OrderMismatch, got {other}"),
        }
        // The failed round must not have moved the resident state.
        assert_eq!(eng.watermark(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counters_accumulate_across_rounds() {
        let dir = temp_dir("counters");
        let (batches, full) = planted_batches(4);
        let order = full.order();
        ingest(&dir, &batches[..1], order);
        let mut eng = RefreshEngine::open(&dir, None, quick_opts()).unwrap();
        eng.refresh_once().unwrap().unwrap();
        {
            let (mut wal, _r) = Wal::open(&dir, WalOptions::default()).unwrap();
            for b in &batches[1..] {
                wal.append(&encode_delta(order, b)).unwrap();
                wal.commit().unwrap();
            }
        }
        eng.refresh_once().unwrap().unwrap();
        let row = eng.refresh_row();
        assert_eq!(row.rounds, 2);
        assert_eq!(row.deltas_applied, 4);
        assert_eq!(row.watermark, 4);
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(row.entries_merged, total as u64);
        assert!(row.refit_iterations >= 2);
        assert!(row.merge_compare_ops > 0);
        assert!(row.warm_fit > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn audit_cold_reports_a_tiny_gap_on_planted_data() {
        let dir = temp_dir("audit");
        let (batches, full) = planted_batches(2);
        ingest(&dir, &batches, full.order());
        let mut opts = quick_opts();
        opts.audit_cold = true;
        opts.cpals.max_iters = 60;
        opts.cpals.tolerance = 1e-12;
        let mut eng = RefreshEngine::open(&dir, None, opts).unwrap();
        let out = eng.refresh_once().unwrap().unwrap();
        assert!(
            out.warm_fit_gap <= 1e-6,
            "warm-vs-cold fit gap {} too large",
            out.warm_fit_gap
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
